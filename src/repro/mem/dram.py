"""Row-buffer DRAM timing models.

Two devices from the paper's Table 2:

* off-chip **DDR4-2133** (64-bit bus, 2 KB row buffer, 14-14-14) serving
  ordinary memory and page-table contents;
* **die-stacked DRAM** (128-bit bus at DDR-2 GHz, 2 KB row buffer,
  11-11-11) hosting the 16 MB POM-TLB.

The model is per-bank open-row: an access to the open row pays CAS only, a
closed-row access pays ACT (tRCD) + CAS, and a row conflict adds the
precharge (tRP).  Latencies are converted to 4 GHz CPU cycles.  Queueing
contention is not modeled (the top-level timing model is analytic, see
DESIGN.md Section 5); the row-buffer behaviour is what matters for the
POM-TLB's "slow but giant" trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass
class DramTiming:
    """Device timing in device-clock cycles plus geometry."""

    name: str
    bus_mhz: float
    bus_bytes: int
    row_bytes: int
    t_cas: int
    t_rcd: int
    t_rp: int
    banks: int
    cpu_mhz: float = 4000.0

    def device_to_cpu(self, device_cycles: float) -> int:
        """Convert device-clock cycles to (rounded-up) CPU cycles."""
        cpu = device_cycles * (self.cpu_mhz / self.bus_mhz)
        return int(cpu) + (cpu % 1 > 0)

    @property
    def burst_cycles(self) -> float:
        """Device cycles to move one 64-byte cache line (DDR: 2/cycle)."""
        return 64 / (self.bus_bytes * 2)


DDR4_2133 = DramTiming(
    name="ddr4-2133",
    bus_mhz=1066.0,
    bus_bytes=8,
    row_bytes=2048,
    t_cas=14,
    t_rcd=14,
    t_rp=14,
    banks=16,
)

DIE_STACKED = DramTiming(
    name="die-stacked",
    bus_mhz=1000.0,
    bus_bytes=16,
    row_bytes=2048,
    t_cas=11,
    t_rcd=11,
    t_rp=11,
    banks=32,
)


@dataclass
class DramStats:
    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DramChannel:
    """One DRAM channel with per-bank open-row state."""

    def __init__(self, timing: DramTiming):
        self.timing = timing
        self.stats = DramStats()
        self._open_rows: Dict[int, int] = {}

    def access(self, address: int) -> int:
        """Return the CPU-cycle latency of reading/writing ``address``."""
        t = self.timing
        row = address // t.row_bytes
        bank = row % t.banks
        self.stats.accesses += 1
        open_row = self._open_rows.get(bank)
        if open_row == row:
            self.stats.row_hits += 1
            device_cycles = t.t_cas + t.burst_cycles
        else:
            self.stats.row_misses += 1
            device_cycles = t.t_cas + t.t_rcd + t.burst_cycles
            if open_row is not None:
                device_cycles += t.t_rp
            self._open_rows[bank] = row
        return t.device_to_cpu(device_cycles)

    def average_latency(self, row_hit_fraction: float = 0.5) -> int:
        """Expected latency for the criticality estimator (no state change)."""
        t = self.timing
        hit = t.t_cas + t.burst_cycles
        miss = t.t_rp + t.t_rcd + t.t_cas + t.burst_cycles
        expected = row_hit_fraction * hit + (1 - row_hit_fraction) * miss
        return t.device_to_cpu(expected)

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose channel counters as callback gauges under ``prefix``."""
        registry.gauge(f"{prefix}.accesses", lambda: self.stats.accesses)
        registry.gauge(f"{prefix}.row_hits", lambda: self.stats.row_hits)
        registry.gauge(f"{prefix}.row_misses", lambda: self.stats.row_misses)
        registry.gauge(f"{prefix}.row_hit_rate", lambda: self.stats.row_hit_rate)

    def reset_stats(self) -> None:
        """Zero the counters without disturbing open-row state."""
        self.stats = DramStats()

    def reset(self) -> None:
        self.stats = DramStats()
        self._open_rows.clear()

    def state_dict(self) -> dict:
        return {"stats": replace(self.stats), "open_rows": dict(self._open_rows)}

    def load_state(self, state: dict) -> None:
        for bank in state["open_rows"]:
            if not 0 <= bank < self.timing.banks:
                raise ValueError(
                    f"{self.timing.name}: snapshot bank {bank} outside "
                    f"[0, {self.timing.banks})"
                )
        self.stats = replace(state["stats"])
        self._open_rows = dict(state["open_rows"])
