"""Address arithmetic for the simulated x86-64-like machine.

All addresses are plain integers.  Pages come in two sizes (4 KB base pages
and 2 MB huge pages, matching the paper's Skylake host with Transparent Huge
Pages enabled).  Cache lines are 64 bytes.

Address space identifiers (ASIDs) name a (virtual machine, process) pair so
TLB entries survive context switches without flushes, exactly as in the
paper's baseline (Section 1, "Tagging the entry with ASID eliminates the
need to flush the TLB upon a context switch").
"""

from __future__ import annotations

from typing import NamedTuple

CACHE_LINE_BYTES = 64
CACHE_LINE_BITS = 6

PAGE_4K = 4096
PAGE_2M = 2 * 1024 * 1024
PAGE_4K_BITS = 12
PAGE_2M_BITS = 21

#: Bits of virtual address consumed by each radix level.  x86-64 uses four
#: levels; Intel's LA57 extension (cited by the paper as motivation — "a
#: five-level page table will only strengthen the motivation") adds a
#: fifth.
RADIX_LEVEL_BITS = 9
RADIX_LEVELS = 4
MAX_RADIX_LEVELS = 5
PTE_BYTES = 8
ENTRIES_PER_NODE = 512


def line_address(address: int) -> int:
    """Return the cache-line-aligned address containing ``address``."""
    return address & ~(CACHE_LINE_BYTES - 1)


def line_number(address: int) -> int:
    """Return the cache line index (address divided by the line size)."""
    return address >> CACHE_LINE_BITS


def page_number(address: int, page_bits: int = PAGE_4K_BITS) -> int:
    """Return the virtual/physical page number for ``address``."""
    return address >> page_bits


def page_offset(address: int, page_bits: int = PAGE_4K_BITS) -> int:
    """Return the offset of ``address`` within its page."""
    return address & ((1 << page_bits) - 1)


def page_base(address: int, page_bits: int = PAGE_4K_BITS) -> int:
    """Return the base address of the page containing ``address``."""
    return address & ~((1 << page_bits) - 1)


def radix_index(virtual_address: int, level: int) -> int:
    """Return the 9-bit page-table index for ``level``.

    ``level`` follows the paper's Figure 2 naming: level 4 is the PML4
    root (topmost 9 bits of a 48-bit VA), level 1 is the leaf page table;
    level 5 is the LA57 root for 57-bit address spaces.
    """
    if not 1 <= level <= MAX_RADIX_LEVELS:
        raise ValueError(f"radix level must be 1..{MAX_RADIX_LEVELS}, got {level}")
    shift = PAGE_4K_BITS + (level - 1) * RADIX_LEVEL_BITS
    return (virtual_address >> shift) & (ENTRIES_PER_NODE - 1)


class Asid(NamedTuple):
    """Address space identifier: one guest process on one virtual machine.

    A NamedTuple rather than a dataclass: ASIDs are hashed on every TLB
    probe, and tuple hashing is significantly cheaper.
    """

    vm_id: int
    process_id: int = 0

    def __str__(self) -> str:
        return f"vm{self.vm_id}.p{self.process_id}"


KERNEL_ASID = Asid(vm_id=-1, process_id=-1)
