"""repro.mem subpackage."""
