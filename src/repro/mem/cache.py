"""Set-associative cache with type-tagged lines and way partitioning.

Every line carries a *kind* — ``DATA`` or ``TLB`` — because CSALT's whole
premise is that the L2/L3 data caches hold both ordinary data lines and
cached POM-TLB (translation) entries, and that a content-oblivious
replacement policy lets the two streams thrash each other (paper Section
2.2).  The cache exposes:

* ``lookup`` / ``fill`` — the datapath operations; fills honor the active
  way partition when one is installed (victims are chosen inside the
  owning partition, lookups always scan all ways — paper Section 3.1);
* ``set_partition`` — installs a new data/TLB way split (the epoch-boundary
  action of CSALT-D / CSALT-CD);
* ``occupancy_by_kind`` — the periodic scan the authors added to their
  simulator to produce Figure 3;
* optional DIP set-dueling insertion (the Figure 13 comparison scheme).

Internally each set is a ``{tag: way}`` dict plus *flat* preallocated
tag/dirty/kind arrays indexed ``set_index * ways + way``; this is the
simulator's hottest structure, so it avoids per-line objects, per-set
sublists and tuple-returning index helpers on the datapath.  Replacement
bookkeeping runs through monomorphic fast paths bound at construction
(``repro.mem.replacement.fast_paths``); the abstract policy object stays
attached as the reference oracle and can be forced with
``fast_path=False`` (or globally via :func:`set_fast_paths`) for
equivalence testing.

``LineKind`` is an ``IntEnum`` so the datapath can use a kind directly as
an index and a truth value (``DATA`` is falsy, ``TLB`` truthy) without
paying the ``Enum.value`` descriptor per access.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum
from itertools import chain
from typing import Dict, List, Optional

from repro.mem.address import CACHE_LINE_BYTES
from repro.mem.replacement import ReplacementPolicy, fast_paths, make_policy


class LineKind(IntEnum):
    """What a cache line holds: program data or a translation entry."""

    DATA = 0
    TLB = 1


#: Cheap int -> member table for the datapath (``LineKind(value)`` runs
#: the enum ``__call__`` machinery; a tuple index does not).
_KINDS = (LineKind.DATA, LineKind.TLB)

_INVALID = -1

#: Module default for new caches; tests flip it to pin the generic
#: reference path (see :func:`set_fast_paths`).
_FAST_PATHS_ENABLED = True


def set_fast_paths(enabled: bool) -> bool:
    """Set the module-wide fast-path default; returns the previous value.

    Only affects caches constructed afterwards — existing caches keep the
    datapath they were built with.
    """
    global _FAST_PATHS_ENABLED
    previous = _FAST_PATHS_ENABLED
    _FAST_PATHS_ENABLED = bool(enabled)
    return previous


@dataclass(frozen=False)
class Eviction:
    """A victim pushed out by a fill, for writeback propagation."""

    __slots__ = ("address", "kind", "dirty")

    address: int
    kind: LineKind
    dirty: bool


@dataclass
class CacheStats:
    """Hit/miss counters, split by line kind."""

    hits: int = 0
    misses: int = 0
    data_hits: int = 0
    data_misses: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    writebacks: int = 0
    fills: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class DipDueler:
    """DIP set-dueling monitor (Qureshi et al.): LRU-insert vs BIP-insert.

    Leader sets are chosen by set-index stride; a saturating PSEL counter
    tracks which leader policy misses less, and follower sets adopt the
    winner.  BIP inserts at MRU only once every ``bip_throttle`` fills.
    """

    stride: int = 32
    psel: int = 512
    psel_max: int = 1023
    bip_throttle: int = 32
    _bip_count: int = field(default=0, repr=False)

    def leader_role(self, set_index: int) -> Optional[str]:
        if set_index % self.stride == 0:
            return "lru"
        if set_index % self.stride == 1:
            return "bip"
        return None

    def record_miss(self, set_index: int) -> None:
        role = self.leader_role(set_index)
        if role == "lru":
            self.psel = min(self.psel_max, self.psel + 1)
        elif role == "bip":
            self.psel = max(0, self.psel - 1)

    def insert_at_mru(self, set_index: int) -> bool:
        role = self.leader_role(set_index)
        use_bip = role == "bip" or (role is None and self.psel > self.psel_max // 2)
        if not use_bip:
            return True
        self._bip_count += 1
        return self._bip_count % self.bip_throttle == 0


class Cache:
    """One level of a set-associative, write-back, write-allocate cache."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        latency: int,
        policy: str | ReplacementPolicy = "lru",
        line_bytes: int = CACHE_LINE_BYTES,
        dip: bool = False,
        fast_path: Optional[bool] = None,
    ):
        if size_bytes % (ways * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.latency = latency
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count {self.num_sets} not a power of two")
        self._line_shift = line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        self._set_bits = self.num_sets.bit_length() - 1
        if isinstance(policy, ReplacementPolicy):
            self.policy = policy
        else:
            self.policy = make_policy(policy, ways)
        sets = self.num_sets
        lines = sets * ways
        self._tag_to_way: List[Dict[int, int]] = [dict() for _ in range(sets)]
        # Flat parallel arrays, indexed ``set_index * ways + way``.
        self._way_tag: List[int] = [_INVALID] * lines
        self._way_dirty: List[bool] = [False] * lines
        # Kinds stored as plain ints (LineKind is an IntEnum) for speed.
        self._way_kind: List[int] = [0] * lines
        self._recency = [self.policy.new_set_state() for _ in range(sets)]
        self._free_count: List[int] = [ways] * sets
        self.stats = CacheStats()
        # Partition: number of ways reserved for DATA lines; None = unpartitioned.
        self._data_ways: Optional[int] = None
        self._partition_ranges = (range(ways), range(ways))
        self._partition_bounds = ((0, ways), (0, ways))
        self.dip = DipDueler() if dip else None
        # Most recent access's estimated LRU stack position, for profilers
        # running in pseudo-LRU estimation mode (paper Section 3.4).
        self.last_stack_position: Optional[int] = None
        if fast_path is None:
            fast_path = _FAST_PATHS_ENABLED
        bundle = fast_paths(self.policy) if fast_path else None
        self.fast_path = bundle is not None
        if bundle is not None:
            self._hit_update, self._select_victim, self._insert = bundle
        else:
            self._hit_update, self._select_victim, self._insert = (
                self._generic_bundle()
            )

    def _generic_bundle(self):
        """Reference datapath: the abstract policy behind fast-path shims."""
        policy = self.policy
        stack_position = policy.stack_position
        touch = policy.touch
        policy_victim = policy.victim
        policy_insert = policy.insert

        def hit_update(state, way):
            position = stack_position(state, way)
            touch(state, way)
            return position

        def victim(state, lo, hi):
            return policy_victim(state, range(lo, hi))

        def insert(state, way, at_mru):
            policy_insert(state, way, at_mru=at_mru)

        return hit_update, victim, insert

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def index_of(self, address: int):
        """Return (set index, tag) for a byte address.

        Kept for tests and cold paths; the datapath inlines this math to
        avoid the tuple allocation.
        """
        line = address >> self._line_shift
        return line & self._set_mask, line >> self._set_bits

    # ------------------------------------------------------------------
    # Partition control (CSALT epoch boundary)
    # ------------------------------------------------------------------
    @property
    def data_ways(self) -> Optional[int]:
        return self._data_ways

    def set_partition(self, data_ways: Optional[int]) -> None:
        """Reserve ``data_ways`` ways per set for data lines.

        ``None`` removes the partition.  At least one way must remain on
        each side, mirroring the paper's search range ``Nmin..K-1``.
        """
        if data_ways is not None and not 1 <= data_ways <= self.ways - 1:
            raise ValueError(
                f"{self.name}: data_ways must be in [1, {self.ways - 1}], "
                f"got {data_ways}"
            )
        self._data_ways = data_ways
        if data_ways is None:
            self._partition_ranges = (range(self.ways), range(self.ways))
            self._partition_bounds = ((0, self.ways), (0, self.ways))
        else:
            self._partition_ranges = (
                range(data_ways),
                range(data_ways, self.ways),
            )
            self._partition_bounds = ((0, data_ways), (data_ways, self.ways))

    def _candidate_ways(self, kind: LineKind) -> range:
        return self._partition_ranges[kind]

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def lookup(self, address: int, kind: int, is_write: bool = False) -> bool:
        """Probe for ``address``; update recency and stats.

        All ways are scanned regardless of the partition, because lines may
        sit in the other partition's ways after a repartition (paper
        Section 3.1, Cache Lookup).  ``kind`` may be a :class:`LineKind`
        or its plain int value.
        """
        line = address >> self._line_shift
        set_index = line & self._set_mask
        way = self._tag_to_way[set_index].get(line >> self._set_bits)
        stats = self.stats
        if way is not None:
            self.last_stack_position = self._hit_update(
                self._recency[set_index], way
            )
            if is_write:
                self._way_dirty[set_index * self.ways + way] = True
            stats.hits += 1
            if kind:
                stats.tlb_hits += 1
            else:
                stats.data_hits += 1
            return True
        self.last_stack_position = None
        stats.misses += 1
        if kind:
            stats.tlb_misses += 1
        else:
            stats.data_misses += 1
        if self.dip is not None:
            self.dip.record_miss(set_index)
        return False

    def fill(
        self, address: int, kind: int, dirty: bool = False
    ) -> Optional[Eviction]:
        """Install ``address`` after a miss; return the victim if valid.

        The victim is the LRU line among the ways owned by ``kind``'s
        partition (paper Section 3.1, Cache Replacement).
        """
        line = address >> self._line_shift
        set_index = line & self._set_mask
        tag = line >> self._set_bits
        tags = self._tag_to_way[set_index]
        way_tag = self._way_tag
        ways = self.ways
        base = set_index * ways
        lo, hi = self._partition_bounds[kind]
        victim_way = None
        if self._free_count[set_index]:
            for way in range(lo, hi):
                if way_tag[base + way] == _INVALID:
                    victim_way = way
                    self._free_count[set_index] -= 1
                    break
        if victim_way is None:
            victim_way = self._select_victim(self._recency[set_index], lo, hi)
        evicted = None
        slot = base + victim_way
        old_tag = way_tag[slot]
        if old_tag != _INVALID:
            del tags[old_tag]
            old_dirty = self._way_dirty[slot]
            victim_address = (
                (old_tag << self._set_bits) | set_index
            ) << self._line_shift
            evicted = Eviction(
                victim_address,
                _KINDS[self._way_kind[slot]],
                old_dirty,
            )
            if old_dirty:
                self.stats.writebacks += 1
        way_tag[slot] = tag
        tags[tag] = victim_way
        self._way_dirty[slot] = dirty
        self._way_kind[slot] = kind & 1
        at_mru = True
        if self.dip is not None:
            at_mru = self.dip.insert_at_mru(set_index)
        self._insert(self._recency[set_index], victim_way, at_mru)
        self.stats.fills += 1
        return evicted

    def write_back(self, address: int, kind: int) -> Optional[Eviction]:
        """Absorb a dirty victim from the level above.

        If the line is present it is just marked dirty; otherwise it is
        installed dirty (non-inclusive hierarchy).  Writebacks do not touch
        the demand hit/miss statistics.
        """
        line = address >> self._line_shift
        set_index = line & self._set_mask
        way = self._tag_to_way[set_index].get(line >> self._set_bits)
        if way is not None:
            self._way_dirty[set_index * self.ways + way] = True
            return None
        return self.fill(address, kind, dirty=True)

    def probe(self, address: int) -> bool:
        """Side-effect-free presence check (no recency or stats update)."""
        set_index, tag = self.index_of(address)
        return tag in self._tag_to_way[set_index]

    def invalidate(self, address: int) -> bool:
        """Drop ``address`` if present; returns whether a line was dropped."""
        set_index, tag = self.index_of(address)
        way = self._tag_to_way[set_index].pop(tag, None)
        if way is None:
            return False
        slot = set_index * self.ways + way
        self._way_tag[slot] = _INVALID
        self._way_dirty[slot] = False
        self._free_count[set_index] += 1
        return True

    def kind_at(self, address: int) -> Optional[LineKind]:
        """Kind of the resident line, or None if absent (test helper)."""
        set_index, tag = self.index_of(address)
        way = self._tag_to_way[set_index].get(tag)
        if way is None:
            return None
        return _KINDS[self._way_kind[set_index * self.ways + way]]

    # ------------------------------------------------------------------
    # Introspection (Figure 3 occupancy scan and friends)
    # ------------------------------------------------------------------
    def occupancy_by_kind(self, sample_shift: int = 0) -> dict:
        """Fraction of capacity holding valid lines of each kind.

        ``sample_shift`` scans only every ``2**sample_shift``-th set — the
        periodic-scan shortcut the paper's footnote 2 describes.
        """
        step = 1 << sample_shift
        data_count = 0
        tlb_count = 0
        scanned_sets = 0
        ways = self.ways
        way_tag = self._way_tag
        way_kind = self._way_kind
        for set_index in range(0, self.num_sets, step):
            scanned_sets += 1
            base = set_index * ways
            for slot in range(base, base + ways):
                if way_tag[slot] != _INVALID:
                    if way_kind[slot]:
                        tlb_count += 1
                    else:
                        data_count += 1
        total = scanned_sets * self.ways
        return {
            LineKind.DATA: data_count / total,
            LineKind.TLB: tlb_count / total,
        }

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose this cache's counters as callback gauges under ``prefix``.

        Callbacks read ``self.stats`` lazily (the stats object is replaced
        on ``reset_stats``) and the occupancy scan runs only at registry
        export time, so the datapath pays nothing.
        """
        registry.gauge(f"{prefix}.hits", lambda: self.stats.hits)
        registry.gauge(f"{prefix}.misses", lambda: self.stats.misses)
        registry.gauge(f"{prefix}.miss_rate", lambda: self.stats.miss_rate)
        registry.gauge(f"{prefix}.data_hits", lambda: self.stats.data_hits)
        registry.gauge(f"{prefix}.data_misses", lambda: self.stats.data_misses)
        registry.gauge(f"{prefix}.tlb_hits", lambda: self.stats.tlb_hits)
        registry.gauge(f"{prefix}.tlb_misses", lambda: self.stats.tlb_misses)
        registry.gauge(f"{prefix}.writebacks", lambda: self.stats.writebacks)
        registry.gauge(f"{prefix}.fills", lambda: self.stats.fills)
        registry.gauge(
            f"{prefix}.tlb_occupancy",
            lambda: self.occupancy_by_kind(sample_shift=3)[LineKind.TLB],
        )
        registry.gauge(
            f"{prefix}.data_ways",
            lambda: -1 if self._data_ways is None else self._data_ways,
        )

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Plain-data snapshot: tags, recency stacks, partition, stats.

        The snapshot keeps the *nested* per-set layout the pre-flat-array
        format used (``way_tag[set_index][way]``), so snapshots and stores
        written before the flat-array datapath stay loadable and new
        snapshots stay byte-compatible with old readers.  Geometry
        (sets/ways/policy) is construction state and is *not* serialized —
        ``load_state`` verifies it.
        """
        ways = self.ways
        return {
            "tag_to_way": [dict(tags) for tags in self._tag_to_way],
            "way_tag": [
                self._way_tag[base:base + ways]
                for base in range(0, self.num_sets * ways, ways)
            ],
            "way_dirty": [
                self._way_dirty[base:base + ways]
                for base in range(0, self.num_sets * ways, ways)
            ],
            "way_kind": [
                self._way_kind[base:base + ways]
                for base in range(0, self.num_sets * ways, ways)
            ],
            "recency": [list(state) for state in self._recency],
            "free_count": list(self._free_count),
            "data_ways": self._data_ways,
            "dip": (
                None if self.dip is None
                else {"psel": self.dip.psel, "bip_count": self.dip._bip_count}
            ),
            "last_stack_position": self.last_stack_position,
            "stats": replace(self.stats),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this (same-shaped) cache."""
        way_tag = state["way_tag"]
        if len(way_tag) != self.num_sets or any(
            len(tags) != self.ways for tags in way_tag
        ):
            raise ValueError(
                f"{self.name}: snapshot geometry does not match "
                f"{self.num_sets} sets x {self.ways} ways"
            )
        if (state["dip"] is None) != (self.dip is None):
            raise ValueError(
                f"{self.name}: snapshot DIP state does not match configuration"
            )
        self._tag_to_way = [dict(tags) for tags in state["tag_to_way"]]
        self._way_tag = list(chain.from_iterable(way_tag))
        self._way_dirty = list(chain.from_iterable(state["way_dirty"]))
        self._way_kind = [int(kind) for kind in chain.from_iterable(state["way_kind"])]
        self._recency = [list(recency) for recency in state["recency"]]
        self._free_count = list(state["free_count"])
        self.set_partition(state["data_ways"])
        if self.dip is not None:
            self.dip.psel = state["dip"]["psel"]
            self.dip._bip_count = state["dip"]["bip_count"]
        self.last_stack_position = state["last_stack_position"]
        self.stats = replace(state["stats"])

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.size_bytes // 1024}KB, "
            f"{self.ways}-way, {self.num_sets} sets)"
        )
