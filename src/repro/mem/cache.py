"""Set-associative cache with type-tagged lines and way partitioning.

Every line carries a *kind* — ``DATA`` or ``TLB`` — because CSALT's whole
premise is that the L2/L3 data caches hold both ordinary data lines and
cached POM-TLB (translation) entries, and that a content-oblivious
replacement policy lets the two streams thrash each other (paper Section
2.2).  The cache exposes:

* ``lookup`` / ``fill`` — the datapath operations; fills honor the active
  way partition when one is installed (victims are chosen inside the
  owning partition, lookups always scan all ways — paper Section 3.1);
* ``set_partition`` — installs a new data/TLB way split (the epoch-boundary
  action of CSALT-D / CSALT-CD);
* ``occupancy_by_kind`` — the periodic scan the authors added to their
  simulator to produce Figure 3;
* optional DIP set-dueling insertion (the Figure 13 comparison scheme).

Internally each set is a ``{tag: way}`` dict plus parallel per-way arrays
(tag/dirty/kind); this is the simulator's hottest structure, so it avoids
per-line objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional

from repro.mem.address import CACHE_LINE_BYTES
from repro.mem.replacement import ReplacementPolicy, make_policy


class LineKind(Enum):
    """What a cache line holds: program data or a translation entry."""

    DATA = 0
    TLB = 1


_INVALID = -1


@dataclass
class Eviction:
    """A victim pushed out by a fill, for writeback propagation."""

    address: int
    kind: LineKind
    dirty: bool


@dataclass
class CacheStats:
    """Hit/miss counters, split by line kind."""

    hits: int = 0
    misses: int = 0
    data_hits: int = 0
    data_misses: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    writebacks: int = 0
    fills: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class DipDueler:
    """DIP set-dueling monitor (Qureshi et al.): LRU-insert vs BIP-insert.

    Leader sets are chosen by set-index stride; a saturating PSEL counter
    tracks which leader policy misses less, and follower sets adopt the
    winner.  BIP inserts at MRU only once every ``bip_throttle`` fills.
    """

    stride: int = 32
    psel: int = 512
    psel_max: int = 1023
    bip_throttle: int = 32
    _bip_count: int = field(default=0, repr=False)

    def leader_role(self, set_index: int) -> Optional[str]:
        if set_index % self.stride == 0:
            return "lru"
        if set_index % self.stride == 1:
            return "bip"
        return None

    def record_miss(self, set_index: int) -> None:
        role = self.leader_role(set_index)
        if role == "lru":
            self.psel = min(self.psel_max, self.psel + 1)
        elif role == "bip":
            self.psel = max(0, self.psel - 1)

    def insert_at_mru(self, set_index: int) -> bool:
        role = self.leader_role(set_index)
        use_bip = role == "bip" or (role is None and self.psel > self.psel_max // 2)
        if not use_bip:
            return True
        self._bip_count += 1
        return self._bip_count % self.bip_throttle == 0


class Cache:
    """One level of a set-associative, write-back, write-allocate cache."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        latency: int,
        policy: str | ReplacementPolicy = "lru",
        line_bytes: int = CACHE_LINE_BYTES,
        dip: bool = False,
    ):
        if size_bytes % (ways * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.latency = latency
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count {self.num_sets} not a power of two")
        self._line_shift = line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        self._set_bits = self.num_sets.bit_length() - 1
        if isinstance(policy, ReplacementPolicy):
            self.policy = policy
        else:
            self.policy = make_policy(policy, ways)
        sets = self.num_sets
        self._tag_to_way: List[Dict[int, int]] = [dict() for _ in range(sets)]
        self._way_tag: List[List[int]] = [[_INVALID] * ways for _ in range(sets)]
        self._way_dirty: List[List[bool]] = [[False] * ways for _ in range(sets)]
        # Kinds stored as LineKind.value ints for speed.
        self._way_kind: List[List[int]] = [[0] * ways for _ in range(sets)]
        self._recency = [self.policy.new_set_state() for _ in range(sets)]
        self._free_count: List[int] = [ways] * sets
        self.stats = CacheStats()
        # Partition: number of ways reserved for DATA lines; None = unpartitioned.
        self._data_ways: Optional[int] = None
        self._partition_ranges = (range(ways), range(ways))
        self.dip = DipDueler() if dip else None
        # Most recent access's estimated LRU stack position, for profilers
        # running in pseudo-LRU estimation mode (paper Section 3.4).
        self.last_stack_position: Optional[int] = None

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def index_of(self, address: int):
        """Return (set index, tag) for a byte address."""
        line = address >> self._line_shift
        return line & self._set_mask, line >> self._set_bits

    # ------------------------------------------------------------------
    # Partition control (CSALT epoch boundary)
    # ------------------------------------------------------------------
    @property
    def data_ways(self) -> Optional[int]:
        return self._data_ways

    def set_partition(self, data_ways: Optional[int]) -> None:
        """Reserve ``data_ways`` ways per set for data lines.

        ``None`` removes the partition.  At least one way must remain on
        each side, mirroring the paper's search range ``Nmin..K-1``.
        """
        if data_ways is not None and not 1 <= data_ways <= self.ways - 1:
            raise ValueError(
                f"{self.name}: data_ways must be in [1, {self.ways - 1}], "
                f"got {data_ways}"
            )
        self._data_ways = data_ways
        if data_ways is None:
            self._partition_ranges = (range(self.ways), range(self.ways))
        else:
            self._partition_ranges = (
                range(data_ways),
                range(data_ways, self.ways),
            )

    def _candidate_ways(self, kind: LineKind) -> range:
        return self._partition_ranges[kind.value]

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def lookup(self, address: int, kind: LineKind, is_write: bool = False) -> bool:
        """Probe for ``address``; update recency and stats.

        All ways are scanned regardless of the partition, because lines may
        sit in the other partition's ways after a repartition (paper
        Section 3.1, Cache Lookup).
        """
        line = address >> self._line_shift
        set_index = line & self._set_mask
        tag = line >> self._set_bits
        way = self._tag_to_way[set_index].get(tag)
        stats = self.stats
        if way is not None:
            recency = self._recency[set_index]
            self.last_stack_position = self.policy.stack_position(recency, way)
            self.policy.touch(recency, way)
            if is_write:
                self._way_dirty[set_index][way] = True
            stats.hits += 1
            if kind is LineKind.DATA:
                stats.data_hits += 1
            else:
                stats.tlb_hits += 1
            return True
        self.last_stack_position = None
        stats.misses += 1
        if kind is LineKind.DATA:
            stats.data_misses += 1
        else:
            stats.tlb_misses += 1
        if self.dip is not None:
            self.dip.record_miss(set_index)
        return False

    def fill(
        self, address: int, kind: LineKind, dirty: bool = False
    ) -> Optional[Eviction]:
        """Install ``address`` after a miss; return the victim if valid.

        The victim is the LRU line among the ways owned by ``kind``'s
        partition (paper Section 3.1, Cache Replacement).
        """
        line = address >> self._line_shift
        set_index = line & self._set_mask
        tag = line >> self._set_bits
        tags = self._tag_to_way[set_index]
        way_tag = self._way_tag[set_index]
        candidates = self._partition_ranges[kind.value]
        victim_way = None
        if self._free_count[set_index]:
            for way in candidates:
                if way_tag[way] == _INVALID:
                    victim_way = way
                    self._free_count[set_index] -= 1
                    break
        if victim_way is None:
            victim_way = self.policy.victim(self._recency[set_index], candidates)
        evicted = None
        old_tag = way_tag[victim_way]
        if old_tag != _INVALID:
            del tags[old_tag]
            old_dirty = self._way_dirty[set_index][victim_way]
            victim_address = (
                (old_tag << self._set_bits) | set_index
            ) << self._line_shift
            evicted = Eviction(
                victim_address,
                LineKind(self._way_kind[set_index][victim_way]),
                old_dirty,
            )
            if old_dirty:
                self.stats.writebacks += 1
        way_tag[victim_way] = tag
        tags[tag] = victim_way
        self._way_dirty[set_index][victim_way] = dirty
        self._way_kind[set_index][victim_way] = kind.value
        at_mru = True
        if self.dip is not None:
            at_mru = self.dip.insert_at_mru(set_index)
        self.policy.insert(self._recency[set_index], victim_way, at_mru=at_mru)
        self.stats.fills += 1
        return evicted

    def write_back(self, address: int, kind: LineKind) -> Optional[Eviction]:
        """Absorb a dirty victim from the level above.

        If the line is present it is just marked dirty; otherwise it is
        installed dirty (non-inclusive hierarchy).  Writebacks do not touch
        the demand hit/miss statistics.
        """
        line = address >> self._line_shift
        set_index = line & self._set_mask
        tag = line >> self._set_bits
        way = self._tag_to_way[set_index].get(tag)
        if way is not None:
            self._way_dirty[set_index][way] = True
            return None
        return self.fill(address, kind, dirty=True)

    def probe(self, address: int) -> bool:
        """Side-effect-free presence check (no recency or stats update)."""
        set_index, tag = self.index_of(address)
        return tag in self._tag_to_way[set_index]

    def invalidate(self, address: int) -> bool:
        """Drop ``address`` if present; returns whether a line was dropped."""
        set_index, tag = self.index_of(address)
        way = self._tag_to_way[set_index].pop(tag, None)
        if way is None:
            return False
        self._way_tag[set_index][way] = _INVALID
        self._way_dirty[set_index][way] = False
        self._free_count[set_index] += 1
        return True

    def kind_at(self, address: int) -> Optional[LineKind]:
        """Kind of the resident line, or None if absent (test helper)."""
        set_index, tag = self.index_of(address)
        way = self._tag_to_way[set_index].get(tag)
        if way is None:
            return None
        return LineKind(self._way_kind[set_index][way])

    # ------------------------------------------------------------------
    # Introspection (Figure 3 occupancy scan and friends)
    # ------------------------------------------------------------------
    def occupancy_by_kind(self, sample_shift: int = 0) -> dict:
        """Fraction of capacity holding valid lines of each kind.

        ``sample_shift`` scans only every ``2**sample_shift``-th set — the
        periodic-scan shortcut the paper's footnote 2 describes.
        """
        step = 1 << sample_shift
        data_count = 0
        tlb_count = 0
        scanned_sets = 0
        for set_index in range(0, self.num_sets, step):
            scanned_sets += 1
            way_tag = self._way_tag[set_index]
            way_kind = self._way_kind[set_index]
            for way in range(self.ways):
                if way_tag[way] != _INVALID:
                    if way_kind[way]:
                        tlb_count += 1
                    else:
                        data_count += 1
        total = scanned_sets * self.ways
        return {
            LineKind.DATA: data_count / total,
            LineKind.TLB: tlb_count / total,
        }

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose this cache's counters as callback gauges under ``prefix``.

        Callbacks read ``self.stats`` lazily (the stats object is replaced
        on ``reset_stats``) and the occupancy scan runs only at registry
        export time, so the datapath pays nothing.
        """
        registry.gauge(f"{prefix}.hits", lambda: self.stats.hits)
        registry.gauge(f"{prefix}.misses", lambda: self.stats.misses)
        registry.gauge(f"{prefix}.miss_rate", lambda: self.stats.miss_rate)
        registry.gauge(f"{prefix}.data_hits", lambda: self.stats.data_hits)
        registry.gauge(f"{prefix}.data_misses", lambda: self.stats.data_misses)
        registry.gauge(f"{prefix}.tlb_hits", lambda: self.stats.tlb_hits)
        registry.gauge(f"{prefix}.tlb_misses", lambda: self.stats.tlb_misses)
        registry.gauge(f"{prefix}.writebacks", lambda: self.stats.writebacks)
        registry.gauge(f"{prefix}.fills", lambda: self.stats.fills)
        registry.gauge(
            f"{prefix}.tlb_occupancy",
            lambda: self.occupancy_by_kind(sample_shift=3)[LineKind.TLB],
        )
        registry.gauge(
            f"{prefix}.data_ways",
            lambda: -1 if self._data_ways is None else self._data_ways,
        )

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Plain-data snapshot: tags, recency stacks, partition, stats.

        Every policy's per-set recency state is a flat list, so a list
        copy captures it; geometry (sets/ways/policy) is construction
        state and is *not* serialized — ``load_state`` verifies it.
        """
        return {
            "tag_to_way": [dict(tags) for tags in self._tag_to_way],
            "way_tag": [list(tags) for tags in self._way_tag],
            "way_dirty": [list(bits) for bits in self._way_dirty],
            "way_kind": [list(kinds) for kinds in self._way_kind],
            "recency": [list(state) for state in self._recency],
            "free_count": list(self._free_count),
            "data_ways": self._data_ways,
            "dip": (
                None if self.dip is None
                else {"psel": self.dip.psel, "bip_count": self.dip._bip_count}
            ),
            "last_stack_position": self.last_stack_position,
            "stats": replace(self.stats),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this (same-shaped) cache."""
        way_tag = state["way_tag"]
        if len(way_tag) != self.num_sets or any(
            len(tags) != self.ways for tags in way_tag
        ):
            raise ValueError(
                f"{self.name}: snapshot geometry does not match "
                f"{self.num_sets} sets x {self.ways} ways"
            )
        if (state["dip"] is None) != (self.dip is None):
            raise ValueError(
                f"{self.name}: snapshot DIP state does not match configuration"
            )
        self._tag_to_way = [dict(tags) for tags in state["tag_to_way"]]
        self._way_tag = [list(tags) for tags in way_tag]
        self._way_dirty = [list(bits) for bits in state["way_dirty"]]
        self._way_kind = [list(kinds) for kinds in state["way_kind"]]
        self._recency = [list(recency) for recency in state["recency"]]
        self._free_count = list(state["free_count"])
        self.set_partition(state["data_ways"])
        if self.dip is not None:
            self.dip.psel = state["dip"]["psel"]
            self.dip._bip_count = state["dip"]["bip_count"]
        self.last_stack_position = state["last_stack_position"]
        self.stats = replace(state["stats"])

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.size_bytes // 1024}KB, "
            f"{self.ways}-way, {self.num_sets} sets)"
        )
