"""Cache replacement policies with partition-aware victim selection.

CSALT's partitioning needs two things from the replacement policy beyond
ordinary victim selection (paper Sections 3.1 and 3.4):

* **victim restricted to a way range** — on a fill, the victim is the least
  recently used line *within the partition that owns the incoming line's
  type* (data ways ``0..N-1``, TLB ways ``N..K-1``);
* **an (estimated) LRU stack position** for every access, which feeds the
  Mattson stack-distance profilers.  True-LRU yields the exact position;
  NRU and binary-tree pseudo-LRU yield the estimates of Kedzierski et al.
  that the paper adopts in Section 3.4.

Every policy keeps one state object per cache set; the cache owns the
mapping from set index to state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List


class ReplacementPolicy(ABC):
    """Recency bookkeeping for one cache, parameterized by associativity."""

    def __init__(self, ways: int):
        if ways < 1:
            raise ValueError(f"associativity must be positive, got {ways}")
        self.ways = ways

    @abstractmethod
    def new_set_state(self) -> object:
        """Return fresh per-set recency state (all ways least-recent)."""

    @abstractmethod
    def touch(self, state: object, way: int) -> None:
        """Record an access (hit or fill) to ``way``."""

    @abstractmethod
    def victim(self, state: object, candidates: Iterable[int]) -> int:
        """Return the least-recently-used way among ``candidates``."""

    @abstractmethod
    def stack_position(self, state: object, way: int) -> int:
        """Estimated LRU-stack position of ``way`` (0 = MRU, ways-1 = LRU)."""

    def insert(self, state: object, way: int, at_mru: bool = True) -> None:
        """Place a filled ``way`` at the MRU (default) or LRU position.

        The LRU variant implements BIP-style insertion for the DIP
        comparison scheme; policies without a meaningful LRU insertion
        point treat it as a plain touch.
        """
        self.touch(state, way)


class TrueLRU(ReplacementPolicy):
    """Exact least-recently-used ordering.

    Per-set state is a list of way indices ordered most-recent first, so
    ``state.index(way)`` *is* the Mattson stack position.
    """

    def new_set_state(self) -> List[int]:
        return list(range(self.ways))

    def touch(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def victim(self, state: List[int], candidates: Iterable[int]) -> int:
        # `candidates` is typically a range; `in` is O(1) for ranges.
        for way in reversed(state):
            if way in candidates:
                return way
        raise ValueError("candidates contain no valid way index")

    def stack_position(self, state: List[int], way: int) -> int:
        return state.index(way)

    def insert(self, state: List[int], way: int, at_mru: bool = True) -> None:
        state.remove(way)
        if at_mru:
            state.insert(0, way)
        else:
            state.append(way)


class NRU(ReplacementPolicy):
    """Not-recently-used: one reference bit per way.

    Victim is the first candidate whose bit is clear; if none is clear in
    the candidate range, all candidate bits are reset first (the standard
    NRU epoch reset, scoped to the partition so one partition's resets do
    not disturb the other's bits).

    Stack positions are estimated as in Kedzierski et al.: recently-used
    lines (bit set) occupy the upper half of the recency stack and
    not-recently-used lines the lower half; each group is placed at its
    midpoint.
    """

    def new_set_state(self) -> List[bool]:
        return [False] * self.ways

    def touch(self, state: List[bool], way: int) -> None:
        state[way] = True
        if all(state):
            for i in range(self.ways):
                if i != way:
                    state[i] = False

    def victim(self, state: List[bool], candidates: Iterable[int]) -> int:
        ordered = list(candidates)
        if not ordered:
            raise ValueError("victim requested from an empty partition")
        for way in ordered:
            if not state[way]:
                return way
        for way in ordered:
            state[way] = False
        return ordered[0]

    def stack_position(self, state: List[bool], way: int) -> int:
        referenced = sum(state)
        if state[way]:
            return max(0, referenced // 2 - (1 if way == 0 else 0)) % self.ways
        return min(self.ways - 1, referenced + (self.ways - referenced) // 2)


class TreePLRU(ReplacementPolicy):
    """Binary-tree pseudo-LRU (associativity must be a power of two).

    Per-set state is the flat array of ``ways - 1`` tree bits; bit value 0
    means "left subtree is older".  Stack positions use the identifier
    estimate from the paper's Section 3.4: each tree level on the path to a
    way contributes half the remaining stack range when it points *toward*
    the way (the way looks old at that level).
    """

    def __init__(self, ways: int):
        super().__init__(ways)
        if ways & (ways - 1):
            raise ValueError(f"tree PLRU needs power-of-two ways, got {ways}")
        self.levels = ways.bit_length() - 1

    def new_set_state(self) -> List[int]:
        return [0] * (self.ways - 1)

    def _path(self, way: int):
        """Yield (node_index, went_right) pairs from root to ``way``."""
        node = 0
        for level in range(self.levels, 0, -1):
            went_right = (way >> (level - 1)) & 1
            yield node, went_right
            node = 2 * node + 1 + went_right

    def touch(self, state: List[int], way: int) -> None:
        for node, went_right in self._path(way):
            # Point the bit away from the accessed way.
            state[node] = 0 if went_right else 1

    def victim(self, state: List[int], candidates: Iterable[int]) -> int:
        allowed = set(candidates)
        if not allowed:
            raise ValueError("victim requested from an empty partition")
        best_way = None
        best_age = -1
        for way in allowed:
            age = self.stack_position(state, way)
            if age > best_age:
                best_age = age
                best_way = way
        return best_way

    def stack_position(self, state: List[int], way: int) -> int:
        position = 0
        span = self.ways
        for node, went_right in self._path(way):
            span //= 2
            if state[node] == went_right:
                # Tree points toward this way: it is in the older half.
                position += span
        return min(position, self.ways - 1)


class Rrip(ReplacementPolicy):
    """Static RRIP (Jaleel et al., cited by the paper's Section 6).

    Per-way 2-bit re-reference prediction values (RRPV): 0 = re-reference
    imminent, 3 = distant.  Hits promote to 0; fills insert at 2 (SRRIP's
    "long" interval) or 3 for BIP-style distant insertion; the victim is
    the first candidate at RRPV 3, aging all candidates when none is.

    Stack positions are estimated by RRPV ordering (ways at lower RRPV
    are younger), the same spirit as the paper's Section 3.4 estimates.
    """

    MAX_RRPV = 3
    INSERT_RRPV = 2

    def new_set_state(self) -> List[int]:
        return [self.MAX_RRPV] * self.ways

    def touch(self, state: List[int], way: int) -> None:
        state[way] = 0

    def victim(self, state: List[int], candidates: Iterable[int]) -> int:
        ordered = list(candidates)
        if not ordered:
            raise ValueError("victim requested from an empty partition")
        while True:
            for way in ordered:
                if state[way] >= self.MAX_RRPV:
                    return way
            for way in ordered:
                state[way] += 1

    def stack_position(self, state: List[int], way: int) -> int:
        rrpv = state[way]
        younger = sum(1 for value in state if value < rrpv)
        peers = sum(1 for value in state if value == rrpv) - 1
        return min(self.ways - 1, younger + peers // 2)

    def insert(self, state: List[int], way: int, at_mru: bool = True) -> None:
        state[way] = self.INSERT_RRPV if at_mru else self.MAX_RRPV


def make_policy(name: str, ways: int) -> ReplacementPolicy:
    """Build a policy by name: ``lru``, ``nru``, ``plru`` or ``rrip``."""
    table = {"lru": TrueLRU, "nru": NRU, "plru": TreePLRU, "rrip": Rrip}
    try:
        return table[name.lower()](ways)
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {sorted(table)}"
        ) from None
