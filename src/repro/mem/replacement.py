"""Cache replacement policies with partition-aware victim selection.

CSALT's partitioning needs two things from the replacement policy beyond
ordinary victim selection (paper Sections 3.1 and 3.4):

* **victim restricted to a way range** — on a fill, the victim is the least
  recently used line *within the partition that owns the incoming line's
  type* (data ways ``0..N-1``, TLB ways ``N..K-1``);
* **an (estimated) LRU stack position** for every access, which feeds the
  Mattson stack-distance profilers.  True-LRU yields the exact position;
  NRU and binary-tree pseudo-LRU yield the estimates of Kedzierski et al.
  that the paper adopts in Section 3.4.

Every policy keeps one state object per cache set; the cache owns the
mapping from set index to state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List


class ReplacementPolicy(ABC):
    """Recency bookkeeping for one cache, parameterized by associativity."""

    def __init__(self, ways: int):
        if ways < 1:
            raise ValueError(f"associativity must be positive, got {ways}")
        self.ways = ways

    @abstractmethod
    def new_set_state(self) -> object:
        """Return fresh per-set recency state (all ways least-recent)."""

    @abstractmethod
    def touch(self, state: object, way: int) -> None:
        """Record an access (hit or fill) to ``way``."""

    @abstractmethod
    def victim(self, state: object, candidates: Iterable[int]) -> int:
        """Return the least-recently-used way among ``candidates``."""

    @abstractmethod
    def stack_position(self, state: object, way: int) -> int:
        """Estimated LRU-stack position of ``way`` (0 = MRU, ways-1 = LRU)."""

    def insert(self, state: object, way: int, at_mru: bool = True) -> None:
        """Place a filled ``way`` at the MRU (default) or LRU position.

        The LRU variant implements BIP-style insertion for the DIP
        comparison scheme; policies without a meaningful LRU insertion
        point treat it as a plain touch.
        """
        self.touch(state, way)


class TrueLRU(ReplacementPolicy):
    """Exact least-recently-used ordering.

    Per-set state is a list of way indices ordered most-recent first, so
    ``state.index(way)`` *is* the Mattson stack position.
    """

    def new_set_state(self) -> List[int]:
        return list(range(self.ways))

    def touch(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def victim(self, state: List[int], candidates: Iterable[int]) -> int:
        # `candidates` is typically a range; `in` is O(1) for ranges.
        for way in reversed(state):
            if way in candidates:
                return way
        raise ValueError("candidates contain no valid way index")

    def stack_position(self, state: List[int], way: int) -> int:
        return state.index(way)

    def insert(self, state: List[int], way: int, at_mru: bool = True) -> None:
        state.remove(way)
        if at_mru:
            state.insert(0, way)
        else:
            state.append(way)


class NRU(ReplacementPolicy):
    """Not-recently-used: one reference bit per way.

    Victim is the first candidate whose bit is clear; if none is clear in
    the candidate range, all candidate bits are reset first (the standard
    NRU epoch reset, scoped to the partition so one partition's resets do
    not disturb the other's bits).

    Stack positions are estimated as in Kedzierski et al.: recently-used
    lines (bit set) occupy the upper half of the recency stack and
    not-recently-used lines the lower half; each group is placed at its
    midpoint.
    """

    def new_set_state(self) -> List[bool]:
        return [False] * self.ways

    def touch(self, state: List[bool], way: int) -> None:
        state[way] = True
        if all(state):
            for i in range(self.ways):
                if i != way:
                    state[i] = False

    def victim(self, state: List[bool], candidates: Iterable[int]) -> int:
        ordered = list(candidates)
        if not ordered:
            raise ValueError("victim requested from an empty partition")
        for way in ordered:
            if not state[way]:
                return way
        for way in ordered:
            state[way] = False
        return ordered[0]

    def stack_position(self, state: List[bool], way: int) -> int:
        referenced = sum(state)
        if state[way]:
            return max(0, referenced // 2 - (1 if way == 0 else 0)) % self.ways
        return min(self.ways - 1, referenced + (self.ways - referenced) // 2)


class TreePLRU(ReplacementPolicy):
    """Binary-tree pseudo-LRU (associativity must be a power of two).

    Per-set state is the flat array of ``ways - 1`` tree bits; bit value 0
    means "left subtree is older".  Stack positions use the identifier
    estimate from the paper's Section 3.4: each tree level on the path to a
    way contributes half the remaining stack range when it points *toward*
    the way (the way looks old at that level).
    """

    def __init__(self, ways: int):
        super().__init__(ways)
        if ways & (ways - 1):
            raise ValueError(f"tree PLRU needs power-of-two ways, got {ways}")
        self.levels = ways.bit_length() - 1

    def new_set_state(self) -> List[int]:
        return [0] * (self.ways - 1)

    def _path(self, way: int):
        """Yield (node_index, went_right) pairs from root to ``way``."""
        node = 0
        for level in range(self.levels, 0, -1):
            went_right = (way >> (level - 1)) & 1
            yield node, went_right
            node = 2 * node + 1 + went_right

    def touch(self, state: List[int], way: int) -> None:
        for node, went_right in self._path(way):
            # Point the bit away from the accessed way.
            state[node] = 0 if went_right else 1

    def victim(self, state: List[int], candidates: Iterable[int]) -> int:
        allowed = set(candidates)
        if not allowed:
            raise ValueError("victim requested from an empty partition")
        best_way = None
        best_age = -1
        for way in allowed:
            age = self.stack_position(state, way)
            if age > best_age:
                best_age = age
                best_way = way
        return best_way

    def stack_position(self, state: List[int], way: int) -> int:
        position = 0
        span = self.ways
        for node, went_right in self._path(way):
            span //= 2
            if state[node] == went_right:
                # Tree points toward this way: it is in the older half.
                position += span
        return min(position, self.ways - 1)


class Rrip(ReplacementPolicy):
    """Static RRIP (Jaleel et al., cited by the paper's Section 6).

    Per-way 2-bit re-reference prediction values (RRPV): 0 = re-reference
    imminent, 3 = distant.  Hits promote to 0; fills insert at 2 (SRRIP's
    "long" interval) or 3 for BIP-style distant insertion; the victim is
    the first candidate at RRPV 3, aging all candidates when none is.

    Stack positions are estimated by RRPV ordering (ways at lower RRPV
    are younger), the same spirit as the paper's Section 3.4 estimates.
    """

    MAX_RRPV = 3
    INSERT_RRPV = 2

    def new_set_state(self) -> List[int]:
        return [self.MAX_RRPV] * self.ways

    def touch(self, state: List[int], way: int) -> None:
        state[way] = 0

    def victim(self, state: List[int], candidates: Iterable[int]) -> int:
        ordered = list(candidates)
        if not ordered:
            raise ValueError("victim requested from an empty partition")
        while True:
            for way in ordered:
                if state[way] >= self.MAX_RRPV:
                    return way
            for way in ordered:
                state[way] += 1

    def stack_position(self, state: List[int], way: int) -> int:
        rrpv = state[way]
        younger = sum(1 for value in state if value < rrpv)
        peers = sum(1 for value in state if value == rrpv) - 1
        return min(self.ways - 1, younger + peers // 2)

    def insert(self, state: List[int], way: int, at_mru: bool = True) -> None:
        state[way] = self.INSERT_RRPV if at_mru else self.MAX_RRPV


# ----------------------------------------------------------------------
# Monomorphic fast paths
# ----------------------------------------------------------------------
#
# The abstract-method dispatch above is the *reference* implementation;
# the cache datapath calls these specialized closures instead (bound once
# at cache construction).  Each factory returns ``(hit_update, victim,
# insert)`` where
#
# * ``hit_update(state, way) -> position`` fuses ``stack_position`` (on
#   the pre-touch state, exactly as ``Cache.lookup`` orders the two
#   calls) with ``touch``;
# * ``victim(state, lo, hi)`` equals ``victim(state, range(lo, hi))``;
# * ``insert(state, way, at_mru)`` equals the policy's ``insert``.
#
# Bit-identity with the generic path is load-bearing: the golden
# equivalence suite (tests/test_golden_equivalence.py) diffs full
# simulation results between the two, so any behavioral drift here is a
# bug even when it looks like an optimization.


def _lru_fast_paths(ways: int):
    def hit_update(state: List[int], way: int) -> int:
        position = state.index(way)
        if position:
            del state[position]
            state.insert(0, way)
        return position

    def victim(state: List[int], lo: int, hi: int) -> int:
        if hi - lo == ways:
            return state[-1]
        for way in reversed(state):
            if lo <= way < hi:
                return way
        raise ValueError("candidates contain no valid way index")

    def insert(state: List[int], way: int, at_mru: bool) -> None:
        # Fills overwhelmingly replace the LRU way (the unpartitioned
        # ``victim`` above returns ``state[-1]``), so test the tail first:
        # a pop is O(1) where ``remove`` scans the whole list.
        if state[-1] == way:
            state.pop()
        else:
            state.remove(way)
        if at_mru:
            state.insert(0, way)
        else:
            state.append(way)

    return hit_update, victim, insert


def _nru_fast_paths(ways: int):
    last = ways - 1

    def hit_update(state: List[bool], way: int) -> int:
        referenced = sum(state)
        if state[way]:
            position = max(0, referenced // 2 - (1 if way == 0 else 0)) % ways
        else:
            position = referenced + (ways - referenced) // 2
            if position > last:
                position = last
        state[way] = True
        if all(state):
            for i in range(ways):
                if i != way:
                    state[i] = False
        return position

    def victim(state: List[bool], lo: int, hi: int) -> int:
        for way in range(lo, hi):
            if not state[way]:
                return way
        for way in range(lo, hi):
            state[way] = False
        return lo

    def insert(state: List[bool], way: int, at_mru: bool) -> None:
        state[way] = True
        if all(state):
            for i in range(ways):
                if i != way:
                    state[i] = False

    return hit_update, victim, insert


def _plru_fast_paths(ways: int):
    levels = ways.bit_length() - 1
    last = ways - 1

    def hit_update(state: List[int], way: int) -> int:
        # Reads each path node before overwriting it, so the position
        # matches stack_position-then-touch on the same pre-touch state.
        position = 0
        span = ways
        node = 0
        for level in range(levels - 1, -1, -1):
            went_right = (way >> level) & 1
            span >>= 1
            if state[node] == went_right:
                position += span
            state[node] = 0 if went_right else 1
            node = 2 * node + 1 + went_right
        return position if position < last else last

    def age_of(state: List[int], way: int) -> int:
        position = 0
        span = ways
        node = 0
        for level in range(levels - 1, -1, -1):
            went_right = (way >> level) & 1
            span >>= 1
            if state[node] == went_right:
                position += span
            node = 2 * node + 1 + went_right
        return position

    def victim(state: List[int], lo: int, hi: int) -> int:
        if hi - lo == ways:
            # Unpartitioned: the leaf every tree bit points toward is the
            # unique way at age ways-1, i.e. the argmax the generic path
            # computes.
            way = 0
            node = 0
            for level in range(levels - 1, -1, -1):
                went_right = state[node]
                way |= went_right << level
                node = 2 * node + 1 + went_right
            return way
        best_way = lo
        best_age = -1
        for way in range(lo, hi):
            age = age_of(state, way)
            if age > best_age:
                best_age = age
                best_way = way
        return best_way

    def insert(state: List[int], way: int, at_mru: bool) -> None:
        node = 0
        for level in range(levels - 1, -1, -1):
            went_right = (way >> level) & 1
            state[node] = 0 if went_right else 1
            node = 2 * node + 1 + went_right

    return hit_update, victim, insert


def _rrip_fast_paths(ways: int):
    last = ways - 1
    max_rrpv = Rrip.MAX_RRPV
    insert_rrpv = Rrip.INSERT_RRPV

    def hit_update(state: List[int], way: int) -> int:
        rrpv = state[way]
        younger = 0
        peers = -1
        for value in state:
            if value < rrpv:
                younger += 1
            elif value == rrpv:
                peers += 1
        position = younger + peers // 2
        state[way] = 0
        return position if position < last else last

    def victim(state: List[int], lo: int, hi: int) -> int:
        while True:
            for way in range(lo, hi):
                if state[way] >= max_rrpv:
                    return way
            for way in range(lo, hi):
                state[way] += 1

    def insert(state: List[int], way: int, at_mru: bool) -> None:
        state[way] = insert_rrpv if at_mru else max_rrpv

    return hit_update, victim, insert


_FAST_PATH_FACTORIES = {
    TrueLRU: _lru_fast_paths,
    NRU: _nru_fast_paths,
    TreePLRU: _plru_fast_paths,
    Rrip: _rrip_fast_paths,
}


def fast_paths(policy: ReplacementPolicy):
    """``(hit_update, victim, insert)`` specialized for ``policy``, or None.

    Keyed on the policy's *exact* type: subclasses (and third-party
    policies) fall back to the generic reference path, which keeps the
    reference oracle authoritative for anything not covered by the
    equivalence suite.
    """
    factory = _FAST_PATH_FACTORIES.get(type(policy))
    if factory is None:
        return None
    return factory(policy.ways)


def make_policy(name: str, ways: int) -> ReplacementPolicy:
    """Build a policy by name: ``lru``, ``nru``, ``plru`` or ``rrip``."""
    table = {"lru": TrueLRU, "nru": NRU, "plru": TreePLRU, "rrip": Rrip}
    try:
        return table[name.lower()](ways)
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {sorted(table)}"
        ) from None
