"""Miss-status holding register (MSHR) overlap model.

The paper's key asymmetry (Section 2.2): *data* misses overlap with other
work through MSHRs, while *address-translation* misses are blocking — the
pipeline stalls until the translation resolves.  A cycle-accurate MSHR file
would require a global event queue; instead we model the first-order
effect: the effective stall charged for a data miss is its raw latency
divided by the achievable memory-level parallelism.

Achieved MLP scales with how densely misses occur: when nearly every
access misses (a gups-like stream), many are in flight together and each
contributes ``latency / cap``; when misses are rare, there is nothing to
overlap with and each costs its full latency.  We track an exponentially
weighted miss rate and interpolate between those endpoints, capping at
both the MSHR entry count and the workload's inherent MLP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.accounting import quantize_cycles


@dataclass
class MshrModel:
    """Miss-density-driven MLP estimator bounded by MSHR capacity."""

    entries: int = 10
    workload_mlp: float = 4.0
    decay: float = 0.02
    _miss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        if self.workload_mlp < 1.0:
            raise ValueError("workload MLP cannot be below 1")

    @property
    def mlp_cap(self) -> float:
        return min(float(self.entries), self.workload_mlp)

    @property
    def mlp(self) -> float:
        """Currently achieved memory-level parallelism estimate."""
        return 1.0 + (self.mlp_cap - 1.0) * self._miss_rate

    @property
    def miss_rate(self) -> float:
        return self._miss_rate

    def observe(self, was_miss: bool) -> None:
        """Fold one data access outcome into the miss-density estimate."""
        target = 1.0 if was_miss else 0.0
        self._miss_rate += self.decay * (target - self._miss_rate)

    def data_stall(self, raw_latency: float) -> float:
        """Effective pipeline stall for a data miss of ``raw_latency`` cycles.

        Quantized to 1/1024 cycle so the stall is a dyadic rational: the
        cycle-accounting ledger can then sum components bit-exactly to
        the core clock (see :mod:`repro.telemetry.accounting`).  The
        perturbation is below half a quantum (< 0.0005 cycles) per miss.
        """
        return quantize_cycles(raw_latency / self.mlp)

    def translation_stall(self, raw_latency: float) -> float:
        """Translation misses block the pipeline: charged in full."""
        return raw_latency

    def reset(self) -> None:
        self._miss_rate = 0.0

    def state_dict(self) -> dict:
        return {"miss_rate": self._miss_rate, "workload_mlp": self.workload_mlp}

    def load_state(self, state: dict) -> None:
        self._miss_rate = float(state["miss_rate"])
        self.workload_mlp = float(state["workload_mlp"])
