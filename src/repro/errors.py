"""Unified error taxonomy with a stable exit-code mapping.

Every failure the toolkit can report deliberately belongs to one family
rooted at :class:`ReproError`, and every family maps to one *stable*
process exit code — the contract CI jobs, campaign drivers and the
``repro chaos`` end-state assertions test against.  The taxonomy exists
so that

* blanket ``except Exception`` handlers can be narrowed to "failures we
  understand" (:class:`ReproError`) while unexpected exception types are
  logged with full tracebacks instead of being silently swallowed;
* a fault injected by :mod:`repro.faults` surfaces through exactly the
  same classes — and therefore exit codes — a real failure would, which
  is what makes chaos campaigns assertable.

Exit-code table (see ``docs/chaos.md``):

=====  =====================================================
code   meaning
=====  =====================================================
0      success
1      generic failure / gate failure (strict PARTIAL report,
       bench or diff regression)
2      usage, configuration or input-data error
3      simulation integrity error (invariant violation, stall,
       checkpoint corruption)
4      ``repro chaos`` end-state assertion failed
5      ``repro doctor`` found problems it did not (or could
       not) fix
6      an injected fault surfaced uncaught (plan left armed)
7      a resource budget was exceeded (deadline, RSS ceiling,
       disk quota, event budget) or the disk filled up; state
       was checkpointed and the run is resumable
130    interrupted (SIGINT)
=====  =====================================================

Subclasses raised elsewhere in the tree keep their historical bases
(``RuntimeError`` / ``ValueError``) through multiple inheritance, so
pre-taxonomy callers that catch those continue to work unchanged.
"""

from __future__ import annotations

from typing import Dict

#: The stable exit codes, by name.  ``repro chaos`` and the CI
#: ``chaos-smoke`` job fail on any exit code not in this table.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_SIMULATION = 3
EXIT_CHAOS = 4
EXIT_DOCTOR = 5
EXIT_INJECTED = 6
EXIT_BUDGET = 7
EXIT_INTERRUPT = 130

#: code -> short description, for docs and ``repro chaos`` reporting.
EXIT_CODES: Dict[int, str] = {
    EXIT_OK: "success",
    EXIT_FAILURE: "generic or gate failure",
    EXIT_USAGE: "usage, configuration or input-data error",
    EXIT_SIMULATION: "simulation integrity error",
    EXIT_CHAOS: "chaos end-state assertion failed",
    EXIT_DOCTOR: "doctor found unresolved problems",
    EXIT_INJECTED: "injected fault surfaced uncaught",
    EXIT_BUDGET: "resource budget exceeded (resumable)",
    EXIT_INTERRUPT: "interrupted",
}


class ReproError(Exception):
    """Base of every failure the toolkit understands and maps.

    ``exit_code`` is a class attribute so each family carries its own
    stable mapping; ``category`` is a short machine-readable label used
    by telemetry and the campaign failure records.
    """

    exit_code = EXIT_FAILURE
    category = "generic"


class ConfigError(ReproError, ValueError):
    """A configuration or argument is invalid (fails before simulating).

    Subclasses ``ValueError`` so historical ``pytest.raises(ValueError)``
    and ``except ValueError`` call sites keep working.
    """

    exit_code = EXIT_USAGE
    category = "config"


class DataError(ReproError):
    """An on-disk input (result file, store, baseline) is unreadable."""

    exit_code = EXIT_USAGE
    category = "data"


class SimulationError(ReproError):
    """The simulation's own integrity machinery flagged a failure."""

    exit_code = EXIT_SIMULATION
    category = "simulation"


class CampaignError(ReproError):
    """A campaign-level failure (a poisoned point, an exhausted retry)."""

    exit_code = EXIT_FAILURE
    category = "campaign"


class ChaosError(ReproError):
    """A ``repro chaos`` end-state assertion did not hold."""

    exit_code = EXIT_CHAOS
    category = "chaos"


class DoctorError(ReproError):
    """``repro doctor`` found problems that remain unresolved."""

    exit_code = EXIT_DOCTOR
    category = "doctor"


class InjectedFaultError(ReproError):
    """An error deliberately raised by an armed fault point.

    Fault points that simulate host failures raise the *real* exception
    type (``OSError`` and friends) so recovery paths are exercised
    honestly; this class is for faults whose contract is "a deterministic
    simulation failure" (e.g. ``pool.worker.error``), where the campaign
    must classify the failure without retrying it.
    """

    exit_code = EXIT_INJECTED
    category = "injected"


class BudgetExceededError(ReproError):
    """A resource budget's hard threshold was crossed.

    Raised by the :mod:`repro.budget` machinery after the run has been
    checkpointed (when checkpointing is configured) and in-flight work
    has drained — the state on disk is resumable exactly like a SIGINT
    drain.  ``dimension`` names the breached budget (``deadline``,
    ``rss``, ``disk``, ``events``); ``snapshot_path`` points at the
    checkpoint written on the way out, when there is one.
    """

    exit_code = EXIT_BUDGET
    category = "budget"

    def __init__(
        self,
        message: str,
        *,
        dimension: str = "unknown",
        snapshot_path=None,
    ):
        super().__init__(message)
        self.dimension = dimension
        self.snapshot_path = snapshot_path


class DiskFullError(BudgetExceededError):
    """The filesystem itself ran out of space or quota (ENOSPC/EDQUOT).

    The host-imposed equivalent of a disk-budget breach, so it shares the
    budget family's exit code (7): either way the cure is the same —
    free space (or raise the quota) and resume; completed points are
    already persisted.
    """

    category = "disk"

    def __init__(self, message: str, *, snapshot_path=None):
        super().__init__(
            message, dimension="disk", snapshot_path=snapshot_path
        )


def exit_code_for(exc: BaseException) -> int:
    """The stable exit code for an exception.

    :class:`ReproError` families carry their own code; interrupts map to
    130; anything else is a generic failure.
    """
    if isinstance(exc, ReproError):
        return exc.exit_code
    if isinstance(exc, KeyboardInterrupt):
        return EXIT_INTERRUPT
    return EXIT_FAILURE
