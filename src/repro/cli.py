"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``    — simulate one evaluation point and print a summary
               (optionally with a POM-TLB baseline comparison); can
               export a telemetry event trace (``--trace-out``), a
               metrics JSON (``--metrics-out``), machine-readable
               results (``--json``), a CPI waterfall (``--cpi``) and
               live progress (``--progress``);
* ``stats``  — summarize a JSONL telemetry trace *or* a stored result
               JSON (``repro run --json`` output / store entry), with
               ``--format table|csv|markdown`` rendering and optional
               Chrome trace_event conversion for chrome://tracing;
* ``diff``   — compare two result files (or two result-store
               directories): per-metric deltas with regression flags,
               plus a per-component CPI-stack delta when both runs
               carried cycle accounting;
* ``bench``  — time the simulator itself over a fixed matrix, write
               ``BENCH_<timestamp>.json``, and optionally gate against
               a committed baseline;
* ``report`` — regenerate paper exhibits (all, or a named subset);
* ``chaos``  — run a campaign under a fault-injection plan and assert
               the end state converges to the fault-free result
               (see docs/chaos.md);
* ``doctor`` — preflight self-check: store integrity, orphaned temp
               files, checkpoint round-trip, configuration (``--fix``
               cleans what it safely can);
* ``mixes``  — list the paper's programs and VM pairings;
* ``characterize`` — profile workloads' memory behaviour without
               simulating (footprint, page sizes, reuse);
* ``trace``  — record a workload to a trace file, inspect one, or run a
               recorded trace through the simulator.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter
from typing import List, Optional

from repro import faults
from repro.core.schemes import Scheme
from repro.errors import ReproError, exit_code_for
from repro.sim.config import small_config
from repro.sim.engine import run_simulation
from repro.sim.stats import SimulationResult
from repro.telemetry import (
    DEFAULT_TRACE_CAPACITY,
    CycleAccountant,
    EventTracer,
    HostProfiler,
    MetricsRegistry,
    Telemetry,
)
from repro.workloads.mixes import MIXES, MIX_NAMES, PROGRAMS, make_mix

_SCHEME_BY_NAME = {scheme.value: scheme for scheme in Scheme}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _duration_arg(text: str) -> float:
    """argparse type for wall-clock budgets: '90', '90s', '5m', '2h'."""
    from repro.budget import parse_duration
    from repro.errors import ConfigError

    try:
        value = parse_duration(text)
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text!r}")
    return value


def _size_arg(text: str) -> int:
    """argparse type for byte budgets: '512M', '2G', '1048576'."""
    from repro.budget import parse_size
    from repro.errors import ConfigError

    try:
        value = parse_size(text)
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text!r}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CSALT (MICRO 2017) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="simulate one evaluation point")
    run.add_argument("--mix", default="gups", choices=MIX_NAMES,
                     help="workload pairing (Table 3)")
    run.add_argument("--scheme", default="csalt-cd",
                     choices=sorted(_SCHEME_BY_NAME),
                     help="translation/cache-management scheme")
    run.add_argument("--contexts", type=int, default=2,
                     help="VM contexts per core")
    run.add_argument("--accesses", type=int, default=240_000,
                     help="total memory accesses to simulate")
    run.add_argument("--native", action="store_true",
                     help="non-virtualized (no nested walks)")
    run.add_argument("--switch-ms", type=float, default=10.0,
                     help="context-switch quantum in (paper) milliseconds")
    run.add_argument("--levels", type=int, default=4, choices=(4, 5),
                     help="page-table depth (5 = Intel LA57)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--replacement", default="lru",
                     choices=("lru", "nru", "plru", "rrip"),
                     help="cache replacement policy")
    run.add_argument("--checkpoint-every", type=_positive_int, default=None,
                     metavar="N",
                     help="snapshot the whole machine every N accesses "
                          "(requires --checkpoint-dir)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="directory for checkpoint snapshots")
    run.add_argument("--restore", default=None, metavar="PATH",
                     help="resume from a snapshot; 'auto' picks the newest "
                          "in --checkpoint-dir (fresh run if none)")
    run.add_argument("--check-invariants", type=_positive_int, default=None,
                     metavar="M",
                     help="audit every simulator structure each M accesses "
                          "(LRU stacks, partition sums, TLB/page-table "
                          "coherence, counter monotonicity)")
    run.add_argument("--watchdog-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="declare the run stalled after this many "
                          "wall-clock seconds without forward progress "
                          "(state is snapshotted before aborting)")
    run.add_argument("--deadline", type=_duration_arg, default=None,
                     metavar="DURATION",
                     help="hard wall-clock budget ('90s', '5m'): past it "
                          "the run checkpoints (with --checkpoint-dir) and "
                          "exits 7, resumable with --restore auto")
    run.add_argument("--max-rss", type=_size_arg, default=None,
                     metavar="SIZE",
                     help="resident-memory ceiling ('512M', '2G'): soft "
                          "(85%%) degrades telemetry, hard checkpoints "
                          "and exits 7")
    run.add_argument("--baseline", action="store_true",
                     help="also run POM-TLB and report relative IPC")
    run.add_argument("--json", action="store_true",
                     help="print machine-readable JSON instead of the "
                          "human summary")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write a JSONL telemetry event trace "
                          "(summarize with 'repro stats')")
    run.add_argument("--trace-capacity", type=_positive_int,
                     default=DEFAULT_TRACE_CAPACITY, metavar="N",
                     help="event ring-buffer capacity (oldest dropped)")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the metrics registry (counters, gauges, "
                          "latency histograms) as JSON")
    run.add_argument("--profile", action="store_true",
                     help="profile host wall-clock per simulator component "
                          "(table on stderr; with --trace-out, individual "
                          "scope spans are embedded in the trace as a "
                          "'host' track for chrome://tracing)")
    run.add_argument("--progress", action="store_true",
                     help="live progress on stderr")
    run.add_argument("--cpi", action="store_true",
                     help="account every simulated cycle to a component "
                          "and print the CPI-stack waterfall")

    stats = commands.add_parser(
        "stats", help="summarize a telemetry trace or a stored result"
    )
    stats.add_argument("path",
                       help="JSONL trace written by run --trace-out, or a "
                            "result JSON (run --json output / store entry)")
    stats.add_argument("--chrome-out", default=None, metavar="PATH",
                       help="also write Chrome trace_event JSON "
                            "(open in chrome://tracing or Perfetto; "
                            "trace input only)")
    stats.add_argument("--json", action="store_true",
                       help="print the summary as JSON")
    stats.add_argument("--format", default=None,
                       choices=("table", "csv", "markdown"),
                       help="render the summary as a flat metric table "
                            "instead of the prose summary")
    stats.add_argument("--cpi", action="store_true",
                       help="print the CPI-stack waterfall (result input "
                            "that carries cycle accounting only)")

    diff = commands.add_parser(
        "diff", help="compare two runs (result files or store directories)"
    )
    diff.add_argument("a", help="baseline: result JSON or store directory")
    diff.add_argument("b", help="candidate: result JSON or store directory")
    diff.add_argument("--tolerance", type=float, default=0.01,
                      metavar="FRACTION",
                      help="relative change treated as noise "
                           "(default 0.01 = 1%%)")
    diff.add_argument("--json", action="store_true",
                      help="print the comparison as JSON")
    diff.add_argument("--fail-on-regression", action="store_true",
                      help="exit 1 if any metric moved the wrong way "
                           "beyond the tolerance")

    bench = commands.add_parser(
        "bench", help="benchmark simulator throughput (host wall-clock)"
    )
    bench.add_argument("--quick", action="store_true",
                       help="small matrix / short runs (CI smoke)")
    bench.add_argument("--micro", action="store_true",
                       help="time datapath primitives in isolation "
                            "(cache lookup/fill, TLB lookup, page walks) "
                            "instead of whole simulations")
    bench.add_argument("--accesses", type=_positive_int, default=None,
                       help="override accesses per matrix point "
                            "(with --micro: operations per component)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out-dir", default=".", metavar="DIR",
                       help="directory for BENCH_<timestamp>.json")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="compare against this benchmark document and "
                            "exit 1 on regression beyond --tolerance")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       metavar="FRACTION",
                       help="allowed relative throughput drop vs the "
                            "baseline (default 0.25)")
    bench.add_argument("--update-baseline", default=None, metavar="PATH",
                       help="also write the document to PATH (commit it "
                            "as the new baseline)")
    bench.add_argument("--json", action="store_true",
                       help="print the benchmark document as JSON")
    bench.add_argument("--deadline", type=_duration_arg, default=None,
                       metavar="DURATION",
                       help="wall-clock budget for the whole matrix; a "
                            "deadline hit still writes the (truncated) "
                            "BENCH artifact, then exits 7")

    report = commands.add_parser(
        "report", help="regenerate paper exhibits (DESIGN.md section 6)"
    )
    report.add_argument("--out", default=None,
                        help="write markdown to this file (default stdout)")
    report.add_argument("--only", default=None,
                        help="comma-separated exhibit names, e.g. "
                             "figure7,figure8")
    report.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="worker processes for the evaluation grid "
                             "(1 = in-process; >1 adds per-point fault "
                             "isolation)")
    report.add_argument("--store", default=None, metavar="DIR",
                        help="persist every completed point to this "
                             "directory (atomic, content-addressed; see "
                             "docs/experiments.md)")
    report.add_argument("--resume", action="store_true",
                        help="reuse points already persisted in --store, "
                             "re-simulating only what is missing")
    report.add_argument("--strict", action="store_true",
                        help="exit nonzero if any exhibit rendered PARTIAL")
    report.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-point timeout (only with --jobs > 1); "
                             "timed-out points retry with backoff")
    report.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retry budget for transient point failures "
                             "(worker killed, timeout)")
    report.add_argument("--checkpoint-every", type=_positive_int,
                        default=None, metavar="N",
                        help="checkpoint in-flight points every N accesses "
                             "(only with --jobs > 1 and --store; a killed "
                             "worker's retry resumes mid-simulation)")
    report.add_argument("--deadline", type=_duration_arg, default=None,
                        metavar="DURATION",
                        help="hard wall-clock budget for the campaign "
                             "('30m', '2h'): soft (85%%) stops new "
                             "launches, hard drains in-flight points, "
                             "writes a PARTIAL report and exits 7 "
                             "(resume with --resume and no budget)")
    report.add_argument("--max-rss", type=_size_arg, default=None,
                        metavar="SIZE",
                        help="resident-memory ceiling for the campaign "
                             "parent ('2G')")
    report.add_argument("--store-quota", type=_size_arg, default=None,
                        metavar="SIZE",
                        help="disk budget for --store (entries + "
                             "checkpoints): writes past it stop the "
                             "campaign resumably instead of filling the "
                             "partition")

    chaos = commands.add_parser(
        "chaos", help="run a campaign under a fault plan and assert the "
                      "end state (docs/chaos.md)"
    )
    chaos.add_argument("--plan", required=True, metavar="PATH",
                       help="FaultPlan JSON file (points, filters, seeds)")
    chaos.add_argument("--only", default=None,
                       help="comma-separated exhibit names whose evaluation "
                            "grids form the campaign (default: figure8)")
    chaos.add_argument("--jobs", type=_positive_int, default=2, metavar="N",
                       help="worker processes (>1 so worker faults are "
                            "isolated; default 2)")
    chaos.add_argument("--rounds", type=_positive_int, default=3, metavar="N",
                       help="max campaign rounds: 1 armed + N-1 fault-free "
                            "recovery rounds (default 3)")
    chaos.add_argument("--out", default="chaos-out", metavar="DIR",
                       help="working directory: baseline-store/, "
                            "chaos-store/, faults.jsonl")
    chaos.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-point timeout (kills hung workers)")
    chaos.add_argument("--retries", type=int, default=2, metavar="N",
                       help="retry budget for transient point failures")
    chaos.add_argument("--json", action="store_true",
                       help="print the chaos report as JSON")

    doctor = commands.add_parser(
        "doctor", help="preflight self-check (store, temp files, "
                       "checkpoints, config)"
    )
    doctor.add_argument("--store", default=None, metavar="DIR",
                        help="result store to scan for corrupt entries and "
                             "orphaned temp files")
    doctor.add_argument("--checkpoint-dir", action="append", default=[],
                        metavar="DIR",
                        help="checkpoint directory to scan (repeatable)")
    doctor.add_argument("--fix", action="store_true",
                        help="delete orphaned temp files and corrupt store "
                             "entries (they re-simulate on the next run)")
    doctor.add_argument("--json", action="store_true",
                        help="print the doctor report as JSON")
    doctor.add_argument("--store-quota", type=_size_arg, default=None,
                        metavar="SIZE",
                        help="report utilisation of this disk quota in "
                             "the disk-headroom section")
    doctor.add_argument("--min-free", type=_size_arg, default=None,
                        metavar="SIZE",
                        help="free-space floor for the disk-headroom "
                             "check (default 256M)")

    commands.add_parser("mixes", help="list programs and VM pairings")

    characterize = commands.add_parser(
        "characterize", help="profile workloads' memory behaviour (no sim)"
    )
    characterize.add_argument(
        "programs", nargs="*", default=[],
        help="program names (default: all six)",
    )
    characterize.add_argument("--accesses", type=int, default=50_000)
    characterize.add_argument("--scale", type=float, default=0.25)

    trace = commands.add_parser("trace", help="trace tooling")
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_commands.add_parser("record", help="record a program")
    record.add_argument("program", choices=sorted(PROGRAMS))
    record.add_argument("path", help="output .npz file")
    record.add_argument("--accesses", type=int, default=100_000,
                        help="accesses per thread")
    record.add_argument("--scale", type=float, default=0.25)
    record.add_argument("--seed", type=int, default=0)
    info = trace_commands.add_parser("info", help="inspect a trace")
    info.add_argument("path")
    replay = trace_commands.add_parser("run", help="simulate a trace")
    replay.add_argument("path")
    replay.add_argument("--scheme", default="csalt-cd",
                        choices=sorted(_SCHEME_BY_NAME))
    replay.add_argument("--accesses", type=int, default=240_000)
    return parser


def _print_result(result: SimulationResult,
                  baseline: Optional[SimulationResult] = None) -> None:
    print(f"workload          : {result.workload}")
    print(f"scheme            : {result.scheme}")
    print(f"instructions      : {result.instructions}")
    print(f"IPC (geomean)     : {result.ipc:.4f}")
    if baseline is not None:
        print(f"vs POM-TLB        : {result.speedup_over(baseline):.3f}x")
    print(f"L2 TLB MPKI       : {result.l2_tlb_mpki:.2f}")
    print(f"page walks        : {result.page_walks} "
          f"(mean {result.walk_mean_cycles:.0f} cycles)")
    print(f"walks eliminated  : {result.walks_eliminated_fraction:.2%}")
    print(f"L2/L3 D$ MPKI     : {result.l2_cache_mpki:.1f} / "
          f"{result.l3_cache_mpki:.1f}")
    print(f"TLB share of L3 D$: {result.mean_l3_tlb_occupancy:.1%}")
    switches = int(result.extra.get("context_switches", 0))
    print(f"context switches  : {switches}")


def _build_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    """A Telemetry bundle holding exactly the sinks the flags asked for."""
    want_trace = args.trace_out is not None
    want_metrics = args.metrics_out is not None
    if not (want_trace or want_metrics or args.profile or args.cpi):
        return None
    return Telemetry(
        tracer=EventTracer(args.trace_capacity) if want_trace else None,
        metrics=MetricsRegistry() if want_metrics else None,
        # Span recording only matters when the spans can go somewhere
        # (the trace file's "host" track).
        profiler=(
            HostProfiler(record_spans=want_trace) if args.profile else None
        ),
        accounting=CycleAccountant() if args.cpi else None,
    )


def _render_rows(rows, fmt: str) -> str:
    """Render flat (metric, value) rows as table / csv / markdown."""
    if fmt == "csv":
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["metric", "value"])
        writer.writerows(rows)
        return buffer.getvalue().rstrip("\n")
    if fmt == "markdown":
        from repro.experiments.tables import format_table

        return format_table(["metric", "value"], rows)
    width = max((len(str(name)) for name, _ in rows), default=6)
    return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


def _command_run(args: argparse.Namespace) -> int:
    from repro.checkpoint import CheckpointError, SimulationStalled
    from repro.validate import InvariantViolation

    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        print("--checkpoint-every requires --checkpoint-dir DIR",
              file=sys.stderr)
        return 2
    if args.restore == "auto" and args.checkpoint_dir is None:
        print("--restore auto requires --checkpoint-dir DIR", file=sys.stderr)
        return 2
    scheme = _SCHEME_BY_NAME[args.scheme]
    config = small_config(
        scheme=scheme,
        contexts_per_core=args.contexts,
        virtualized=not args.native,
        switch_interval_ms=args.switch_ms,
        page_table_levels=args.levels,
        replacement=args.replacement,
    )
    workloads = make_mix(args.mix, contexts=args.contexts, scale=0.25)
    telemetry = _build_telemetry(args)
    run_budget = None
    if args.deadline is not None or args.max_rss is not None:
        from repro.budget import Budget

        run_budget = Budget(
            deadline_seconds=args.deadline, max_rss_bytes=args.max_rss
        )
    progress = None
    if args.progress:
        def progress(update):
            print(f"\r{update.format()}", end="", file=sys.stderr, flush=True)
    started = perf_counter()
    try:
        result = run_simulation(
            config, workloads, total_accesses=args.accesses, seed=args.seed,
            workload_name=args.mix, telemetry=telemetry, progress=progress,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            restore=args.restore,
            check_invariants=args.check_invariants,
            watchdog_timeout=args.watchdog_timeout,
            budget=run_budget,
        )
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        for other in exc.others:
            print(f"also: {other}", file=sys.stderr)
        return 3
    except SimulationStalled as exc:
        print(f"stalled: {exc}", file=sys.stderr)
        return 3
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 3
    if args.progress:
        print(file=sys.stderr)
    baseline = None
    if args.baseline and scheme is not Scheme.POM_TLB:
        baseline = run_simulation(
            config.with_scheme(Scheme.POM_TLB),
            make_mix(args.mix, contexts=args.contexts, scale=0.25),
            total_accesses=args.accesses, seed=args.seed,
            workload_name=args.mix,
        )
    elapsed = perf_counter() - started

    if args.trace_out:
        from repro.telemetry import host_spans_to_events

        host_events = None
        if telemetry.profiler is not None and telemetry.profiler.spans:
            host_events = host_spans_to_events(telemetry.profiler.spans)
        written = telemetry.tracer.write_jsonl(
            args.trace_out, extra=host_events
        )
        note = (
            f" ({telemetry.tracer.dropped} older events dropped by the ring)"
            if telemetry.tracer.dropped else ""
        )
        if host_events:
            note += f" (+{len(host_events)} host profiler spans)"
        print(f"wrote {written} events to {args.trace_out}{note}",
              file=sys.stderr)
    if args.metrics_out:
        extra = {
            "run": {
                "mix": args.mix,
                "scheme": args.scheme,
                "accesses": args.accesses,
                "seed": args.seed,
            }
        }
        if telemetry.profiler is not None:
            extra["host_profile"] = telemetry.profiler.report()
        telemetry.metrics.write_json(args.metrics_out, extra=extra)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    if args.profile:
        print(telemetry.profiler.format(), file=sys.stderr)

    if args.json:
        document = {
            "result": result.to_dict(),
            "elapsed_seconds": elapsed,
        }
        if baseline is not None:
            document["baseline"] = baseline.to_dict()
            document["speedup_over_baseline"] = result.speedup_over(baseline)
        if telemetry is not None and telemetry.profiler is not None:
            document["host_profile"] = telemetry.profiler.report()
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        _print_result(result, baseline)
        if args.cpi:
            if result.cpi_stack is not None:
                print()
                print(result.cpi_stack.waterfall())
            else:
                print("no CPI stack recorded for this run", file=sys.stderr)
        print(f"(simulated in {elapsed:.1f}s)")
    return 0


def _result_rows(result: SimulationResult) -> List:
    """Flat (metric, value) rows off a result's scalar fields."""
    rows = []
    for name, value in result.to_dict().items():
        if isinstance(value, (int, float, str)):
            rows.append((name, round(value, 6) if isinstance(value, float)
                         else value))
    return rows


def _sniff_result_document(path: str):
    """A parsed JSON object when ``path`` holds a single result-shaped
    document (``run --json`` output, store entry, or bare result dict);
    ``None`` when it is anything else (e.g. a JSONL trace)."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    candidate = document.get("result", document)
    if isinstance(candidate, dict) and "per_core" in candidate:
        return document
    return None


def _command_stats(args: argparse.Namespace) -> int:
    from repro.telemetry import read_events, summarize_events, write_chrome_trace

    if _sniff_result_document(args.path) is not None:
        from repro.analysis.diff import DiffError, load_result_file

        if args.chrome_out:
            print("--chrome-out needs a JSONL event trace, not a result",
                  file=sys.stderr)
            return 2
        try:
            result = load_result_file(args.path)
        except DiffError as exc:
            print(f"cannot read result: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        elif args.format:
            print(_render_rows(_result_rows(result), args.format))
        else:
            _print_result(result)
        if args.cpi:
            if result.cpi_stack is None:
                print("result carries no CPI stack (run with --cpi or use "
                      "the experiment runner)", file=sys.stderr)
                return 1
            print()
            print(result.cpi_stack.waterfall())
        return 0

    try:
        events = read_events(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    if args.cpi:
        print("--cpi needs a result JSON (CPI stacks are not in traces)",
              file=sys.stderr)
        return 2
    summary = summarize_events(events)
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    elif args.format:
        print(_render_rows(summary.rows(), args.format))
    else:
        print(summary.format())
    if args.chrome_out:
        write_chrome_trace(events, args.chrome_out)
        print(f"wrote Chrome trace to {args.chrome_out} "
              "(open in chrome://tracing)", file=sys.stderr)
    return 0


def _command_diff(args: argparse.Namespace) -> int:
    from repro.analysis.diff import DiffError, diff_paths

    try:
        comparison = diff_paths(args.a, args.b, tolerance=args.tolerance)
    except DiffError as exc:
        print(f"diff error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(comparison.format())
    if args.fail_on_regression and comparison.regressions:
        print(f"{len(comparison.regressions)} regression(s)", file=sys.stderr)
        return 1
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        BenchError,
        compare_bench,
        format_bench,
        load_bench,
        run_bench,
        write_bench,
    )

    from repro.errors import BudgetExceededError

    if args.micro:
        from repro.experiments.bench import format_micro_bench, run_micro_bench

        document = run_micro_bench(
            operations=args.accesses,
            progress=lambda line: print(line, file=sys.stderr),
        )
        path = write_bench(document, args.out_dir)
        print(f"wrote {path}", file=sys.stderr)
        if args.json:
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(format_micro_bench(document))
        if args.baseline:
            print("micro documents are informational; skipping baseline "
                  "comparison", file=sys.stderr)
        return 0

    try:
        document = run_bench(
            quick=args.quick, accesses=args.accesses, seed=args.seed,
            progress=lambda line: print(line, file=sys.stderr),
            deadline=args.deadline,
        )
    except BudgetExceededError as exc:
        # The truncated document still becomes an artifact: a deadline
        # hit is an incomplete benchmark, not a lost one.
        truncated = getattr(exc, "document", None)
        if truncated is not None:
            path = write_bench(truncated, args.out_dir)
            print(f"wrote {path} (truncated)", file=sys.stderr)
            if args.json:
                print(json.dumps(truncated, indent=2, sort_keys=True))
            else:
                print(format_bench(truncated))
        raise
    path = write_bench(document, args.out_dir)
    print(f"wrote {path}", file=sys.stderr)
    if args.update_baseline:
        with open(args.update_baseline, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"updated baseline {args.update_baseline}", file=sys.stderr)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(format_bench(document))
    if args.baseline:
        # The artifact is already on disk: a failing comparison still
        # leaves BENCH_*.json for CI to upload.
        try:
            baseline = load_bench(args.baseline)
        except BenchError as exc:
            print(f"bench error: {exc}", file=sys.stderr)
            return 2
        problems = compare_bench(document, baseline,
                                 tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"throughput within {args.tolerance:.0%} of baseline",
              file=sys.stderr)
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.experiments import report as report_module
    from repro.experiments.store import ResultStore

    experiments = report_module.EXPERIMENTS
    if args.only:
        wanted = {name.strip() for name in args.only.split(",")}
        unknown = wanted - {name for name, _ in experiments}
        if unknown:
            print(f"unknown exhibits: {sorted(unknown)}", file=sys.stderr)
            print(f"available: {[n for n, _ in experiments]}", file=sys.stderr)
            return 2
        experiments = [
            entry for entry in experiments if entry[0] in wanted
        ]
    if args.resume and args.store is None:
        print("--resume requires --store DIR", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and args.store is None:
        print("--checkpoint-every requires --store DIR", file=sys.stderr)
        return 2
    if args.store_quota is not None and args.store is None:
        print("--store-quota requires --store DIR", file=sys.stderr)
        return 2
    store = ResultStore(args.store) if args.store else None
    monitor = None
    monitor_armed = False
    if (
        args.deadline is not None
        or args.max_rss is not None
        or args.store_quota is not None
    ):
        from repro import budget as budget_mod

        monitor = budget_mod.BudgetMonitor(
            budget_mod.Budget(
                deadline_seconds=args.deadline,
                max_rss_bytes=args.max_rss,
                disk_quota_bytes=args.store_quota,
            )
        )
        if store is not None:
            # The quota covers entries AND per-point checkpoints — both
            # live under the store root.
            monitor.track_directory(store.root)
        # Arm before the pool forks so workers inherit the quota guard
        # (their copy is passive; this monitor stays the authority).
        budget_mod.arm(monitor)
        monitor_armed = True
        monitor.start()
    try:
        document = report_module.build_report(
            progress=lambda s: print(s, file=sys.stderr),
            experiments=experiments,
            jobs=args.jobs,
            store=store,
            resume=args.resume,
            timeout=args.timeout,
            retries=args.retries,
            checkpoint_every=args.checkpoint_every,
            monitor=monitor,
        )
    except KeyboardInterrupt as exc:
        # Everything already simulated was persisted write-through; a
        # rerun with --resume replays only the missing points.
        message = str(exc) or "interrupted"
        print(f"\n{message}", file=sys.stderr)
        return 130
    finally:
        if monitor is not None:
            monitor.stop()
            if monitor_armed:
                from repro import budget as budget_mod

                if budget_mod.ACTIVE is monitor:
                    budget_mod.disarm()
    text = document.text
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    partial = document.partial_exhibits
    if partial:
        print(f"PARTIAL exhibits: {', '.join(partial)}", file=sys.stderr)
    if document.budget_breach is not None:
        # The PARTIAL report is already on disk/stdout; now surface the
        # breach with its stable exit code (7) and resume hint.
        breach = document.budget_breach
        print(f"{type(breach).__name__}: {breach}", file=sys.stderr)
        from repro.errors import exit_code_for as _exit_code_for

        return _exit_code_for(breach)
    if partial and args.strict:
        return 1
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import run_chaos

    plan = faults.FaultPlan.from_file(args.plan)
    exhibits = None
    if args.only:
        exhibits = [name.strip() for name in args.only.split(",")]
    try:
        chaos_report = run_chaos(
            plan,
            exhibits=exhibits,
            jobs=args.jobs,
            rounds=args.rounds,
            out_dir=args.out,
            timeout=args.timeout,
            retries=args.retries,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except KeyboardInterrupt:
        print("\nchaos campaign interrupted", file=sys.stderr)
        return 130
    if args.json:
        print(json.dumps(chaos_report.to_dict(), indent=2, sort_keys=True))
    else:
        print(chaos_report.format())
    chaos_report.raise_if_failed()  # ChaosError -> exit code 4
    return 0


def _command_doctor(args: argparse.Namespace) -> int:
    from repro.doctor import run_doctor

    from repro.doctor import DEFAULT_MIN_FREE_BYTES

    doctor_report = run_doctor(
        store_dir=args.store,
        checkpoint_dirs=args.checkpoint_dir,
        fix=args.fix,
        store_quota_bytes=args.store_quota,
        min_free_bytes=(
            args.min_free if args.min_free is not None
            else DEFAULT_MIN_FREE_BYTES
        ),
    )
    if args.json:
        print(json.dumps(doctor_report.to_dict(), indent=2, sort_keys=True))
    else:
        print(doctor_report.format())
    if not doctor_report.ok:
        from repro.errors import DoctorError

        raise DoctorError(  # -> exit code 5
            f"{len(doctor_report.problems)} unresolved problem(s)"
            + ("" if args.fix else "; re-run with --fix to clean up")
        )
    return 0


def _command_mixes() -> int:
    print("programs:")
    for name in sorted(PROGRAMS):
        print(f"  {name}")
    print("\nmixes (VM1 + VM2):")
    for name, (vm1, vm2) in MIXES.items():
        print(f"  {name:<16} {vm1} + {vm2}")
    return 0


def _command_characterize(args: argparse.Namespace) -> int:
    from repro.analysis.characterize import characterize, compare
    from repro.workloads.mixes import PROGRAMS, make_program

    names = args.programs or sorted(PROGRAMS)
    unknown = set(names) - set(PROGRAMS)
    if unknown:
        print(f"unknown programs: {sorted(unknown)}", file=sys.stderr)
        return 2
    profiles = [
        characterize(make_program(name, scale=args.scale),
                     accesses=args.accesses)
        for name in names
    ]
    print(compare(profiles))
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.workloads.mixes import make_program
    from repro.workloads.trace import TraceWorkload, record_trace, trace_info

    if args.trace_command == "record":
        workload = make_program(args.program, scale=args.scale)
        record_trace(workload, args.path,
                     accesses_per_thread=args.accesses, seed=args.seed)
        info = trace_info(args.path)
        print(f"recorded {args.program} -> {args.path}: "
              f"{info.num_threads} threads x {info.accesses_per_thread} "
              f"accesses, {info.distinct_pages} distinct pages")
        return 0
    if args.trace_command == "info":
        info = trace_info(args.path)
        print(f"threads             : {info.num_threads}")
        print(f"accesses per thread : {info.accesses_per_thread}")
        print(f"huge VA limit       : {info.huge_va_limit:#x}")
        print(f"distinct 4K pages   : {info.distinct_pages}")
        return 0
    # trace run
    workload = TraceWorkload(args.path)
    scheme = _SCHEME_BY_NAME[args.scheme]
    config = small_config(scheme=scheme)
    result = run_simulation(
        config, [workload, TraceWorkload(args.path)],
        total_accesses=args.accesses,
    )
    _print_result(result)
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        return _command_run(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "diff":
        return _command_diff(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "chaos":
        return _command_chaos(args)
    if args.command == "doctor":
        return _command_doctor(args)
    if args.command == "mixes":
        return _command_mixes()
    if args.command == "characterize":
        return _command_characterize(args)
    if args.command == "trace":
        return _command_trace(args)
    raise AssertionError(f"unhandled command {args.command}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    # REPRO_FAULT_PLAN lets CI run *any* command under a fault plan
    # without new flags; a no-op when the variable is unset.
    faults.arm_from_env()
    try:
        return _dispatch(args)
    except ReproError as exc:
        # The taxonomy's contract: each family maps to one stable exit
        # code (docs/chaos.md), so drivers can assert on failure modes.
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    raise SystemExit(main())
