"""Runtime invariant checking: the simulator audits its own structures.

A silently corrupted structure — an LRU stack that is no longer a
permutation of the ways, a partition split that no longer sums to the
cache associativity — produces plausible-but-wrong IPC numbers with no
alarm.  This module turns the structural properties the paper's
Algorithms 1-3 rely on into mechanical checks:

* **replacement-stack integrity** — True-LRU per-set state is a
  permutation of the ways; NRU reference bits can never be all-set
  (``touch`` clears the others); tree-PLRU has exactly ``ways - 1``
  binary bits; RRIP values stay within ``[0, MAX_RRPV]``;
* **partition conservation** (Algorithm 1) — the installed split obeys
  ``N_MIN <= N <= K - N_MIN``, the data and TLB way ranges tile all K
  ways, and the controller's last recorded decision matches the split
  the cache actually has installed;
* **MSA profiler sanity** (Eq. 1/2 inputs) — K+1 non-negative counters,
  shadow stacks of at most K distinct tags;
* **tag-store consistency** — the ``{tag: way}`` index and the per-way
  tag array are inverse maps, and the free-way count matches the number
  of invalid ways;
* **translation coherence** — every TLB/POM-TLB entry agrees with the
  page tables it was filled from (frame and page size);
* **cycle-accounting conservation** — when a
  :class:`~repro.telemetry.accounting.CycleAccountant` is attached, the
  per-component cycle charges sum *bit-exactly* to each core's clock;
* **counter monotonicity** — cumulative statistics never decrease
  between consecutive checks.

All checks are read-only.  :class:`InvariantChecker` runs the catalogue
every ``--check-invariants M`` accesses and automatically after a
checkpoint restore, raising a structured :class:`InvariantViolation`
that the experiments pool treats as non-retryable (a deterministic
corruption cannot be fixed by re-running).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.core.partitioning import N_MIN, PartitionController
from repro.errors import SimulationError
from repro.mem.cache import Cache, _INVALID
from repro.mem.dram import DramChannel
from repro.mem.mshr import MshrModel
from repro.mem.replacement import NRU, Rrip, TreePLRU, TrueLRU
from repro.tlb.tlb import Tlb

if TYPE_CHECKING:
    from repro.sim.scheduler import ContextScheduler
    from repro.sim.system import System
    from repro.telemetry import Telemetry

#: Cap on POM-TLB entries verified against the page tables per check —
#: the POM-TLB can hold hundreds of thousands of entries and coherence
#: is per-entry, so a deterministic prefix (lowest set indices first)
#: bounds the cost.  On-chip TLBs are small and are checked in full.
POM_COHERENCE_LIMIT = 2048


class InvariantViolation(SimulationError, RuntimeError):
    """A structural invariant does not hold.

    Structured so tooling can classify it: ``component`` names the
    structure ("cache:l2-core0"), ``invariant`` the broken property
    ("lru-permutation"), ``detail`` the human-readable specifics, and
    ``context`` whatever positional data helps debugging (set index,
    way, entry key).  ``others`` carries further violations found in
    the same sweep.
    """

    def __init__(self, component: str, invariant: str, detail: str, **context):
        super().__init__(f"{component}: {invariant}: {detail}")
        self.component = component
        self.invariant = invariant
        self.detail = detail
        self.context = context
        self.others: List["InvariantViolation"] = []


# ----------------------------------------------------------------------
# Per-structure checks (generators: a sweep aggregates everything found)
# ----------------------------------------------------------------------
def check_cache(cache: Cache) -> Iterator[InvariantViolation]:
    """Tag-store bijection, free count, recency state, partition split."""
    name = f"cache:{cache.name}"
    ways = cache.ways
    for set_index in range(cache.num_sets):
        tags = cache._tag_to_way[set_index]
        base = set_index * ways
        way_tag = cache._way_tag[base:base + ways]
        valid = [way for way in range(ways) if way_tag[way] != _INVALID]
        if len(tags) != len(valid):
            yield InvariantViolation(
                name, "tag-index-size",
                f"set {set_index}: {len(tags)} indexed tags but "
                f"{len(valid)} valid ways",
                set_index=set_index,
            )
        for tag, way in tags.items():
            if not 0 <= way < ways or way_tag[way] != tag:
                yield InvariantViolation(
                    name, "tag-index-mismatch",
                    f"set {set_index}: index maps tag {tag} to way {way} "
                    f"but the way holds "
                    f"{way_tag[way] if 0 <= way < ways else 'out-of-range'}",
                    set_index=set_index, tag=tag, way=way,
                )
        free = ways - len(valid)
        if cache._free_count[set_index] != free:
            yield InvariantViolation(
                name, "free-count",
                f"set {set_index}: free_count says "
                f"{cache._free_count[set_index]}, {free} ways are invalid",
                set_index=set_index,
            )
        yield from _check_recency(name, cache, set_index)
    yield from _check_partition(name, cache)
    stats = cache.stats
    if stats.hits != stats.data_hits + stats.tlb_hits:
        yield InvariantViolation(
            name, "stats-split",
            f"hits {stats.hits} != data {stats.data_hits} + tlb "
            f"{stats.tlb_hits}",
        )
    if stats.misses != stats.data_misses + stats.tlb_misses:
        yield InvariantViolation(
            name, "stats-split",
            f"misses {stats.misses} != data {stats.data_misses} + tlb "
            f"{stats.tlb_misses}",
        )


def _check_recency(
    name: str, cache: Cache, set_index: int
) -> Iterator[InvariantViolation]:
    policy = cache.policy
    state = cache._recency[set_index]
    ways = cache.ways
    if isinstance(policy, TrueLRU):
        if sorted(state) != list(range(ways)):
            yield InvariantViolation(
                name, "lru-permutation",
                f"set {set_index}: recency stack {state} is not a "
                f"permutation of 0..{ways - 1}",
                set_index=set_index, stack=list(state),
            )
    elif isinstance(policy, NRU):
        if len(state) != ways or any(bit not in (False, True) for bit in state):
            yield InvariantViolation(
                name, "nru-bits",
                f"set {set_index}: expected {ways} reference bits, got "
                f"{state}",
                set_index=set_index,
            )
        elif ways > 1 and all(state):
            # touch() clears the other bits when the last one saturates,
            # so an all-set vector is unreachable in a consistent cache.
            yield InvariantViolation(
                name, "nru-saturated",
                f"set {set_index}: all {ways} reference bits set",
                set_index=set_index,
            )
    elif isinstance(policy, TreePLRU):
        if len(state) != ways - 1 or any(bit not in (0, 1) for bit in state):
            yield InvariantViolation(
                name, "plru-tree",
                f"set {set_index}: expected {ways - 1} binary tree bits, "
                f"got {state}",
                set_index=set_index,
            )
    elif isinstance(policy, Rrip):
        if len(state) != ways or any(
            not 0 <= value <= Rrip.MAX_RRPV for value in state
        ):
            yield InvariantViolation(
                name, "rrip-range",
                f"set {set_index}: RRPVs must be in [0, {Rrip.MAX_RRPV}], "
                f"got {state}",
                set_index=set_index,
            )


def _check_partition(name: str, cache: Cache) -> Iterator[InvariantViolation]:
    data_ways = cache._data_ways
    data_range, tlb_range = cache._partition_ranges
    if data_ways is None:
        if list(data_range) != list(range(cache.ways)) or list(
            tlb_range
        ) != list(range(cache.ways)):
            yield InvariantViolation(
                name, "partition-ranges",
                "unpartitioned cache must expose all ways to both kinds",
            )
        return
    if not N_MIN <= data_ways <= cache.ways - N_MIN:
        yield InvariantViolation(
            name, "partition-minimum",
            f"data_ways {data_ways} violates N_MIN={N_MIN} bounds for a "
            f"{cache.ways}-way cache",
            data_ways=data_ways,
        )
    if len(data_range) + len(tlb_range) != cache.ways:
        yield InvariantViolation(
            name, "partition-sum",
            f"partition ranges hold {len(data_range)} + {len(tlb_range)} "
            f"ways, associativity is {cache.ways}",
            data_ways=data_ways,
        )
    elif sorted(list(data_range) + list(tlb_range)) != list(range(cache.ways)):
        yield InvariantViolation(
            name, "partition-tiling",
            f"partition ranges {data_range} and {tlb_range} do not tile "
            f"0..{cache.ways - 1}",
            data_ways=data_ways,
        )


def check_tlb(tlb: Tlb) -> Iterator[InvariantViolation]:
    """Set sizing, set-index placement, page-size admissibility."""
    name = f"tlb:{tlb.name}"
    for set_index, tlb_set in enumerate(tlb._sets):
        if len(tlb_set) > tlb.ways:
            yield InvariantViolation(
                name, "set-overflow",
                f"set {set_index} holds {len(tlb_set)} entries, "
                f"associativity is {tlb.ways}",
                set_index=set_index,
            )
        for (asid, vpn, page_bits), entry in tlb_set.items():
            if vpn % tlb.num_sets != set_index:
                yield InvariantViolation(
                    name, "set-placement",
                    f"vpn {vpn:#x} indexed to set {set_index}, belongs in "
                    f"{vpn % tlb.num_sets}",
                    set_index=set_index, vpn=vpn,
                )
            if page_bits not in tlb.page_bits_supported:
                yield InvariantViolation(
                    name, "page-size",
                    f"entry for {asid} holds unsupported page size "
                    f"2**{page_bits}",
                    vpn=vpn, page_bits=page_bits,
                )
            if entry.page_bits != page_bits:
                yield InvariantViolation(
                    name, "page-size-tag",
                    f"entry tagged 2**{page_bits} stores page_bits "
                    f"{entry.page_bits}",
                    vpn=vpn,
                )


def check_profiler_pair(
    label: str, controller: PartitionController
) -> Iterator[InvariantViolation]:
    """MSA counter shape, shadow-stack discipline, epoch bookkeeping."""
    name = f"controller:{label}"
    ways = controller.cache.ways
    for stream, profiler in (
        ("data", controller.profilers.data),
        ("tlb", controller.profilers.tlb),
    ):
        if len(profiler.counters) != ways + 1:
            yield InvariantViolation(
                name, "msa-counter-shape",
                f"{stream} profiler has {len(profiler.counters)} counters, "
                f"expected {ways + 1}",
                stream=stream,
            )
        if any(count < 0 for count in profiler.counters):
            yield InvariantViolation(
                name, "msa-counter-negative",
                f"{stream} profiler counters contain a negative value: "
                f"{profiler.counters}",
                stream=stream,
            )
        for set_index, stack in profiler._shadow.items():
            if len(stack) > profiler.ways or len(set(stack)) != len(stack):
                yield InvariantViolation(
                    name, "msa-shadow-stack",
                    f"{stream} shadow stack for set {set_index} has "
                    f"{len(stack)} entries ({len(set(stack))} distinct), "
                    f"limit {profiler.ways}",
                    stream=stream, set_index=set_index,
                )
    if not 0 <= controller._accesses_in_epoch < controller.epoch_accesses:
        yield InvariantViolation(
            name, "epoch-position",
            f"accesses_in_epoch {controller._accesses_in_epoch} outside "
            f"[0, {controller.epoch_accesses})",
        )
    if controller.timeline:
        last = controller.timeline[-1]
        if last.data_ways + last.tlb_ways != ways:
            yield InvariantViolation(
                name, "decision-sum",
                f"last decision allocates {last.data_ways} + "
                f"{last.tlb_ways} ways, associativity is {ways}",
            )
        if controller.cache.data_ways != last.data_ways:
            yield InvariantViolation(
                name, "decision-installed",
                f"last decision chose {last.data_ways} data ways, cache "
                f"has {controller.cache.data_ways} installed",
            )
    else:
        yield InvariantViolation(
            name, "decision-timeline",
            "controller has no recorded decisions (the constructor "
            "records the initial split)",
        )


def check_mshr(core_id: int, mshr: MshrModel) -> Iterator[InvariantViolation]:
    name = f"mshr:core{core_id}"
    if not 0.0 <= mshr._miss_rate <= 1.0 or math.isnan(mshr._miss_rate):
        yield InvariantViolation(
            name, "miss-rate-range",
            f"EWMA miss rate {mshr._miss_rate} outside [0, 1]",
        )
    if not 1.0 <= mshr.mlp <= mshr.mlp_cap + 1e-9:
        yield InvariantViolation(
            name, "mlp-range",
            f"achieved MLP {mshr.mlp} outside [1, {mshr.mlp_cap}]",
        )


def check_dram(channel: DramChannel) -> Iterator[InvariantViolation]:
    name = f"dram:{channel.timing.name}"
    stats = channel.stats
    if stats.accesses != stats.row_hits + stats.row_misses:
        yield InvariantViolation(
            name, "row-accounting",
            f"accesses {stats.accesses} != row_hits {stats.row_hits} + "
            f"row_misses {stats.row_misses}",
        )
    for bank in channel._open_rows:
        if not 0 <= bank < channel.timing.banks:
            yield InvariantViolation(
                name, "bank-range",
                f"open-row entry for bank {bank}, device has "
                f"{channel.timing.banks} banks",
                bank=bank,
            )


def check_scheduler(
    scheduler: "ContextScheduler",
) -> Iterator[InvariantViolation]:
    name = "scheduler"
    for core_id, contexts in enumerate(scheduler._contexts):
        active = scheduler._active[core_id]
        if not 0 <= active < len(contexts):
            yield InvariantViolation(
                name, "active-range",
                f"core {core_id} active context {active}, only "
                f"{len(contexts)} contexts exist",
                core_id=core_id,
            )
        next_switch = scheduler._next_switch[core_id]
        if not math.isfinite(next_switch) or next_switch < 0:
            yield InvariantViolation(
                name, "switch-deadline",
                f"core {core_id} next switch at {next_switch}",
                core_id=core_id,
            )


def check_translation_coherence(
    system: "System",
) -> Iterator[InvariantViolation]:
    """Every cached translation must agree with the page tables.

    A stale or fabricated TLB entry silently redirects data traffic to
    the wrong physical frames; shootdowns are supposed to make this
    impossible, so any disagreement is a hard violation.
    """
    from repro.mem.address import PAGE_4K_BITS

    def expected_frame(asid, vpn: int, page_bits: int):
        vm = system.vms[asid.vm_id]
        table = vm._guest_tables.get(asid.process_id)
        if table is None:
            return None, "no guest page table for this process"
        virtual_address = vpn << page_bits
        guest = table.lookup(virtual_address)
        if guest is None:
            return None, "address not mapped in the guest table"
        if guest.page_bits != page_bits:
            return None, (
                f"guest table maps a 2**{guest.page_bits} page, entry "
                f"claims 2**{page_bits}"
            )
        if vm.native:
            return guest.frame_base, None
        guest_physical = guest.physical_address(virtual_address)
        host = vm.host_table.lookup(guest_physical)
        if host is None:
            return None, "guest-physical address not mapped in the EPT"
        host_physical = host.physical_address(guest_physical)
        page_mask = (1 << page_bits) - 1
        return (host_physical & ~page_mask) >> PAGE_4K_BITS, None

    def verify(name, asid, vpn, page_bits, entry):
        frame, problem = expected_frame(asid, vpn, page_bits)
        if problem is not None:
            return InvariantViolation(
                name, "translation-unbacked",
                f"entry ({asid}, vpn={vpn:#x}, 2**{page_bits}): {problem}",
                vpn=vpn, page_bits=page_bits,
            )
        if frame != entry.frame_base:
            return InvariantViolation(
                name, "translation-frame",
                f"entry ({asid}, vpn={vpn:#x}, 2**{page_bits}) holds frame "
                f"{entry.frame_base:#x}, page tables say {frame:#x}",
                vpn=vpn, page_bits=page_bits,
            )
        return None

    for core in system.cores:
        for tlb in (core.l1_tlb.tlb_4k, core.l1_tlb.tlb_2m, core.l2_tlb):
            name = f"tlb:{tlb.name}"
            for tlb_set in tlb._sets:
                for (asid, vpn, page_bits), entry in tlb_set.items():
                    violation = verify(name, asid, vpn, page_bits, entry)
                    if violation is not None:
                        yield violation
    if system.pom is not None:
        # Deterministic prefix (lowest set indices) keeps the sweep bounded.
        checked = 0
        for index in sorted(system.pom._contents):
            if checked >= POM_COHERENCE_LIMIT:
                break
            for (asid, vpn), entry in system.pom._contents[index].items():
                violation = verify(
                    "tlb:pom", asid, vpn, entry.page_bits, entry
                )
                if violation is not None:
                    yield violation
                checked += 1


# ----------------------------------------------------------------------
# Counter monotonicity
# ----------------------------------------------------------------------
def counter_snapshot(system: "System") -> Dict[str, float]:
    """Flat name -> value map of every cumulative counter in the machine."""
    snapshot: Dict[str, float] = {}

    def put(prefix: str, **values) -> None:
        for key, value in values.items():
            snapshot[f"{prefix}.{key}"] = value

    for core in system.cores:
        prefix = f"core{core.core_id}"
        stats = core.stats
        put(
            prefix,
            cycles=stats.cycles,
            instructions=stats.instructions,
            memory_accesses=stats.memory_accesses,
            l1_tlb_misses=stats.l1_tlb_misses,
            l2_tlb_misses=stats.l2_tlb_misses,
            page_walks=stats.page_walks,
            translation_stall=stats.translation_stall_cycles,
            data_stall=stats.data_stall_cycles,
        )
        for cache in (core.l1d, core.l2):
            put(
                f"{prefix}.{cache.name}",
                hits=cache.stats.hits,
                misses=cache.stats.misses,
                writebacks=cache.stats.writebacks,
                fills=cache.stats.fills,
            )
        for tlb in (core.l1_tlb.tlb_4k, core.l1_tlb.tlb_2m, core.l2_tlb):
            put(
                f"{prefix}.{tlb.name}",
                hits=tlb.stats.hits,
                misses=tlb.stats.misses,
                insertions=tlb.stats.insertions,
                evictions=tlb.stats.evictions,
            )
        put(
            f"{prefix}.walker",
            walks=core.walker.stats.walks,
            total_latency=core.walker.stats.total_latency,
            total_refs=core.walker.stats.total_refs,
        )
    put(
        "l3",
        hits=system.l3.stats.hits,
        misses=system.l3.stats.misses,
        writebacks=system.l3.stats.writebacks,
        fills=system.l3.stats.fills,
    )
    if system.pom is not None:
        put(
            "pom",
            hits=system.pom.stats.hits,
            misses=system.pom.stats.misses,
            insertions=system.pom.stats.insertions,
            second_probes=system.pom.stats.second_probes,
        )
    for label, channel in (("ddr", system.ddr), ("die_stacked", system.die_stacked)):
        put(
            f"dram.{label}",
            accesses=channel.stats.accesses,
            row_hits=channel.stats.row_hits,
            row_misses=channel.stats.row_misses,
        )
    snapshot["system.total_accesses"] = system._total_accesses
    return snapshot


def check_cycle_accounting(system: "System") -> Iterator[InvariantViolation]:
    """Per-component cycle charges sum *bit-exactly* to each core clock.

    Every increment booked by the :class:`~repro.telemetry.accounting.
    CycleAccountant` is a dyadic rational (integer latencies; base/MSHR
    charges quantized to 1/1024 cycle), so double accumulation is exact
    and the comparison below uses ``!=``, not a tolerance.  Skipped when
    no accountant is attached or the ledger is unsynced (a checkpoint
    restore from a snapshot that predates it).
    """
    accountant = getattr(system, "accounting", None)
    if accountant is None or not accountant.synced:
        return
    totals = accountant.core_totals()
    for core in system.cores:
        charged = totals.get(core.core_id, 0.0)
        if charged != core.stats.cycles:
            yield InvariantViolation(
                f"accounting:core{core.core_id}", "component-sum",
                f"components sum to {charged!r} but the core clock is "
                f"{core.stats.cycles!r} (diff {charged - core.stats.cycles!r})",
                core=core.core_id,
                charged=charged,
                cycles=core.stats.cycles,
            )
    num_cores = len(system.cores)
    for core_id in totals:
        if not 0 <= core_id < num_cores:
            yield InvariantViolation(
                "accounting", "unknown-core",
                f"ledger holds charges for core {core_id}, system has "
                f"{num_cores} cores",
                core=core_id,
            )


def check_monotone(
    baseline: Dict[str, float], current: Dict[str, float]
) -> Iterator[InvariantViolation]:
    for key, previous in baseline.items():
        value = current.get(key)
        if value is not None and value < previous:
            yield InvariantViolation(
                "counters", "monotonicity",
                f"{key} decreased from {previous} to {value}",
                counter=key,
            )


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
class InvariantChecker:
    """Runs the full catalogue against a live system.

    A sweep gathers *all* violations, then raises the first with the
    rest attached as ``violation.others`` — one corrupted structure
    often implies several broken invariants, and seeing the set at once
    beats replaying the run per finding.

    The monotonicity baseline starts at the current counters and rolls
    forward on every clean check.  Call :meth:`reset_baseline` whenever
    counters are legitimately reset (the warmup boundary) or replaced
    wholesale (a checkpoint restore).
    """

    def __init__(
        self,
        system: "System",
        scheduler: Optional["ContextScheduler"] = None,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.system = system
        self.scheduler = scheduler
        self.checks_run = 0
        self.violations_found = 0
        self._baseline = counter_snapshot(system)
        self._check_counter = None
        self._violation_counter = None
        if telemetry is not None and telemetry.metrics is not None:
            self._check_counter = telemetry.metrics.counter("validate.checks")
            self._violation_counter = telemetry.metrics.counter(
                "validate.violations"
            )

    def reset_baseline(self) -> None:
        self._baseline = counter_snapshot(self.system)

    def sweep(self) -> List[InvariantViolation]:
        """Run every check; returns all violations without raising."""
        system = self.system
        found: List[InvariantViolation] = []
        caches = [system.l3]
        for core in system.cores:
            caches.extend((core.l1d, core.l2))
        for cache in caches:
            found.extend(check_cache(cache))
        for core in system.cores:
            for tlb in (core.l1_tlb.tlb_4k, core.l1_tlb.tlb_2m, core.l2_tlb):
                found.extend(check_tlb(tlb))
            found.extend(check_mshr(core.core_id, core.mshr))
            if core.l2_controller is not None:
                found.extend(
                    check_profiler_pair(
                        f"core{core.core_id}.l2", core.l2_controller
                    )
                )
        if system.l3_controller is not None:
            found.extend(check_profiler_pair("l3", system.l3_controller))
        found.extend(check_dram(system.ddr))
        found.extend(check_dram(system.die_stacked))
        if self.scheduler is not None:
            found.extend(check_scheduler(self.scheduler))
        found.extend(check_translation_coherence(system))
        found.extend(check_cycle_accounting(system))
        current = counter_snapshot(system)
        found.extend(check_monotone(self._baseline, current))
        if not found:
            self._baseline = current
        return found

    def check(self, executed: Optional[int] = None) -> None:
        """One audit pass; raises on the first violation (others attached)."""
        self.checks_run += 1
        if self._check_counter is not None:
            self._check_counter.inc()
        found = self.sweep()
        if not found:
            return
        self.violations_found += len(found)
        if self._violation_counter is not None:
            self._violation_counter.inc(len(found))
        first = found[0]
        first.others = found[1:]
        if executed is not None:
            first.context.setdefault("executed", executed)
        raise first
