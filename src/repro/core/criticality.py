"""Criticality weight estimation for CSALT-CD (paper Section 3.2).

CSALT-CD scales each profiler's marginal utility by the performance gained
when that stream hits in the cache instead of missing:

* a **data** hit in the L3 saves a DRAM access, so
  ``S_Dat = avg_dram_latency / l3_latency``;
* a **TLB-entry** hit in the L3 saves the POM-TLB access in die-stacked
  DRAM — and, when the POM-TLB itself would miss, a full 2-D page walk —
  so ``S_Tr = (tlb_latency + avg_dram_latency) / l3_latency`` (the paper's
  stated formula), extended here with the measured walk-cost tail.

The inputs are the counters modern processors already expose (L3 and
POM-TLB hit rates, average walk cost); the estimator only reads them, as
the paper's minimal-hardware argument requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple


@dataclass
class LatencyBook:
    """Access latencies (CPU cycles) of the levels below a partitioned cache."""

    cache_latency: int
    next_level_data_latency: float
    tlb_service_latency: float

    def weights(self) -> Tuple[float, float]:
        s_dat = max(1.0, self.next_level_data_latency / self.cache_latency)
        s_tr = max(1.0, self.tlb_service_latency / self.cache_latency)
        return s_dat, s_tr


class CriticalityEstimator:
    """Computes (S_Dat, S_Tr) for one partitioned cache from live counters.

    ``dynamic_inputs`` is polled at every epoch and must return:

    * ``next_data_latency`` — expected cycles for a data request that
      misses this cache (e.g., for the L2: L3 latency plus the L3-miss
      fraction times DRAM latency);
    * ``pom_hit_rate`` — hit rate of the POM-TLB;
    * ``pom_latency`` — die-stacked DRAM access cost;
    * ``walk_latency`` — current mean 2-D page-walk cost.

    A TLB request that misses this cache proceeds down the remaining data
    caches and then to the POM-TLB; if that also misses, the page walk is
    paid.  The expected translation-service latency is assembled from
    those measured pieces.
    """

    def __init__(
        self,
        cache_latency: int,
        dynamic_inputs: Callable[[], "CriticalityInputs"],
    ):
        if cache_latency < 1:
            raise ValueError("cache latency must be positive")
        self.cache_latency = cache_latency
        self._dynamic_inputs = dynamic_inputs

    def weights(self) -> Tuple[float, float]:
        inputs = self._dynamic_inputs()
        tlb_service = inputs.tlb_downstream_latency + inputs.pom_latency
        tlb_service += (1.0 - inputs.pom_hit_rate) * inputs.walk_latency
        book = LatencyBook(
            cache_latency=self.cache_latency,
            next_level_data_latency=inputs.next_data_latency,
            tlb_service_latency=tlb_service,
        )
        return book.weights()


@dataclass
class CriticalityInputs:
    """A snapshot of the performance counters the estimator consumes."""

    next_data_latency: float
    tlb_downstream_latency: float
    pom_hit_rate: float
    pom_latency: float
    walk_latency: float


def expected_miss_latency(
    hit_rate: float, hit_latency: float, miss_latency: float
) -> float:
    """Expected service latency of a level with the given hit rate."""
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError(f"hit rate must be in [0, 1], got {hit_rate}")
    return hit_rate * hit_latency + (1.0 - hit_rate) * miss_latency
