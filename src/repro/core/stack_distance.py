"""Mattson stack-distance (MSA) profilers for data and TLB streams.

CSALT attaches two profilers to each partitioned cache (paper Figure 4):
one observing data accesses, one observing TLB-entry accesses.  For a
K-way cache, a profiler is an array of K+1 counters: ``counters[i]``
counts hits at LRU stack position ``i`` (0 = MRU) and ``counters[K]``
counts misses.  Summing a prefix predicts the hit count the stream would
achieve with that many ways — the basis of marginal utility (Eq. 1).

Two operating modes, matching the paper:

* **shadow mode** (default) — a per-set auxiliary tag directory with full
  associativity K and true-LRU ordering gives exact stack distances even
  when the main cache runs NRU/pseudo-LRU.  Set sampling (every
  ``2**sample_shift``-th set) keeps the hardware (and simulation) cost
  negligible, as in UCP.
* **estimate mode** (Section 3.4) — no shadow tags; the counters are
  updated from the *main cache's* estimated stack position of each hit
  (Kedzierski-style NRU/BT-PLRU position estimates), losing a little
  accuracy but no extra tag storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


class StackDistanceProfiler:
    """One stream's MSA LRU stack with set-sampled shadow tags."""

    def __init__(self, ways: int, sample_shift: int = 4):
        if ways < 1:
            raise ValueError("profiler needs at least one way")
        self.ways = ways
        self.sample_shift = sample_shift
        self.counters: List[int] = [0] * (ways + 1)
        self._shadow: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Shadow mode
    # ------------------------------------------------------------------
    def is_sampled(self, set_index: int) -> bool:
        return (set_index & ((1 << self.sample_shift) - 1)) == 0

    def record(self, set_index: int, tag: int) -> None:
        """Observe an access in shadow mode (ignored for unsampled sets)."""
        if not self.is_sampled(set_index):
            return
        self.record_sampled(set_index, tag)

    def record_sampled(self, set_index: int, tag: int) -> None:
        """Shadow-mode update for a set the *caller* already knows is
        sampled.  The hot path (``PartitionController.observe``) tests
        the sample mask inline and only pays this call for the 1-in-
        ``2**sample_shift`` sets that pass, instead of calling in to an
        immediate early return for the rest."""
        stack = self._shadow.get(set_index)
        if stack is None:
            stack = []
            self._shadow[set_index] = stack
        try:
            position = stack.index(tag)
        except ValueError:
            self.counters[self.ways] += 1
            stack.insert(0, tag)
            if len(stack) > self.ways:
                stack.pop()
            return
        self.counters[position] += 1
        del stack[position]
        stack.insert(0, tag)

    # ------------------------------------------------------------------
    # Estimate mode (paper Section 3.4)
    # ------------------------------------------------------------------
    def record_position(self, position: Optional[int]) -> None:
        """Observe an access given the main cache's estimated position.

        ``None`` means the access missed the main cache.
        """
        if position is None:
            self.counters[self.ways] += 1
        else:
            self.counters[min(position, self.ways - 1)] += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def hits_with_ways(self, ways: int) -> int:
        """Predicted hits had the stream owned ``ways`` ways (prefix sum)."""
        if not 0 <= ways <= self.ways:
            raise ValueError(f"ways must be in [0, {self.ways}], got {ways}")
        return sum(self.counters[:ways])

    @property
    def total_accesses(self) -> int:
        return sum(self.counters)

    @property
    def misses(self) -> int:
        return self.counters[self.ways]

    def decay(self, shift: int = 1) -> None:
        """Age counters at an epoch boundary (halving, as in UCP)."""
        self.counters = [count >> shift for count in self.counters]

    def reset(self) -> None:
        self.counters = [0] * (self.ways + 1)
        self._shadow.clear()

    def state_dict(self) -> dict:
        return {
            "counters": list(self.counters),
            "shadow": {index: list(stack) for index, stack in self._shadow.items()},
        }

    def load_state(self, state: dict) -> None:
        counters = state["counters"]
        if len(counters) != self.ways + 1:
            raise ValueError(
                f"profiler snapshot has {len(counters)} counters, expected "
                f"{self.ways + 1}"
            )
        self.counters = list(counters)
        self._shadow = {
            index: list(stack) for index, stack in state["shadow"].items()
        }


@dataclass
class ProfilerPair:
    """The data + TLB profiler pair attached to one partitioned cache."""

    data: StackDistanceProfiler
    tlb: StackDistanceProfiler

    @classmethod
    def for_ways(cls, ways: int, sample_shift: int = 4) -> "ProfilerPair":
        return cls(
            data=StackDistanceProfiler(ways, sample_shift),
            tlb=StackDistanceProfiler(ways, sample_shift),
        )

    def decay(self, shift: int = 1) -> None:
        self.data.decay(shift)
        self.tlb.decay(shift)

    def state_dict(self) -> dict:
        return {"data": self.data.state_dict(), "tlb": self.tlb.state_dict()}

    def load_state(self, state: dict) -> None:
        self.data.load_state(state["data"])
        self.tlb.load_state(state["tlb"])
