"""The translation/cache-management schemes evaluated in the paper.

Each enum member bundles the configuration axes the simulator needs:
whether a POM-TLB (or TSB) backs the L2 TLB, which cache-partitioning mode
runs, and whether DIP insertion is active.  The set matches the paper's
result figures:

* ``CONVENTIONAL`` — L1/L2 TLBs + 2-D page walker only (Figure 7 baseline);
* ``POM_TLB`` — adds the large L3 TLB, plain LRU caches (Ryoo et al.);
* ``CSALT_D`` — POM-TLB + dynamic partitioning, Eq. 1;
* ``CSALT_CD`` — POM-TLB + criticality-weighted partitioning, Eq. 2;
* ``CSALT_STATIC`` — POM-TLB + a fixed half/half split (footnote 6 ablation);
* ``TSB`` — software translation storage buffers (Figure 13);
* ``DIP`` — POM-TLB + DIP insertion instead of partitioning (Figure 13).
"""

from __future__ import annotations

from enum import Enum


class PartitionMode(Enum):
    NONE = "none"
    STATIC = "static"
    DYNAMIC = "dynamic"
    CRITICALITY = "criticality"


class Scheme(Enum):
    CONVENTIONAL = "conventional"
    POM_TLB = "pom-tlb"
    CSALT_D = "csalt-d"
    CSALT_CD = "csalt-cd"
    CSALT_STATIC = "csalt-static"
    TSB = "tsb"
    DIP = "dip"

    @property
    def uses_pom_tlb(self) -> bool:
        return self in (
            Scheme.POM_TLB,
            Scheme.CSALT_D,
            Scheme.CSALT_CD,
            Scheme.CSALT_STATIC,
            Scheme.DIP,
        )

    @property
    def uses_tsb(self) -> bool:
        return self is Scheme.TSB

    @property
    def partition_mode(self) -> PartitionMode:
        if self is Scheme.CSALT_D:
            return PartitionMode.DYNAMIC
        if self is Scheme.CSALT_CD:
            return PartitionMode.CRITICALITY
        if self is Scheme.CSALT_STATIC:
            return PartitionMode.STATIC
        return PartitionMode.NONE

    @property
    def uses_dip(self) -> bool:
        return self is Scheme.DIP

    @property
    def label(self) -> str:
        """Display name used in the paper's figures."""
        return {
            Scheme.CONVENTIONAL: "Conventional",
            Scheme.POM_TLB: "POM-TLB",
            Scheme.CSALT_D: "CSALT-D",
            Scheme.CSALT_CD: "CSALT-CD",
            Scheme.CSALT_STATIC: "CSALT-Static",
            Scheme.TSB: "TSB",
            Scheme.DIP: "DIP",
        }[self]
