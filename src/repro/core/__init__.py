"""repro.core subpackage."""
