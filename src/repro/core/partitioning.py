"""CSALT dynamic cache partitioning (paper Algorithms 1-3, Eqs. 1-2).

``marginal_utility`` implements Eq. 1/2: the predicted overall hit count of
a partitioning that gives N ways to data and K-N to TLB entries, read off
the two stack-distance profilers, optionally scaled by criticality weights
(S_Dat, S_Tr).  ``best_partition`` is Algorithm 1's argmax over N.

``PartitionController`` wires this to a live cache: it observes every
access, and at each epoch boundary recomputes the partition and installs
it via ``Cache.set_partition``.  It also keeps the timeline of partition
decisions used to reproduce Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.core.stack_distance import ProfilerPair
from repro.mem.cache import Cache, LineKind
from repro.telemetry.events import EVENT_PARTITION

if TYPE_CHECKING:
    from repro.telemetry import Telemetry

#: Paper default: repartition every 256K cache accesses (Section 5.3).
DEFAULT_EPOCH_ACCESSES = 256_000

#: Minimum ways either stream may hold (Algorithm 1's Nmin; both data and
#: TLB always keep at least one way so neither stream is starved).
N_MIN = 1


def marginal_utility(
    data_counters: List[int],
    tlb_counters: List[int],
    data_ways: int,
    total_ways: int,
    weight_data: float = 1.0,
    weight_tlb: float = 1.0,
) -> float:
    """Criticality-weighted marginal utility of a candidate partition.

    With unit weights this is Eq. 1 (CSALT-D); with measured weights it is
    Eq. 2 (CSALT-CD).  ``data_counters``/``tlb_counters`` are the MSA
    profiler arrays (length ``total_ways + 1``).
    """
    if not N_MIN <= data_ways <= total_ways - N_MIN:
        raise ValueError(
            f"data_ways must be in [{N_MIN}, {total_ways - N_MIN}], got {data_ways}"
        )
    data_hits = sum(data_counters[:data_ways])
    tlb_hits = sum(tlb_counters[: total_ways - data_ways])
    return weight_data * data_hits + weight_tlb * tlb_hits


def best_partition(
    data_counters: List[int],
    tlb_counters: List[int],
    total_ways: int,
    weight_data: float = 1.0,
    weight_tlb: float = 1.0,
) -> int:
    """Algorithm 1: the data-way count N maximizing (CW)MU.

    Ties break toward the more balanced split closest to the middle, so an
    idle stream cannot monopolize the cache on zero evidence.
    """
    middle = total_ways / 2
    best_n = N_MIN
    best_value: Optional[float] = None
    for candidate in range(N_MIN, total_ways - N_MIN + 1):
        value = marginal_utility(
            data_counters, tlb_counters, candidate, total_ways,
            weight_data, weight_tlb,
        )
        better = best_value is None or value > best_value
        tie = best_value is not None and value == best_value
        if tie and abs(candidate - middle) < abs(best_n - middle):
            better = True
        if better:
            best_value = value
            best_n = candidate
    return best_n


def lookahead_partition(
    data_counters: List[int],
    tlb_counters: List[int],
    total_ways: int,
    weight_data: float = 1.0,
    weight_tlb: float = 1.0,
) -> int:
    """UCP's greedy lookahead allocation (Qureshi & Patt, cited as [60]).

    Hardware-friendly alternative to the exhaustive argmax: repeatedly
    grant ways to whichever stream offers the best *hits gained per way*
    over any lookahead distance, starting from one guaranteed way each.
    With only two streams the exhaustive search (``best_partition``) is
    cheap and optimal; this exists for the ablation comparing the two and
    matches the argmax in the common convex cases.
    """
    curves = (
        [weight_data * c for c in data_counters],
        [weight_tlb * c for c in tlb_counters],
    )
    allocation = [N_MIN, N_MIN]
    remaining = total_ways - 2 * N_MIN

    def best_step(stream: int, budget: int):
        """(utility-per-way, ways) of the best lookahead for ``stream``."""
        counters = curves[stream]
        start = allocation[stream]
        best = (0.0, 0)
        gained = 0.0
        for extra in range(1, budget + 1):
            index = start + extra - 1
            if index >= total_ways:
                break
            gained += counters[index]
            rate = gained / extra
            if rate > best[0]:
                best = (rate, extra)
        return best

    while remaining > 0:
        data_step = best_step(0, remaining)
        tlb_step = best_step(1, remaining)
        if data_step[1] == 0 and tlb_step[1] == 0:
            # No stream gains anything: split the leftovers evenly.
            allocation[0] += remaining - remaining // 2
            allocation[1] += remaining // 2
            break
        if data_step[0] >= tlb_step[0]:
            stream, step = 0, max(1, data_step[1])
        else:
            stream, step = 1, max(1, tlb_step[1])
        step = min(step, remaining)
        allocation[stream] += step
        remaining -= step
    return allocation[0]


@dataclass
class PartitionDecision:
    """One epoch-boundary outcome, kept for the Figure 9 timeline."""

    access_count: int
    data_ways: int
    tlb_ways: int
    weight_data: float
    weight_tlb: float

    @property
    def tlb_fraction(self) -> float:
        return self.tlb_ways / (self.data_ways + self.tlb_ways)


#: Provider of (S_Dat, S_Tr) criticality weights, queried at each epoch.
WeightProvider = Callable[[], Tuple[float, float]]


def unit_weights() -> Tuple[float, float]:
    """CSALT-D: data and TLB hits valued equally."""
    return 1.0, 1.0


class PartitionController:
    """Drives one cache's CSALT partition across epochs.

    ``weight_provider`` distinguishes the two schemes: ``unit_weights``
    gives CSALT-D; a :class:`~repro.core.criticality.CriticalityEstimator`
    method gives CSALT-CD.  With ``estimate_positions=True`` the profilers
    run in pseudo-LRU estimate mode off the main cache's recency state
    (paper Section 3.4) instead of shadow tags.
    """

    def __init__(
        self,
        cache: Cache,
        epoch_accesses: int = DEFAULT_EPOCH_ACCESSES,
        weight_provider: WeightProvider = unit_weights,
        sample_shift: int = 4,
        estimate_positions: bool = False,
        initial_data_ways: Optional[int] = None,
        telemetry: Optional["Telemetry"] = None,
        clock: Optional[Callable[[], float]] = None,
        label: str = "",
        core_id: int = -1,
    ):
        if epoch_accesses < 1:
            raise ValueError("epoch length must be positive")
        self.cache = cache
        self.epoch_accesses = epoch_accesses
        self.weight_provider = weight_provider
        self.estimate_positions = estimate_positions
        self.profilers = ProfilerPair.for_ways(cache.ways, sample_shift)
        #: Inline shadow-mode sampling test for :meth:`observe` (matches
        #: ``StackDistanceProfiler.is_sampled`` on both profilers).
        self._sample_mask = (1 << sample_shift) - 1
        self._accesses_in_epoch = 0
        self.total_accesses = 0
        self.timeline: List[PartitionDecision] = []
        #: Telemetry sink plus a simulated-cycle clock for event stamps
        #: (falls back to the access count when no clock is wired).
        self._telemetry = telemetry
        self._clock = clock
        self.label = label or cache.name
        self._core_id = core_id
        self._decision_counter = None
        self._tlb_fraction_gauge = None
        if telemetry is not None and telemetry.metrics is not None:
            self._decision_counter = telemetry.metrics.counter(
                "partition.decisions"
            )
            self._tlb_fraction_gauge = telemetry.metrics.gauge(
                f"partition.{self.label}.tlb_fraction",
                lambda: self.timeline[-1].tlb_fraction if self.timeline else 0.0,
            )
        start = initial_data_ways if initial_data_ways is not None else cache.ways // 2
        cache.set_partition(start)
        self._record_decision(start, 1.0, 1.0)

    # ------------------------------------------------------------------
    def observe(self, kind: int, set_index: int, tag: int, hit: bool) -> None:
        """Feed one cache access to the profilers; repartition on epoch end.

        Call *after* the cache lookup so ``cache.last_stack_position`` is
        valid in estimate mode.  ``kind`` may be a :class:`LineKind` or
        its plain int value (DATA falsy, TLB truthy).  This runs once per
        L2/L3 reference, so the shadow-mode sampling test is inlined:
        unsampled sets (the 15-of-16 common case at the default
        ``sample_shift``) never pay a profiler call.
        """
        pair = self.profilers
        profiler = pair.tlb if kind else pair.data
        if self.estimate_positions:
            position = self.cache.last_stack_position if hit else None
            profiler.record_position(position)
        elif set_index & self._sample_mask == 0:
            profiler.record_sampled(set_index, tag)
        self._accesses_in_epoch += 1
        self.total_accesses += 1
        if self._accesses_in_epoch >= self.epoch_accesses:
            self.repartition()

    def repartition(self) -> int:
        """Epoch boundary: Algorithm 1 (+ weights) then install the split."""
        tel = self._telemetry
        if tel is not None and tel.profiler is not None:
            with tel.profiler.scope("partition"):
                return self._repartition()
        return self._repartition()

    def _repartition(self) -> int:
        weight_data, weight_tlb = self.weight_provider()
        data_ways = best_partition(
            self.profilers.data.counters,
            self.profilers.tlb.counters,
            self.cache.ways,
            weight_data,
            weight_tlb,
        )
        self.cache.set_partition(data_ways)
        self._record_decision(data_ways, weight_data, weight_tlb)
        self.profilers.decay()
        self._accesses_in_epoch = 0
        return data_ways

    def _record_decision(
        self, data_ways: int, weight_data: float, weight_tlb: float
    ) -> None:
        decision = PartitionDecision(
            access_count=self.total_accesses,
            data_ways=data_ways,
            tlb_ways=self.cache.ways - data_ways,
            weight_data=weight_data,
            weight_tlb=weight_tlb,
        )
        self.timeline.append(decision)
        tel = self._telemetry
        if tel is not None:
            cycles = (
                self._clock() if self._clock is not None
                else float(self.total_accesses)
            )
            tel.emit(
                EVENT_PARTITION,
                cycles,
                self._core_id,
                label=self.label,
                data_ways=decision.data_ways,
                tlb_ways=decision.tlb_ways,
                tlb_fraction=decision.tlb_fraction,
                weight_data=weight_data,
                weight_tlb=weight_tlb,
            )
            if self._decision_counter is not None:
                self._decision_counter.inc()

    @property
    def current_data_ways(self) -> int:
        return self.timeline[-1].data_ways

    def tlb_fraction_timeline(self) -> List[Tuple[int, float]]:
        """(access count, TLB way share) pairs — the Figure 9 series."""
        return [(d.access_count, d.tlb_fraction) for d in self.timeline]

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The cache's installed split is restored by the cache's own
        ``load_state``; this covers the controller's profilers, epoch
        position, and decision timeline."""
        return {
            "profilers": self.profilers.state_dict(),
            "accesses_in_epoch": self._accesses_in_epoch,
            "total_accesses": self.total_accesses,
            "timeline": [replace(decision) for decision in self.timeline],
        }

    def load_state(self, state: dict) -> None:
        self.profilers.load_state(state["profilers"])
        self._accesses_in_epoch = state["accesses_in_epoch"]
        self.total_accesses = state["total_accesses"]
        self.timeline = [replace(decision) for decision in state["timeline"]]
