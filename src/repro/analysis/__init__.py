"""repro.analysis subpackage: miss-curve, run-summary and diff tooling."""
