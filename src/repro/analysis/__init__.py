"""repro.analysis subpackage: miss-curve and run-summary tooling."""
