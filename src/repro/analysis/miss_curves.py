"""Miss-curve analysis on top of the MSA stack-distance profilers.

CSALT's partitioning decision is an argmax over the marginal-utility
surface built from two miss curves (paper Eq. 1-2).  These helpers expose
that surface for inspection — useful both for debugging partition
behaviour and for the kind of utility analysis UCP-style papers plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.partitioning import marginal_utility
from repro.core.stack_distance import StackDistanceProfiler


def hit_curve(counters: Sequence[int]) -> List[int]:
    """Cumulative hits for 0..K ways from an MSA counter array."""
    curve = [0]
    for count in counters[:-1]:
        curve.append(curve[-1] + count)
    return curve


def miss_ratio_curve(counters: Sequence[int]) -> List[float]:
    """Miss ratio for 0..K ways (1.0 at zero ways)."""
    total = sum(counters)
    if total == 0:
        return [1.0] * len(counters)
    hits = hit_curve(counters)
    return [1.0 - h / total for h in hits]


def marginal_gain(counters: Sequence[int]) -> List[int]:
    """Extra hits contributed by each additional way (the MSA array
    without the miss bucket) — the quantity marginal utility compares."""
    return list(counters[:-1])


@dataclass
class UtilitySurface:
    """The (CW)MU value for every legal data-way split of one cache."""

    total_ways: int
    values: List[float]
    best_data_ways: int

    def as_rows(self) -> List[Tuple[int, int, float]]:
        """(data ways, tlb ways, utility) triples."""
        return [
            (n, self.total_ways - n, value)
            for n, value in zip(range(1, self.total_ways), self.values)
        ]


def utility_surface(
    data_counters: Sequence[int],
    tlb_counters: Sequence[int],
    total_ways: int,
    weight_data: float = 1.0,
    weight_tlb: float = 1.0,
) -> UtilitySurface:
    """Evaluate Eq. 1/2 for every candidate split."""
    values = [
        marginal_utility(
            list(data_counters), list(tlb_counters), n, total_ways,
            weight_data, weight_tlb,
        )
        for n in range(1, total_ways)
    ]
    best = max(range(len(values)), key=values.__getitem__) + 1
    return UtilitySurface(total_ways=total_ways, values=values,
                          best_data_ways=best)


def profiler_summary(profiler: StackDistanceProfiler) -> str:
    """One-line textual summary of a profiler's miss curve."""
    total = profiler.total_accesses
    if not total:
        return "no accesses observed"
    curve = miss_ratio_curve(profiler.counters)
    knees = [f"{ways}w:{ratio:.2f}" for ways, ratio in enumerate(curve)
             if ways in (1, profiler.ways // 2, profiler.ways)]
    return (f"{total} accesses, miss ratio " + " -> ".join(knees))


def ascii_bars(
    values: Sequence[float], labels: Sequence[str], width: int = 40
) -> str:
    """Render values as horizontal ASCII bars (for CLI output)."""
    if len(values) != len(labels):
        raise ValueError("values and labels must align")
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(width * value / peak)) if value > 0 else ""
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.3f}")
    return "\n".join(lines)
