"""Run differencing: compare two simulation results (or result stores).

Backs the ``repro diff A B`` CLI command.  ``A`` is the baseline and
``B`` the candidate, so every delta reads "what changed going from A to
B".  Three input shapes are accepted per side, sniffed from the JSON:

* a ``repro run --json`` document (``{"result": {...}, ...}``);
* a :class:`~repro.experiments.store.ResultStore` entry
  (``{"signature": {...}, "result": {...}}``);
* a bare :meth:`~repro.sim.stats.SimulationResult.to_dict` snapshot.

A side may also be a *directory*, in which case it is opened as a
result store and matched entry-by-entry against the other store.

Deltas are sign-aware: every compared metric carries a
direction (higher- or lower-is-better), and a change in the bad
direction beyond the tolerance is flagged as a regression.  When both
runs carry a CPI stack the diff additionally decomposes the performance
change per cycle component — the paper's headline speedups show up as
the translation components (``pom.*``/``walk.*``/``tsb.*``) shrinking
while ``base`` and ``data.*`` stay put.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DataError
from repro.sim.stats import SimulationResult
from repro.telemetry.accounting import (
    CpiStack,
    component_sort_key,
    merge_components,
)

#: Compared metrics: ``(attribute, +1 higher-is-better / -1 lower)``.
#: Attributes are read off :class:`SimulationResult`; order is display
#: order.
METRIC_DIRECTIONS: List[Tuple[str, int]] = [
    ("ipc", +1),
    ("l2_tlb_mpki", -1),
    ("l2_cache_mpki", -1),
    ("l3_cache_mpki", -1),
    ("page_walks", -1),
    ("walk_mean_cycles", -1),
    ("walk_cycles_per_l2_miss", -1),
    ("walks_eliminated_fraction", +1),
    ("pom_hit_rate", +1),
    ("l3_data_hit_rate", +1),
]

#: Relative change below this is noise, not a regression/improvement.
DEFAULT_TOLERANCE = 0.01


class DiffError(DataError, ValueError):
    """An input could not be parsed as a result or opened as a store.

    A :class:`~repro.errors.DataError` (exit code 2); still a
    ``ValueError`` for pre-taxonomy callers.
    """


# ----------------------------------------------------------------------
# Input loading
# ----------------------------------------------------------------------
def load_result_file(path: str) -> SimulationResult:
    """Load one result from any of the accepted JSON shapes."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as exc:
        raise DiffError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise DiffError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise DiffError(f"{path}: expected a JSON object")
    candidate = document.get("result", document)
    try:
        return SimulationResult.from_dict(candidate)
    except (KeyError, TypeError, ValueError) as exc:
        raise DiffError(
            f"{path} does not look like a simulation result "
            f"(run --json document, store entry, or result dict): {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Result-vs-result diff
# ----------------------------------------------------------------------
@dataclass
class MetricDelta:
    """One metric compared across the two runs (``b - a``)."""

    name: str
    a: float
    b: float
    direction: int  # +1 higher-is-better, -1 lower-is-better
    tolerance: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def relative(self) -> float:
        """Relative change vs the baseline (0 when the baseline is 0)."""
        return self.delta / abs(self.a) if self.a else 0.0

    @property
    def verdict(self) -> str:
        """``"better"`` / ``"worse"`` / ``"~"`` (within tolerance)."""
        if abs(self.relative) <= self.tolerance:
            return "~"
        return "better" if self.delta * self.direction > 0 else "worse"

    @property
    def regressed(self) -> bool:
        return self.verdict == "worse"

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.name,
            "a": self.a,
            "b": self.b,
            "delta": self.delta,
            "relative": self.relative,
            "verdict": self.verdict,
        }


@dataclass
class RunDiff:
    """Everything ``repro diff`` reports for one pair of runs."""

    label_a: str
    label_b: str
    metrics: List[MetricDelta]
    speedup: float  # ipc_b / ipc_a (0 when the baseline IPC is 0)
    #: (component, cpi_a, cpi_b, cpi_b - cpi_a); empty unless both runs
    #: carry a CPI stack.
    cpi_delta: List[Tuple[str, float, float, float]] = field(
        default_factory=list
    )

    @property
    def regressions(self) -> List[MetricDelta]:
        return [metric for metric in self.metrics if metric.regressed]

    def to_dict(self) -> Dict[str, object]:
        return {
            "a": self.label_a,
            "b": self.label_b,
            "speedup": self.speedup,
            "metrics": [metric.to_dict() for metric in self.metrics],
            "regressions": [metric.name for metric in self.regressions],
            "cpi_delta": [
                {"component": name, "a": a, "b": b, "delta": delta}
                for name, a, b, delta in self.cpi_delta
            ],
        }

    def format(self) -> str:
        lines = [
            f"A: {self.label_a}",
            f"B: {self.label_b}",
            f"speedup (IPC B/A) : {self.speedup:.3f}x",
            "",
            f"  {'metric':<26} {'A':>12} {'B':>12} "
            f"{'delta':>11} {'rel':>8}  verdict",
        ]
        for metric in self.metrics:
            flag = " <-- regression" if metric.regressed else ""
            lines.append(
                f"  {metric.name:<26} {metric.a:>12.4f} {metric.b:>12.4f} "
                f"{metric.delta:>+11.4f} {metric.relative:>+7.1%}  "
                f"{metric.verdict}{flag}"
            )
        if self.cpi_delta:
            lines.append("")
            lines.append(
                f"  {'CPI component':<20} {'A':>9} {'B':>9} {'delta':>9}"
            )
            total_a = total_b = 0.0
            for name, a, b, delta in self.cpi_delta:
                total_a += a
                total_b += b
                lines.append(
                    f"  {name:<20} {a:>9.4f} {b:>9.4f} {delta:>+9.4f}"
                )
            lines.append(
                f"  {'total':<20} {total_a:>9.4f} {total_b:>9.4f} "
                f"{total_b - total_a:>+9.4f}"
            )
        return "\n".join(lines)


def diff_results(
    a: SimulationResult,
    b: SimulationResult,
    tolerance: float = DEFAULT_TOLERANCE,
    label_a: str = "A",
    label_b: str = "B",
) -> RunDiff:
    """Compare two runs metric-by-metric (and per CPI component)."""
    metrics = [
        MetricDelta(
            name=name,
            a=float(getattr(a, name)),
            b=float(getattr(b, name)),
            direction=direction,
            tolerance=tolerance,
        )
        for name, direction in METRIC_DIRECTIONS
    ]
    cpi_delta: List[Tuple[str, float, float, float]] = []
    if a.cpi_stack is not None and b.cpi_stack is not None:
        cpi_delta = a.cpi_stack.delta(b.cpi_stack)
    return RunDiff(
        label_a=f"{label_a} [{a.scheme} / {a.workload}]",
        label_b=f"{label_b} [{b.scheme} / {b.workload}]",
        metrics=metrics,
        speedup=b.speedup_over(a),
        cpi_delta=cpi_delta,
    )


# ----------------------------------------------------------------------
# Store-vs-store diff
# ----------------------------------------------------------------------
@dataclass
class StoreDiff:
    """Entry-matched comparison of two result stores."""

    label_a: str
    label_b: str
    #: (signature summary, ipc_a, ipc_b, speedup) per matched point.
    points: List[Tuple[str, float, float, float]]
    only_in_a: int
    only_in_b: int
    regressions: List[str]  # matched points whose speedup < 1 - tolerance
    #: Aggregate CPI components per side (from points carrying stacks).
    cpi_delta: List[Tuple[str, float, float, float]] = field(
        default_factory=list
    )

    def to_dict(self) -> Dict[str, object]:
        return {
            "a": self.label_a,
            "b": self.label_b,
            "matched": len(self.points),
            "only_in_a": self.only_in_a,
            "only_in_b": self.only_in_b,
            "points": [
                {"point": point, "ipc_a": ipc_a, "ipc_b": ipc_b,
                 "speedup": speedup}
                for point, ipc_a, ipc_b, speedup in self.points
            ],
            "regressions": list(self.regressions),
            "cpi_delta": [
                {"component": name, "a": a, "b": b, "delta": delta}
                for name, a, b, delta in self.cpi_delta
            ],
        }

    def format(self) -> str:
        lines = [
            f"A: {self.label_a}",
            f"B: {self.label_b}",
            f"matched points    : {len(self.points)} "
            f"(only in A: {self.only_in_a}, only in B: {self.only_in_b})",
            "",
            f"  {'point':<40} {'IPC A':>8} {'IPC B':>8} {'B/A':>7}",
        ]
        for point, ipc_a, ipc_b, speedup in self.points:
            flag = " <-- regression" if point in self.regressions else ""
            lines.append(
                f"  {point:<40} {ipc_a:>8.4f} {ipc_b:>8.4f} "
                f"{speedup:>6.3f}x{flag}"
            )
        if self.cpi_delta:
            lines.append("")
            lines.append(
                f"  {'CPI component':<20} {'A':>9} {'B':>9} {'delta':>9}"
            )
            for name, a, b, delta in self.cpi_delta:
                lines.append(
                    f"  {name:<20} {a:>9.4f} {b:>9.4f} {delta:>+9.4f}"
                )
        return "\n".join(lines)


def _point_label(signature: Dict[str, object]) -> str:
    """Compact human identity of one store entry."""
    parts = [str(signature.get("mix_name", "?")),
             str(signature.get("scheme", "?"))]
    replacement = signature.get("replacement")
    if replacement and replacement != "lru":
        parts.append(str(replacement))
    if signature.get("contexts") not in (None, 2):
        parts.append(f"ctx{signature['contexts']}")
    if signature.get("seed"):
        parts.append(f"seed{signature['seed']}")
    return "/".join(parts)


def _aggregate_cpi(
    results_a: List[SimulationResult], results_b: List[SimulationResult]
) -> List[Tuple[str, float, float, float]]:
    """Merge each side's CPI stacks and diff the aggregate CPIs."""
    stacks_a = [r.cpi_stack for r in results_a if r.cpi_stack is not None]
    stacks_b = [r.cpi_stack for r in results_b if r.cpi_stack is not None]
    if not stacks_a or not stacks_b:
        return []
    instructions_a, components_a = merge_components(stacks_a)
    instructions_b, components_b = merge_components(stacks_b)
    if not instructions_a or not instructions_b:
        return []
    names = sorted(
        set(components_a) | set(components_b), key=component_sort_key
    )
    out = []
    for name in names:
        cpi_a = components_a.get(name, 0.0) / instructions_a
        cpi_b = components_b.get(name, 0.0) / instructions_b
        out.append((name, cpi_a, cpi_b, cpi_b - cpi_a))
    return out


def diff_stores(
    dir_a: str,
    dir_b: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> StoreDiff:
    """Match two stores' entries by signature and compare each pair.

    The match key is the canonical signature minus the ``scheme`` field,
    so the dominant use — the same evaluation grid simulated under two
    schemes — pairs up naturally; when both stores hold the same scheme
    the key is effectively the exact signature.  A point whose speedup
    (IPC B over A) falls below ``1 - tolerance`` is flagged as a
    regression.
    """
    from repro.experiments.store import ResultStore

    store_a = ResultStore(dir_a)
    store_b = ResultStore(dir_b)

    def index(store: ResultStore) -> Dict[Tuple, List[Dict[str, object]]]:
        entries: Dict[Tuple, List[Dict[str, object]]] = {}
        for signature in store.signatures():
            key = tuple(sorted(
                (name, value) for name, value in signature.items()
                if name != "scheme"
            ))
            entries.setdefault(key, []).append(signature)
        return entries

    def pick(
        bucket: List[Dict[str, object]], scheme: Optional[object]
    ) -> Optional[Dict[str, object]]:
        """One signature out of a key bucket: exact scheme match when
        the bucket holds several (a multi-scheme store), else the only
        entry."""
        if len(bucket) == 1:
            return bucket[0]
        for signature in bucket:
            if signature.get("scheme") == scheme:
                return signature
        return None

    index_a = index(store_a)
    index_b = index(store_b)
    total_a = sum(len(bucket) for bucket in index_a.values())
    total_b = sum(len(bucket) for bucket in index_b.values())
    points: List[Tuple[str, float, float, float]] = []
    regressions: List[str] = []
    results_a: List[SimulationResult] = []
    results_b: List[SimulationResult] = []
    matched = 0
    for key in sorted(set(index_a) & set(index_b)):
        bucket_a, bucket_b = index_a[key], index_b[key]
        for signature_b in bucket_b:
            signature_a = pick(bucket_a, signature_b.get("scheme"))
            if signature_a is None:
                continue
            matched += 1
            result_a = store_a.load(signature_a)
            result_b = store_b.load(signature_b)
            if result_a is None or result_b is None:
                continue
            results_a.append(result_a)
            results_b.append(result_b)
            label = _point_label(signature_b)
            speedup = result_b.speedup_over(result_a)
            points.append((label, result_a.ipc, result_b.ipc, speedup))
            if speedup < 1.0 - tolerance:
                regressions.append(label)
    return StoreDiff(
        label_a=f"{dir_a} ({total_a} entries)",
        label_b=f"{dir_b} ({total_b} entries)",
        points=points,
        only_in_a=total_a - matched,
        only_in_b=total_b - matched,
        regressions=regressions,
        cpi_delta=_aggregate_cpi(results_a, results_b),
    )


def diff_paths(
    path_a: str,
    path_b: str,
    tolerance: float = DEFAULT_TOLERANCE,
):
    """Dispatch on input shape: two directories → store diff, two files
    → run diff.  Mixing a file and a directory is an error."""
    a_is_dir = os.path.isdir(path_a)
    b_is_dir = os.path.isdir(path_b)
    if a_is_dir != b_is_dir:
        raise DiffError(
            "cannot diff a result file against a store directory "
            f"({path_a!r} vs {path_b!r})"
        )
    if a_is_dir:
        return diff_stores(path_a, path_b, tolerance=tolerance)
    return diff_results(
        load_result_file(path_a),
        load_result_file(path_b),
        tolerance=tolerance,
        label_a=path_a,
        label_b=path_b,
    )
