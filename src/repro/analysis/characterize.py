"""Workload characterization without simulation.

The paper motivates its workload choices by their memory behaviour
(Section 4.1: "applications which do not spend a considerable amount of
time in memory are not meaningful").  This module measures exactly those
properties straight from a workload's access stream — footprint, page
sizes, write share, and reuse statistics at line and page granularity —
so a new workload can be placed on the paper's map before burning
simulation time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.mem.address import CACHE_LINE_BITS, PAGE_4K_BITS
from repro.workloads.base import Workload


@dataclass
class WorkloadProfile:
    """Stream statistics over a sampled window of one thread."""

    name: str
    accesses: int
    write_fraction: float
    distinct_lines: int
    distinct_pages_4k: int
    huge_page_fraction: float
    line_reuse_median: float
    page_reuse_median: float

    @property
    def footprint_bytes(self) -> int:
        """Touched bytes at 4 KB-page granularity."""
        return self.distinct_pages_4k << PAGE_4K_BITS

    def summary(self) -> str:
        lines = [
            f"workload          : {self.name}",
            f"accesses sampled  : {self.accesses}",
            f"write fraction    : {self.write_fraction:.2f}",
            f"distinct lines    : {self.distinct_lines}",
            f"distinct 4K pages : {self.distinct_pages_4k} "
            f"({self.footprint_bytes / (1 << 20):.1f} MB touched)",
            f"huge-page share   : {self.huge_page_fraction:.2f}",
            f"median line reuse : {self.line_reuse_median:.0f} accesses",
            f"median page reuse : {self.page_reuse_median:.0f} accesses",
        ]
        return "\n".join(lines)


def _median(values) -> float:
    ordered = sorted(values)
    if not ordered:
        return float("inf")
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[middle])
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _reuse_distances(keys: Iterable[int]) -> list:
    """Per-reuse gap (in accesses) between touches of the same key."""
    last_seen: Dict[int, int] = {}
    gaps = []
    for position, key in enumerate(keys):
        previous = last_seen.get(key)
        if previous is not None:
            gaps.append(position - previous)
        last_seen[key] = position
    return gaps


def characterize(
    workload: Workload,
    accesses: int = 50_000,
    thread_id: int = 0,
    num_threads: int = 8,
    seed: int = 0,
) -> WorkloadProfile:
    """Profile ``accesses`` of one thread's stream."""
    if accesses < 1:
        raise ValueError("need at least one access to characterize")
    stream = workload.thread_stream(thread_id, num_threads, seed)
    window = list(itertools.islice(stream, accesses))
    addresses = [address for address, _ in window]
    writes = sum(1 for _, is_write in window if is_write)
    lines = [address >> CACHE_LINE_BITS for address in addresses]
    pages = [address >> PAGE_4K_BITS for address in addresses]
    huge = sum(
        1 for address in addresses if address < workload.huge_va_limit
    )
    line_gaps = _reuse_distances(lines)
    page_gaps = _reuse_distances(pages)
    return WorkloadProfile(
        name=workload.name,
        accesses=len(window),
        write_fraction=writes / len(window),
        distinct_lines=len(set(lines)),
        distinct_pages_4k=len(set(pages)),
        huge_page_fraction=huge / len(window),
        line_reuse_median=_median(line_gaps),
        page_reuse_median=_median(page_gaps),
    )


def compare(profiles: Iterable[WorkloadProfile]) -> str:
    """Side-by-side table of several profiles (CLI-friendly)."""
    rows: list = list(profiles)
    if not rows:
        return "(no profiles)"
    header = (
        f"{'workload':<14}{'writes':>8}{'pages':>8}{'MB':>7}"
        f"{'huge':>6}{'line-reuse':>11}{'page-reuse':>11}"
    )
    out = [header, "-" * len(header)]
    for profile in rows:
        out.append(
            f"{profile.name:<14}{profile.write_fraction:>8.2f}"
            f"{profile.distinct_pages_4k:>8}"
            f"{profile.footprint_bytes / (1 << 20):>7.1f}"
            f"{profile.huge_page_fraction:>6.2f}"
            f"{profile.line_reuse_median:>11.0f}"
            f"{profile.page_reuse_median:>11.0f}"
        )
    return "\n".join(out)
