"""Cycle accounting: attribute every simulated cycle to a named component.

The paper's argument is about *where cycles go* — translation misses
block the pipeline while data misses overlap via MSHRs (Section 3.2) —
so this module gives every simulated cycle a name.  A
:class:`CycleAccountant` rides inside the :class:`~repro.telemetry.Telemetry`
bundle; the System, walker and TSB/POM paths charge each latency
increment to a component as it is added to the core clock, tagged with
the (core, VM) that paid it.  :meth:`CycleAccountant.build_stack`
packages the ledger as a :class:`CpiStack` on
``SimulationResult.cpi_stack``.

Component taxonomy (see ``docs/observability.md`` for the full table)::

    base               retire bandwidth (instructions x base CPI)
    tlb.l2tlb          unified L2 TLB lookup
    pom.{l2,l3,dram}   POM-TLB set probes/fills, by serving level
    tsb.trap           TSB trap entry/exit software cost
    tsb.{l2,l3,dram}   TSB slot probes, by serving level
    tsb.ntlb           nested-TLB lookups for guest TSB slot addresses
    walk.psc           paging-structure-cache probe
    walk.l{n}          guest/native page-table node read at level n
    walk.nested.l{n}   host (EPT) translation of the level-n guest pointer
    walk.nested.final  host translation of the final guest-physical address
    data.{l2,l3,dram}  raw demand-data miss latency, by serving level
    data.mlp_credit    MSHR overlap credit (negative: stall minus raw)
    shootdown          TLB shootdown IPI handling
    translation.other  residual translation cycles (0 by construction)

**Exactness.**  The invariant wired into :mod:`repro.validate` is that
per-component charges sum *bit-exactly* to ``core.stats.cycles``.  That
is only possible if every increment is exactly representable: all
latencies in the machine are integers except the base-CPI charge and the
MSHR stall, which :func:`quantize_cycles` rounds to a multiple of
``2**-CYCLE_RESOLUTION_BITS`` (1/1024 cycle).  Dyadic increments below
``2**40`` accumulate exactly in doubles regardless of addition order, so
the component ledger and the core clock agree to the last bit even
though they sum in different orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Cycle values are quantized to multiples of 2**-10 = 1/1024 cycle.
CYCLE_RESOLUTION_BITS = 10

#: The quantum itself (exactly representable in binary floating point).
CYCLE_QUANTUM = 1.0 / (1 << CYCLE_RESOLUTION_BITS)

_SCALE = float(1 << CYCLE_RESOLUTION_BITS)


def quantize_cycles(value: float) -> float:
    """Round ``value`` to the nearest 1/1024 cycle (ties to even).

    The result is a dyadic rational, so accumulating any number of
    quantized values in a double is exact (until ~2**43 cycles, far
    beyond any simulated run).
    """
    return round(value * _SCALE) / _SCALE


#: Display order of component groups (the part before the first dot).
_GROUP_ORDER = {
    "base": 0,
    "tlb": 1,
    "pom": 2,
    "tsb": 3,
    "walk": 4,
    "data": 5,
    "shootdown": 6,
    "translation": 7,
}

_SUFFIX_ORDER = {
    "trap": 0,
    "psc": 0,
    "ntlb": 1,
    "l2": 2,
    "l3": 3,
    "dram": 4,
    "mlp_credit": 9,
}


def component_sort_key(name: str) -> Tuple[int, int, str]:
    group, _, rest = name.partition(".")
    suffix = rest.rsplit(".", 1)[-1] if rest else ""
    return (
        _GROUP_ORDER.get(group, len(_GROUP_ORDER)),
        _SUFFIX_ORDER.get(suffix, 5),
        name,
    )


class CycleAccountant:
    """Per-(core, VM) ledger of cycle charges by component.

    The hot-path contract mirrors the rest of the telemetry layer: the
    System keeps a local ``acct`` reference and guards every hook with a
    single ``is None`` check, so disabled runs pay nothing.

    Charging happens in two ways:

    * direct — :meth:`charge` books cycles onto the (core, VM) selected
      by the last :meth:`begin`;
    * contextual — the shared memory datapath (``System._mem_from_l2``)
      calls :meth:`charge_level` with the serving level's latency, and
      whoever issued the reference has set a *context* first: a prefix
      plus a flag saying whether to split by level (``pom.l3``) or charge
      the prefix flat (``walk.l2``).  A ``None`` prefix suppresses the
      charge — that is how off-critical-path traffic (TLB prefetch
      probes) stays out of the ledger.

    ``charged`` is a running total of everything ever booked; callers
    bracket a composite operation with ``mark = acct.charged`` and charge
    the difference to a residual bucket, which keeps the sum invariant
    structural even if a future path forgets a charge site.
    """

    __slots__ = (
        "_stacks",
        "_current",
        "_core_id",
        "_vm_id",
        "_prefix",
        "_split",
        "charged",
        "synced",
    )

    def __init__(self) -> None:
        self._stacks: Dict[Tuple[int, int], Dict[str, float]] = {}
        self._current: Optional[Dict[str, float]] = None
        self._core_id: Optional[int] = None
        self._vm_id: Optional[int] = None
        self._prefix: Optional[str] = None
        self._split = False
        self.charged = 0.0
        #: False after a checkpoint restore whose snapshot predates the
        #: accountant — the ledger no longer matches the core clocks, so
        #: the validator skips the sum check and no stack is exported.
        self.synced = True

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def begin(self, core_id: int, vm_id: int) -> None:
        """Select the (core, VM) that pays for subsequent charges."""
        if core_id != self._core_id or vm_id != self._vm_id:
            key = (core_id, vm_id)
            stack = self._stacks.get(key)
            if stack is None:
                stack = self._stacks[key] = {}
            self._current = stack
            self._core_id = core_id
            self._vm_id = vm_id

    def charge(self, component: str, cycles: float) -> None:
        # try/except beats dict.get on the hot path: after the first touch
        # of a component the key exists, so the common case is a plain
        # subscript with no method call at all.
        current = self._current
        try:
            current[component] += cycles
        except KeyError:
            current[component] = cycles
        self.charged += cycles

    def charge_level(self, suffix: str, cycles: float) -> None:
        """Contextual charge from the shared memory datapath.

        ``suffix`` names the serving level (".l2"/".l3"/".dram"/".ntlb");
        split contexts append it to the prefix, flat contexts fold the
        whole latency into the prefix component, and a ``None`` prefix
        (no context / suppressed) books nothing.  The :meth:`charge` body
        is inlined — this runs several times per simulated access.
        """
        prefix = self._prefix
        if prefix is None:
            return
        component = prefix + suffix if self._split else prefix
        current = self._current
        try:
            current[component] += cycles
        except KeyError:
            current[component] = cycles
        self.charged += cycles

    def context(
        self, prefix: Optional[str], split: bool = False
    ) -> Tuple[Optional[str], bool]:
        """Set the datapath charging context; returns the previous one."""
        previous = (self._prefix, self._split)
        self._prefix = prefix
        self._split = split
        return previous

    def restore(self, saved: Tuple[Optional[str], bool]) -> None:
        self._prefix, self._split = saved

    def charge_to(
        self, core_id: int, vm_id: int, component: str, cycles: float
    ) -> None:
        """Book cycles onto an explicit (core, VM) without switching.

        Used by broadcast costs (TLB shootdowns) that hit cores other
        than the one currently executing.
        """
        stack = self._stacks.setdefault((core_id, vm_id), {})
        stack[component] = stack.get(component, 0.0) + cycles
        self.charged += cycles

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the ledger (warmup boundary / fresh System)."""
        self._stacks = {}
        self._current = None
        self._core_id = None
        self._vm_id = None
        self._prefix = None
        self._split = False
        self.charged = 0.0
        self.synced = True

    def mark_unsynced(self) -> None:
        self.synced = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def core_totals(self) -> Dict[int, float]:
        """Total charged cycles per core (summed over VMs/components)."""
        totals: Dict[int, float] = {}
        for (core_id, _vm_id), stack in self._stacks.items():
            totals[core_id] = totals.get(core_id, 0.0) + sum(stack.values())
        return totals

    def component_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for stack in self._stacks.values():
            for component, cycles in stack.items():
                totals[component] = totals.get(component, 0.0) + cycles
        return totals

    def build_stack(
        self, scheme: str, num_cores: int, instructions: int
    ) -> "CpiStack":
        per_core: List[Dict[str, float]] = [{} for _ in range(num_cores)]
        per_vm: Dict[str, Dict[str, float]] = {}
        for (core_id, vm_id), stack in sorted(self._stacks.items()):
            for component, cycles in stack.items():
                core_stack = per_core[core_id]
                core_stack[component] = core_stack.get(component, 0.0) + cycles
                vm_stack = per_vm.setdefault(str(vm_id), {})
                vm_stack[component] = vm_stack.get(component, 0.0) + cycles
        components = self.component_totals()
        return CpiStack(
            scheme=scheme,
            instructions=instructions,
            total_cycles=sum(
                sum(stack.values()) for stack in per_core
            ),
            components=components,
            per_core=per_core,
            per_vm=per_vm,
        )

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "stacks": {
                f"{core_id}:{vm_id}": dict(stack)
                for (core_id, vm_id), stack in self._stacks.items()
            },
            "charged": self.charged,
        }

    def load_state(self, state: dict) -> None:
        self._stacks = {}
        for key, stack in state["stacks"].items():
            core_id, _, vm_id = key.partition(":")
            self._stacks[(int(core_id), int(vm_id))] = dict(stack)
        self._current = None
        self._core_id = None
        self._vm_id = None
        self._prefix = None
        self._split = False
        self.charged = state["charged"]
        self.synced = True


@dataclass
class CpiStack:
    """A run's cycle ledger, aggregated and per core / per VM.

    ``components`` maps component name to total cycles; dividing by
    ``instructions`` yields the CPI contribution.  ``per_vm`` keys are
    VM ids as strings (JSON round-trip safety).
    """

    scheme: str
    instructions: int
    total_cycles: float
    components: Dict[str, float] = field(default_factory=dict)
    per_core: List[Dict[str, float]] = field(default_factory=list)
    per_vm: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def cpi_total(self) -> float:
        return self.total_cycles / self.instructions if self.instructions else 0.0

    def cpi(self, component: str) -> float:
        if not self.instructions:
            return 0.0
        return self.components.get(component, 0.0) / self.instructions

    def sorted_components(self) -> List[str]:
        return sorted(self.components, key=component_sort_key)

    def group_totals(self) -> Dict[str, float]:
        """Collapse components by their group (prefix before the dot)."""
        groups: Dict[str, float] = {}
        for component, cycles in self.components.items():
            group = component.partition(".")[0]
            groups[group] = groups.get(group, 0.0) + cycles
        return groups

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """(component, cycles, cpi, share-of-total) in display order."""
        out = []
        for component in self.sorted_components():
            cycles = self.components[component]
            share = cycles / self.total_cycles if self.total_cycles else 0.0
            out.append((component, cycles, self.cpi(component), share))
        return out

    def waterfall(self, width: int = 36) -> str:
        """ASCII CPI waterfall: one bar per component, scaled to the max."""
        rows = self.rows()
        peak = max((abs(cpi) for _, _, cpi, _ in rows), default=0.0)
        lines = [
            f"CPI stack [{self.scheme}]  total CPI {self.cpi_total:.4f}  "
            f"({self.total_cycles:.0f} cycles / {self.instructions} instructions)"
        ]
        lines.append(
            f"  {'component':<20} {'cycles':>14} {'CPI':>9} {'share':>7}"
        )
        for component, cycles, cpi, share in rows:
            bar_len = int(round(abs(cpi) / peak * width)) if peak else 0
            bar = ("-" if cpi < 0 else "#") * bar_len
            lines.append(
                f"  {component:<20} {cycles:>14.2f} {cpi:>9.4f} "
                f"{share:>6.1%} {bar}"
            )
        lines.append(
            f"  {'total':<20} {self.total_cycles:>14.2f} "
            f"{self.cpi_total:>9.4f} {1.0:>6.1%}"
        )
        return "\n".join(lines)

    def delta(self, other: "CpiStack") -> List[Tuple[str, float, float, float]]:
        """Per-component CPI delta rows: (name, self_cpi, other_cpi, diff).

        ``other - self``: positive diff means ``other`` spends more CPI
        on that component.
        """
        names = sorted(
            set(self.components) | set(other.components), key=component_sort_key
        )
        out = []
        for name in names:
            a = self.cpi(name)
            b = other.cpi(name)
            out.append((name, a, b, b - a))
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "instructions": self.instructions,
            "total_cycles": self.total_cycles,
            "components": dict(self.components),
            "per_core": [dict(stack) for stack in self.per_core],
            "per_vm": {
                vm_id: dict(stack) for vm_id, stack in self.per_vm.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CpiStack":
        return cls(
            scheme=data["scheme"],
            instructions=int(data["instructions"]),
            total_cycles=float(data["total_cycles"]),
            components={
                str(k): float(v) for k, v in data.get("components", {}).items()
            },
            per_core=[
                {str(k): float(v) for k, v in stack.items()}
                for stack in data.get("per_core", [])
            ],
            per_vm={
                str(vm_id): {str(k): float(v) for k, v in stack.items()}
                for vm_id, stack in data.get("per_vm", {}).items()
            },
        )


def merge_components(stacks: Iterable[CpiStack]) -> Tuple[int, Dict[str, float]]:
    """Sum instructions and per-component cycles over several stacks.

    Used by store-level diffs to aggregate one CPI stack per scheme from
    many experiment points.
    """
    instructions = 0
    components: Dict[str, float] = {}
    for stack in stacks:
        instructions += stack.instructions
        for component, cycles in stack.components.items():
            components[component] = components.get(component, 0.0) + cycles
    return instructions, components
