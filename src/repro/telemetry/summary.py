"""Trace summarization: turn a JSONL event trace into run statistics.

Backs the ``repro stats`` CLI command.  Works from the portable
:class:`~repro.telemetry.events.TraceEvent` list, so it can digest a
trace written by any session (or synthesized by tests).
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import (
    EVENT_PARTITION,
    EVENT_POM_LOOKUP,
    EVENT_SHOOTDOWN,
    EVENT_SWITCH,
    EVENT_TLB_MISS,
    EVENT_WALK,
    HOST_EVENT_PREFIX,
    SYSTEM_CORE,
    TraceEvent,
)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


@dataclass
class TraceSummary:
    """Aggregates computed by :func:`summarize_events`."""

    total_events: int = 0
    counts_by_name: Dict[str, int] = field(default_factory=dict)
    cores: List[int] = field(default_factory=list)
    cycle_span: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    walk_count: int = 0
    walk_mean_cycles: float = 0.0
    walk_p50_cycles: float = 0.0
    walk_p95_cycles: float = 0.0
    walk_max_cycles: float = 0.0
    pom_lookups: int = 0
    pom_hits: int = 0
    tlb_misses: int = 0
    context_switches: int = 0
    shootdowns: int = 0
    partition_decisions: int = 0
    final_tlb_fraction: Dict[str, float] = field(default_factory=dict)
    #: ``host.*`` profiler spans embedded in the trace (wall-clock
    #: events; excluded from the simulated-cycle statistics above).
    host_spans: int = 0

    @property
    def pom_hit_rate(self) -> float:
        return self.pom_hits / self.pom_lookups if self.pom_lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_events": self.total_events,
            "counts_by_name": dict(self.counts_by_name),
            "cores": list(self.cores),
            "cycle_span": {
                str(core): list(span) for core, span in self.cycle_span.items()
            },
            "walks": {
                "count": self.walk_count,
                "mean_cycles": self.walk_mean_cycles,
                "p50_cycles": self.walk_p50_cycles,
                "p95_cycles": self.walk_p95_cycles,
                "max_cycles": self.walk_max_cycles,
            },
            "pom": {
                "lookups": self.pom_lookups,
                "hits": self.pom_hits,
                "hit_rate": self.pom_hit_rate,
            },
            "tlb_misses": self.tlb_misses,
            "context_switches": self.context_switches,
            "shootdowns": self.shootdowns,
            "partition": {
                "decisions": self.partition_decisions,
                "final_tlb_fraction": dict(self.final_tlb_fraction),
            },
            "host_spans": self.host_spans,
        }

    def rows(self) -> List[Tuple[str, object]]:
        """Flat (metric, value) pairs for table/CSV/markdown rendering."""
        out: List[Tuple[str, object]] = [("events", self.total_events)]
        for name in sorted(self.counts_by_name):
            out.append((f"events.{name}", self.counts_by_name[name]))
        named_cores = [core for core in self.cores if core != SYSTEM_CORE]
        if named_cores:
            out.append(("cores", len(named_cores)))
        if self.walk_count:
            out.extend([
                ("walks", self.walk_count),
                ("walk_mean_cycles", round(self.walk_mean_cycles, 3)),
                ("walk_p50_cycles", self.walk_p50_cycles),
                ("walk_p95_cycles", self.walk_p95_cycles),
                ("walk_max_cycles", self.walk_max_cycles),
            ])
        if self.pom_lookups:
            out.extend([
                ("pom_lookups", self.pom_lookups),
                ("pom_hit_rate", round(self.pom_hit_rate, 4)),
            ])
        out.append(("l2_tlb_misses", self.tlb_misses))
        out.append(("context_switches", self.context_switches))
        if self.shootdowns:
            out.append(("shootdowns", self.shootdowns))
        if self.partition_decisions:
            out.append(("partition_decisions", self.partition_decisions))
            for label in sorted(self.final_tlb_fraction):
                out.append(
                    (
                        f"final_tlb_fraction.{label}",
                        round(self.final_tlb_fraction[label], 4),
                    )
                )
        if self.host_spans:
            out.append(("host_spans", self.host_spans))
        return out

    def format(self) -> str:
        lines = [f"events            : {self.total_events}"]
        for name in sorted(self.counts_by_name):
            lines.append(f"  {name:<16}: {self.counts_by_name[name]}")
        named_cores = [core for core in self.cores if core != SYSTEM_CORE]
        if named_cores:
            lines.append(f"cores             : {len(named_cores)}")
        if self.walk_count:
            lines.append(
                f"page walks        : {self.walk_count} "
                f"(mean {self.walk_mean_cycles:.0f}, p50 "
                f"{self.walk_p50_cycles:.0f}, p95 {self.walk_p95_cycles:.0f}, "
                f"max {self.walk_max_cycles:.0f} cycles)"
            )
        if self.pom_lookups:
            lines.append(
                f"POM lookups       : {self.pom_lookups} "
                f"(hit rate {self.pom_hit_rate:.1%})"
            )
        lines.append(f"L2 TLB misses     : {self.tlb_misses}")
        lines.append(f"context switches  : {self.context_switches}")
        if self.shootdowns:
            lines.append(f"shootdowns        : {self.shootdowns}")
        if self.partition_decisions:
            lines.append(f"partition moves   : {self.partition_decisions}")
            for label in sorted(self.final_tlb_fraction):
                lines.append(
                    f"  {label:<16}: final TLB share "
                    f"{self.final_tlb_fraction[label]:.1%}"
                )
        if self.host_spans:
            lines.append(f"host spans        : {self.host_spans}")
        return "\n".join(lines)


def summarize_events(events: List[TraceEvent]) -> TraceSummary:
    """Digest a trace into a :class:`TraceSummary`."""
    summary = TraceSummary(total_events=len(events))
    summary.counts_by_name = dict(_Counter(event.name for event in events))
    walk_durations: List[float] = []
    last_partition: Dict[str, float] = {}
    span: Dict[int, Tuple[float, float]] = {}
    for event in events:
        if event.name.startswith(HOST_EVENT_PREFIX):
            # Wall-clock profiler spans: count them, but keep their
            # microsecond timestamps out of the cycle statistics.
            summary.host_spans += 1
            continue
        start = event.cycles
        end = event.cycles + event.duration
        low, high = span.get(event.core, (start, end))
        span[event.core] = (min(low, start), max(high, end))
        if event.name == EVENT_WALK:
            walk_durations.append(event.duration)
        elif event.name == EVENT_POM_LOOKUP:
            summary.pom_lookups += 1
            if event.args.get("hit"):
                summary.pom_hits += 1
        elif event.name == EVENT_TLB_MISS:
            summary.tlb_misses += 1
        elif event.name == EVENT_SWITCH:
            summary.context_switches += 1
        elif event.name == EVENT_SHOOTDOWN:
            summary.shootdowns += 1
        elif event.name == EVENT_PARTITION:
            summary.partition_decisions += 1
            label = str(event.args.get("label", "cache"))
            fraction: Optional[float] = event.args.get("tlb_fraction")
            if fraction is not None:
                last_partition[label] = float(fraction)
    summary.cores = sorted(span)
    summary.cycle_span = span
    summary.final_tlb_fraction = last_partition
    if walk_durations:
        walk_durations.sort()
        summary.walk_count = len(walk_durations)
        summary.walk_mean_cycles = sum(walk_durations) / len(walk_durations)
        summary.walk_p50_cycles = _percentile(walk_durations, 0.50)
        summary.walk_p95_cycles = _percentile(walk_durations, 0.95)
        summary.walk_max_cycles = walk_durations[-1]
    return summary
