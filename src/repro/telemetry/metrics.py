"""Hierarchical metrics registry: counters, gauges and log-scale histograms.

Components register named instruments instead of growing ad-hoc ivars:

* :class:`Counter` — a monotonically increasing count, incremented on
  the hot path (one attribute add);
* :class:`Gauge` — a point-in-time value, either set explicitly or
  backed by a zero-argument callback evaluated at export time (the
  preferred form: existing component stats become metrics with no
  hot-path cost at all);
* :class:`Histogram` — a log2-bucketed distribution for latency-style
  values spanning orders of magnitude (walk latency, POM hit latency).

Names are dotted paths (``core0.walker.latency_cycles``); ``to_dict``
nests them into a hierarchy for the exported JSON.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Point-in-time value; callback-backed gauges read at export time."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        return self.fn() if self.fn is not None else self._value

    def reset(self) -> None:
        if self.fn is None:
            self._value = 0.0

    def snapshot(self) -> float:
        return float(self.value)


class Histogram:
    """Log2-bucketed distribution.

    Bucket ``i`` counts samples with ``2**(i-1) < value <= 2**i``
    (bucket 0 holds values <= 1, including non-positive ones).  This
    gives ~1-bit resolution over any range at a fixed, tiny footprint —
    right for latencies spanning an L2 hit (12 cycles) to a cold nested
    walk (>1000 cycles).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = max(0, (int(value) - 1).bit_length()) if value > 0 else 0
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded samples; 0.0 for an empty histogram."""
        if not self.count:
            return 0.0
        return self.total / self.count

    def buckets(self) -> Dict[str, int]:
        """Bucket counts keyed by inclusive upper bound (``"le_2^i"``)."""
        return {
            f"le_{1 << index}": self._buckets[index]
            for index in sorted(self._buckets)
        }

    def percentile(self, fraction: float) -> float:
        """Approximate percentile: the upper bound of the covering bucket.

        An empty histogram returns 0.0 for every fraction (including the
        extremes) rather than dividing by or indexing into nothing.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0.0
        target = fraction * self.count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                return float(1 << index)
        return float(self.max if self.max is not None else 0.0)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._buckets.clear()

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": self.buckets(),
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Re-registering a name returns the existing instrument (so a reused
    component re-attaches cleanly); registering it as a *different*
    instrument type, or under a name that collides with an existing
    group prefix, raises.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory, kind):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        for other in self._metrics:
            if other.startswith(name + ".") or name.startswith(other + "."):
                raise ValueError(
                    f"metric name {name!r} collides with group/leaf {other!r}"
                )
        metric = factory(name)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(name, lambda n: Gauge(n, fn), Gauge)
        if fn is not None and gauge.fn is None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram, Histogram)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def reset(self) -> None:
        """Zero counters/histograms/set-gauges (callback gauges are live)."""
        for metric in self._metrics.values():
            metric.reset()

    def to_dict(self) -> Dict[str, object]:
        """Snapshot every instrument into a nested dict by dotted name."""
        tree: Dict[str, object] = {}
        for name in sorted(self._metrics):
            parts = name.split(".")
            node = tree
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = self._metrics[name].snapshot()
        return tree

    def write_json(self, path: str, extra: Optional[Dict[str, object]] = None) -> None:
        document = self.to_dict()
        if extra:
            document.update(extra)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
