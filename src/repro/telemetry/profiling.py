"""Host-side profiling: where does *wall-clock* time go during a run?

The simulator's own cycle counters say nothing about which Python code
path is slow.  :class:`HostProfiler` hands out lightweight context-
manager scopes (``with profiler.scope("walker"): ...``) that accumulate
``time.perf_counter`` durations and call counts per component.  Scopes
nest; the accounted time is *inclusive* (a ``walker`` scope includes the
``cache`` and ``dram`` scopes it triggers), which matches how the
simulator composes — the report orders components by share of the
deepest-common ancestor, so inclusive totals read naturally.

With ``record_spans=True`` the profiler additionally keeps the most
recent individual scope entries as (name, start, duration) spans —
``repro run --profile --trace-out`` exports them into the Chrome trace
as a "host" track so one chrome://tracing view shows simulator events
and the host code paths that produced them side by side.

:class:`ProgressUpdate` is the payload of the engine's live progress
callback (``repro run --progress``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Default cap on retained spans (newest kept); aggregation is unlimited.
DEFAULT_SPAN_CAPACITY = 20_000


class _Scope:
    """One timed region; created per entry, so scopes are re-entrant."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "HostProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Scope":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        end = time.perf_counter()
        self._profiler._record(self._name, end - self._start, self._start)


class HostProfiler:
    """Accumulates wall-clock seconds and call counts per named scope."""

    def __init__(
        self,
        record_spans: bool = False,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
    ):
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._spans = deque(maxlen=span_capacity) if record_spans else None
        self._span_count = 0
        self._epoch = time.perf_counter()

    def scope(self, name: str) -> _Scope:
        return _Scope(self, name)

    def _record(self, name: str, elapsed: float, start: float = 0.0) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
        self._calls[name] = self._calls.get(name, 0) + 1
        if self._spans is not None:
            self._spans.append((name, start - self._epoch, elapsed))
            self._span_count += 1

    @property
    def spans(self) -> List[Tuple[str, float, float]]:
        """Retained (name, start, duration) spans, seconds since reset.

        Empty unless constructed with ``record_spans=True``; only the
        newest ``span_capacity`` entries are kept (aggregated
        seconds/calls always cover everything).
        """
        return list(self._spans) if self._spans is not None else []

    @property
    def spans_dropped(self) -> int:
        """Spans pushed out of the retention window by newer ones."""
        if self._spans is None:
            return 0
        return self._span_count - len(self._spans)

    def add(self, name: str, elapsed: float, calls: int = 1) -> None:
        """Record an externally timed region (no scope object needed)."""
        self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
        self._calls[name] = self._calls.get(name, 0) + calls

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()
        if self._spans is not None:
            self._spans.clear()
        self._span_count = 0
        self._epoch = time.perf_counter()

    def report(self) -> Dict[str, Dict[str, float]]:
        """``{scope: {"seconds": s, "calls": n, "us_per_call": u}}``."""
        return {
            name: {
                "seconds": seconds,
                "calls": self._calls[name],
                "us_per_call": (
                    1e6 * seconds / self._calls[name] if self._calls[name] else 0.0
                ),
            }
            for name, seconds in sorted(
                self._seconds.items(), key=lambda kv: -kv[1]
            )
        }

    def format(self) -> str:
        """Human-readable table, slowest scope first."""
        lines = [f"{'scope':<16} {'seconds':>9} {'calls':>10} {'us/call':>9}"]
        for name, row in self.report().items():
            lines.append(
                f"{name:<16} {row['seconds']:>9.3f} {row['calls']:>10d} "
                f"{row['us_per_call']:>9.1f}"
            )
        return "\n".join(lines)


@dataclass
class ProgressUpdate:
    """One live progress report from the engine."""

    executed: int
    total: int
    elapsed_seconds: float

    @property
    def fraction(self) -> float:
        return self.executed / self.total if self.total else 0.0

    @property
    def accesses_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.executed / self.elapsed_seconds

    @property
    def eta_seconds(self) -> float:
        rate = self.accesses_per_second
        if rate <= 0:
            return 0.0
        return (self.total - self.executed) / rate

    def format(self) -> str:
        return (
            f"{self.executed}/{self.total} ({self.fraction:.0%}) "
            f"{self.accesses_per_second:,.0f} acc/s "
            f"eta {self.eta_seconds:.1f}s"
        )
