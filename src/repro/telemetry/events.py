"""Structured event tracing: a bounded ring buffer of typed sim events.

Every interesting simulator transition — a TLB miss escalating past the
L2 TLB, a page walk, a POM-TLB lookup, a partition-controller decision, a
context switch, a TLB shootdown — can be recorded as a
:class:`TraceEvent` carrying a simulated-cycle timestamp on the issuing
core's clock.  The tracer is a fixed-capacity ring (``collections.deque``
with ``maxlen``): when full, the *oldest* events are dropped so a long
run keeps its most recent window, and the drop count is reported.

Two export formats:

* **JSONL** — one event per line, the stable schema consumed by
  ``repro stats`` (see ``docs/observability.md``);
* **Chrome trace_event JSON** — loadable in ``chrome://tracing`` /
  Perfetto, one track per core plus a "system" track, with page walks
  rendered as duration slices.

Events whose name starts with ``host.`` are *host-side* profiler spans
(see :func:`host_spans_to_events`): their timestamps are wall-clock
microseconds, so the Chrome export routes them to a separate "host"
process track instead of mixing them with simulated-cycle timelines.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

#: Canonical event names (the ``name`` field of every TraceEvent).
EVENT_TLB_MISS = "tlb.miss"
EVENT_WALK = "walk"
EVENT_POM_LOOKUP = "pom.lookup"
EVENT_PARTITION = "partition.decision"
EVENT_SWITCH = "sched.switch"
EVENT_SHOOTDOWN = "tlb.shootdown"
EVENT_CHECKPOINT = "checkpoint.write"
EVENT_RESTORE = "checkpoint.restore"
EVENT_INVARIANT_CHECK = "validate.check"
EVENT_WATCHDOG_TRIP = "watchdog.trip"
EVENT_FAULT = "fault.injected"
EVENT_STORE_SKIP = "store.skip"
EVENT_BUDGET_SOFT = "budget.soft"
EVENT_BUDGET_HARD = "budget.exceeded"

#: Core id used for events not attributable to a single core.
SYSTEM_CORE = -1

#: Name prefix marking host-side (wall-clock) events; the Chrome export
#: gives these their own process track (pid HOST_PID).
HOST_EVENT_PREFIX = "host."

#: Chrome pid for the host track (simulated cores live on pid 0).
HOST_PID = 1

#: Default ring capacity (events kept before the oldest are dropped).
DEFAULT_TRACE_CAPACITY = 1 << 16


@dataclass
class TraceEvent:
    """One simulator event.

    ``cycles`` is the issuing core's cycle counter at emission time (the
    per-core clocks are independent; chrome export puts each core on its
    own track).  ``duration`` > 0 marks a span (e.g. a page walk);
    instantaneous events leave it at 0.
    """

    name: str
    cycles: float
    core: int = SYSTEM_CORE
    duration: float = 0.0
    args: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        record = {"name": self.name, "cycles": self.cycles, "core": self.core}
        if self.duration:
            record["duration"] = self.duration
        if self.args:
            record["args"] = self.args
        return json.dumps(record, separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "TraceEvent":
        return cls(
            name=record["name"],
            cycles=float(record["cycles"]),
            core=int(record.get("core", SYSTEM_CORE)),
            duration=float(record.get("duration", 0.0)),
            args=dict(record.get("args", {})),
        )


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent`.

    Two mechanisms shed events, and each is accounted separately so
    ``emitted == downsampled + dropped_by_ring + len(ring)`` always
    holds:

    * the ring itself — when full, the *oldest* event is pushed out
      (counted by :attr:`dropped` together with downsampling);
    * :attr:`downsample` — when > 1 (set by the budget monitor's soft
      degradation), only every Nth emission enters the ring; the rest
      are counted in :attr:`downsampled` without being stored.

    ``budget.*`` events always bypass downsampling: the events that
    explain *why* the trace thinned out must not themselves be thinned.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity < 1:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.emitted = 0
        self.downsampled = 0
        #: Keep one emission in this many (1 = keep all).  Settable at
        #: any time; the budget monitor raises it under memory/event
        #: pressure and restores it to 1 when pressure clears.
        self.downsample = 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(
        self,
        name: str,
        cycles: float,
        core: int = SYSTEM_CORE,
        duration: float = 0.0,
        **args: object,
    ) -> None:
        self.emitted += 1
        if (
            self.downsample > 1
            and self.emitted % self.downsample
            and not name.startswith("budget.")
        ):
            self.downsampled += 1
            return
        self._events.append(TraceEvent(name, cycles, core, duration, args))

    @property
    def dropped(self) -> int:
        """Events shed instead of buffered (ring overflow + downsampling)."""
        return self.emitted - len(self._events)

    # ------------------------------------------------------------------
    # Checkpoint/restore of the drop accounting
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, int]:
        """The cumulative counters (the buffered events stay host-side)."""
        return {
            "emitted": self.emitted,
            "downsampled": self.downsampled,
        }

    def load_state(self, state: Dict[str, int]) -> None:
        """Restore counters, monotonically.

        Counters never go backwards: restoring an *older* snapshot into
        a tracer that has already counted further keeps the larger
        value, so drop accounting stays a monotone record of loss.
        """
        self.emitted = max(self.emitted, int(state.get("emitted", 0)))
        self.downsampled = max(
            self.downsampled, int(state.get("downsampled", 0))
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def counts_by_name(self) -> Dict[str, int]:
        return dict(_Counter(event.name for event in self._events))

    def clear(self) -> None:
        """Drop all buffered events and reset the emission counter.

        The engine calls this at the end of warmup so the exported trace
        covers only the measured (post-reset) region and timestamps stay
        monotone per core.
        """
        self._events.clear()
        self.emitted = 0
        self.downsampled = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl_lines(self) -> Iterator[str]:
        for event in self._events:
            yield event.to_json()

    def write_jsonl(
        self, path: str, extra: Optional[Iterable[TraceEvent]] = None
    ) -> int:
        """Write one JSON object per line; returns the event count.

        ``extra`` events (e.g. host profiler spans from
        :func:`host_spans_to_events`) are appended after the ring's
        contents without passing through it, so they cannot push
        simulator events out of the retention window.
        """
        count = 0
        with open(path, "w") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line + "\n")
                count += 1
            if extra is not None:
                for event in extra:
                    handle.write(event.to_json() + "\n")
                    count += 1
        return count

    def to_chrome(self) -> Dict[str, object]:
        return chrome_trace(self._events)

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)


def read_events(path: str) -> List[TraceEvent]:
    """Load a JSONL trace written by :meth:`EventTracer.write_jsonl`."""
    events: List[TraceEvent] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: not valid JSON") from exc
            if "name" not in record or "cycles" not in record:
                raise ValueError(
                    f"{path}:{line_number}: missing 'name'/'cycles' field"
                )
            events.append(TraceEvent.from_dict(record))
    return events


def chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Convert events to the Chrome ``trace_event`` JSON object format.

    Each core becomes one thread track (tid = core id); system-wide
    events land on a "system" track.  Span events (``duration`` > 0) map
    to complete ("X") slices, the rest to instant ("i") events.  The
    cycle timestamps are written through as microseconds — absolute wall
    time is meaningless in simulation, so 1 us in the viewer = 1 cycle.

    ``host.*`` events (wall-clock profiler spans) are placed on their own
    "host" process (pid :data:`HOST_PID`), since their microseconds are
    real ones — the one view then shows both timelines, separately
    scaled.
    """
    trace_events: List[Dict[str, object]] = []
    seen_cores = set()
    saw_host = False
    for event in events:
        is_host = event.name.startswith(HOST_EVENT_PREFIX)
        record: Dict[str, object] = {
            "name": (
                event.name[len(HOST_EVENT_PREFIX):] if is_host else event.name
            ),
            "pid": HOST_PID if is_host else 0,
            "tid": 0 if is_host else event.core,
            "ts": event.cycles,
            "cat": "host" if is_host else event.name.split(".")[0],
            "args": event.args,
        }
        if is_host:
            saw_host = True
        else:
            seen_cores.add(event.core)
        if event.duration > 0:
            record["ph"] = "X"
            record["dur"] = event.duration
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": core,
            "args": {
                "name": "system" if core == SYSTEM_CORE else f"core {core}"
            },
        }
        for core in sorted(seen_cores)
    ]
    if saw_host:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": HOST_PID,
                "tid": 0,
                "args": {"name": "host (wall clock)"},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": HOST_PID,
                "tid": 0,
                "args": {"name": "profiler scopes"},
            }
        )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"timestamp_unit": "simulated CPU cycles"},
    }


def write_chrome_trace(events: Iterable[TraceEvent], path: str) -> None:
    """Write a chrome://tracing-loadable JSON file for ``events``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(events), handle)


def host_spans_to_events(spans) -> List[TraceEvent]:
    """Convert profiler (name, start_s, duration_s) spans to trace events.

    Timestamps become wall-clock *microseconds* so they are directly
    Chrome-compatible; the ``host.`` name prefix routes them to the host
    track (see :func:`chrome_trace`) and keeps the summary from mixing
    them into simulated-cycle statistics.
    """
    return [
        TraceEvent(
            name=HOST_EVENT_PREFIX + name,
            cycles=start * 1e6,
            core=SYSTEM_CORE,
            duration=duration * 1e6,
        )
        for name, start, duration in spans
    ]
