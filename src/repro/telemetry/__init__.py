"""Telemetry: event tracing, metrics, host profiling, cycle accounting.

The subsystem has four independent sinks bundled by :class:`Telemetry`:

* an :class:`~repro.telemetry.events.EventTracer` — bounded ring of
  typed, cycle-stamped simulator events (JSONL / chrome://tracing);
* a :class:`~repro.telemetry.metrics.MetricsRegistry` — hierarchical
  counters, gauges and log-scale histograms components register into;
* a :class:`~repro.telemetry.profiling.HostProfiler` — wall-clock
  scopes around the simulator's own code paths;
* a :class:`~repro.telemetry.accounting.CycleAccountant` — per-(core,
  VM) ledger attributing every simulated cycle to a named component
  (surfaced as ``SimulationResult.cpi_stack``).

Design rule: **disabled telemetry costs one ``is None`` check** at each
hook site.  Components hold ``telemetry=None`` by default and guard
every hook with a single ``if``; no sink objects exist unless asked for.

Usage::

    from repro.telemetry import Telemetry

    telemetry = Telemetry.enabled(profile=True)
    result = run_simulation(config, workloads, telemetry=telemetry)
    telemetry.tracer.write_jsonl("run.trace.jsonl")
    telemetry.metrics.write_json("metrics.json")
    print(telemetry.profiler.format())

See ``docs/observability.md`` for the event schema and metric names.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.accounting import (
    CYCLE_QUANTUM,
    CpiStack,
    CycleAccountant,
    quantize_cycles,
)
from repro.telemetry.events import (
    DEFAULT_TRACE_CAPACITY,
    EVENT_BUDGET_HARD,
    EVENT_BUDGET_SOFT,
    EVENT_FAULT,
    EVENT_PARTITION,
    EVENT_POM_LOOKUP,
    EVENT_SHOOTDOWN,
    EVENT_STORE_SKIP,
    EVENT_SWITCH,
    EVENT_TLB_MISS,
    EVENT_WALK,
    HOST_EVENT_PREFIX,
    HOST_PID,
    SYSTEM_CORE,
    EventTracer,
    TraceEvent,
    chrome_trace,
    host_spans_to_events,
    read_events,
    write_chrome_trace,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.profiling import HostProfiler, ProgressUpdate
from repro.telemetry.summary import TraceSummary, summarize_events

__all__ = [
    "CYCLE_QUANTUM",
    "Counter",
    "CpiStack",
    "CycleAccountant",
    "DEFAULT_TRACE_CAPACITY",
    "EVENT_BUDGET_HARD",
    "EVENT_BUDGET_SOFT",
    "EVENT_FAULT",
    "EVENT_PARTITION",
    "EVENT_POM_LOOKUP",
    "EVENT_SHOOTDOWN",
    "EVENT_STORE_SKIP",
    "EVENT_SWITCH",
    "EVENT_TLB_MISS",
    "EVENT_WALK",
    "EventTracer",
    "Gauge",
    "HOST_EVENT_PREFIX",
    "HOST_PID",
    "Histogram",
    "HostProfiler",
    "MetricsRegistry",
    "ProgressUpdate",
    "SYSTEM_CORE",
    "Telemetry",
    "TraceEvent",
    "TraceSummary",
    "chrome_trace",
    "host_spans_to_events",
    "quantize_cycles",
    "read_events",
    "summarize_events",
    "write_chrome_trace",
]


class Telemetry:
    """The sink bundle components are wired with.

    Any of the four sinks may be ``None``; hook sites check the sink
    they need.  Construct directly for fine control or use
    :meth:`enabled` for the common all-on case.
    """

    __slots__ = ("tracer", "metrics", "profiler", "accounting")

    def __init__(
        self,
        tracer: Optional[EventTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[HostProfiler] = None,
        accounting: Optional[CycleAccountant] = None,
    ):
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.accounting = accounting

    @classmethod
    def enabled(
        cls,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = False,
        accounting: bool = False,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    ) -> "Telemetry":
        return cls(
            tracer=EventTracer(trace_capacity) if trace else None,
            metrics=MetricsRegistry() if metrics else None,
            profiler=HostProfiler() if profile else None,
            accounting=CycleAccountant() if accounting else None,
        )

    # ------------------------------------------------------------------
    def emit(
        self,
        name: str,
        cycles: float,
        core: int = SYSTEM_CORE,
        duration: float = 0.0,
        **args: object,
    ) -> None:
        """Emit a trace event if tracing is on (no-op otherwise)."""
        if self.tracer is not None:
            self.tracer.emit(name, cycles, core, duration, **args)

    def reset(self) -> None:
        """Clear all sinks (warmup boundary: see ``System.reset_stats``)."""
        if self.tracer is not None:
            self.tracer.clear()
        if self.metrics is not None:
            self.metrics.reset()
        if self.profiler is not None:
            self.profiler.reset()
        if self.accounting is not None:
            self.accounting.reset()
