"""``repro doctor``: preflight self-check for the experiment machinery.

Before (or after) a long campaign, the doctor verifies that the pieces a
crash-safe run depends on actually work *on this machine and this data*:

* **store integrity** — every ``<sha256>.json`` entry parses, carries the
  current schema version, embeds a signature whose digest matches its
  filename, and round-trips through
  :meth:`~repro.sim.stats.SimulationResult.from_dict`;
* **orphaned temp files** — ``.tmp-*`` files a killed store writer left
  behind, and ``*.tmp`` files from interrupted checkpoint writes
  (including per-point ``<store>/checkpoints/**`` directories);
* **checkpoint round-trip** — a probe document is written and read back
  through the real :func:`~repro.checkpoint.write_checkpoint` /
  :func:`~repro.checkpoint.read_checkpoint` pair, and every existing
  snapshot in the scanned directories must still verify;
* **configuration** — the quarter-scale preset builds for every scheme.

With ``fix=True`` the doctor deletes what it safely can: orphaned temp
files and corrupt store entries (a deleted entry just re-simulates).
Anything else is reported for a human.  The CLI maps an unhealthy report
to :data:`~repro.errors.EXIT_DOCTOR`.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.schemes import Scheme
from repro.errors import ConfigError
from repro.experiments.store import SCHEMA_VERSION, signature_key
from repro.sim.config import small_config
from repro.sim.stats import SimulationResult

#: Glob for temp files the store's atomic writer creates.
_STORE_TMP_GLOB = ".tmp-*"

#: Glob for temp files the checkpoint writer creates.
_CHECKPOINT_TMP_GLOB = "*.tmp"

#: Glob for checkpoint snapshots (regular and stall post-mortems).
_SNAPSHOT_GLOB = "*.ckpt"

#: Default free-space floor for the disk-headroom check (256 MiB):
#: below this, the next campaign is likely to die on ENOSPC.
DEFAULT_MIN_FREE_BYTES = 256 << 20


@dataclass
class CheckResult:
    """One named check: its problems and what ``--fix`` resolved."""

    name: str
    problems: List[str] = field(default_factory=list)
    fixed: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "problems": list(self.problems),
            "fixed": list(self.fixed),
            "notes": list(self.notes),
        }


@dataclass
class DoctorReport:
    """Every check the doctor ran, plus the overall verdict."""

    checks: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def problems(self) -> List[str]:
        return [
            f"{check.name}: {problem}"
            for check in self.checks
            for problem in check.problems
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
        }

    def format(self) -> str:
        lines: List[str] = []
        for check in self.checks:
            status = "ok" if check.ok else "PROBLEM"
            lines.append(f"[{status:>7}] {check.name}")
            for note in check.notes:
                lines.append(f"          {note}")
            for fixed in check.fixed:
                lines.append(f"          fixed: {fixed}")
            for problem in check.problems:
                lines.append(f"          problem: {problem}")
        verdict = "healthy" if self.ok else "UNHEALTHY"
        lines.append(f"doctor: {verdict}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------
def check_store_integrity(store_dir: Path, fix: bool = False) -> CheckResult:
    """Validate every entry of a result store; ``fix`` deletes bad ones."""
    check = CheckResult("store integrity")
    if not store_dir.is_dir():
        check.notes.append(f"{store_dir}: no store directory (nothing to do)")
        return check
    entries = sorted(store_dir.glob("*.json"))
    good = 0
    for path in entries:
        problem = _entry_problem(path)
        if problem is None:
            good += 1
            continue
        if fix:
            try:
                path.unlink()
                check.fixed.append(
                    f"deleted corrupt entry {path.name} ({problem}); "
                    "the point will re-simulate"
                )
                continue
            except OSError as exc:
                problem = f"{problem}; delete failed: {exc}"
        check.problems.append(f"{path.name}: {problem}")
    check.notes.append(f"{good}/{len(entries)} entries verified")
    return check


def _entry_problem(path: Path) -> Optional[str]:
    """Why this store entry is unusable, or ``None`` if it is healthy."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return f"unreadable ({type(exc).__name__}: {exc})"
    if not isinstance(document, dict):
        return "not a JSON object"
    if document.get("schema_version") != SCHEMA_VERSION:
        return (
            f"schema_version {document.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}"
        )
    signature = document.get("signature")
    if not isinstance(signature, dict):
        return "missing signature"
    if signature_key(signature) != path.stem:
        return "signature digest does not match filename"
    try:
        SimulationResult.from_dict(document["result"])
    except (KeyError, TypeError, ValueError) as exc:
        return f"result does not parse ({type(exc).__name__}: {exc})"
    return None


def check_orphaned_temp_files(
    store_dir: Optional[Path],
    checkpoint_dirs: Sequence[Path],
    fix: bool = False,
) -> CheckResult:
    """Find (and with ``fix`` delete) temp files interrupted writers left."""
    check = CheckResult("orphaned temp files")
    orphans: List[Path] = []
    if store_dir is not None and store_dir.is_dir():
        orphans.extend(sorted(store_dir.glob(_STORE_TMP_GLOB)))
        # Per-point worker snapshots live under <store>/checkpoints/.
        nested = store_dir / "checkpoints"
        if nested.is_dir():
            orphans.extend(sorted(nested.rglob(_CHECKPOINT_TMP_GLOB)))
    for directory in checkpoint_dirs:
        if directory.is_dir():
            orphans.extend(sorted(directory.rglob(_CHECKPOINT_TMP_GLOB)))
    if not orphans:
        check.notes.append("no orphaned temp files")
        return check
    for orphan in orphans:
        if fix:
            try:
                orphan.unlink()
                check.fixed.append(f"deleted {orphan}")
                continue
            except OSError as exc:
                check.problems.append(f"{orphan}: delete failed: {exc}")
                continue
        check.problems.append(f"{orphan}: orphaned temp file (use --fix)")
    return check


def check_checkpoint_round_trip(
    checkpoint_dirs: Sequence[Path] = (),
) -> CheckResult:
    """Probe write+read through the real checkpoint code path, then
    verify every existing snapshot in the scanned directories."""
    check = CheckResult("checkpoint round-trip")
    probe = {"doctor": "probe", "values": list(range(16))}
    try:
        with tempfile.TemporaryDirectory(prefix="repro-doctor-") as scratch:
            path = write_checkpoint(
                Path(scratch) / "probe.ckpt", probe, meta={"executed": 0}
            )
            document, _header = read_checkpoint(path)
        if document != probe:
            check.problems.append("probe document did not round-trip")
        else:
            check.notes.append("probe write/read ok")
    except (OSError, CheckpointError) as exc:
        check.problems.append(f"probe failed: {type(exc).__name__}: {exc}")
    scanned = 0
    for directory in checkpoint_dirs:
        if not directory.is_dir():
            continue
        for snapshot in sorted(directory.rglob(_SNAPSHOT_GLOB)):
            scanned += 1
            try:
                read_checkpoint(snapshot)
            except CheckpointError as exc:
                check.problems.append(f"{snapshot}: {exc}")
    if scanned:
        check.notes.append(f"{scanned} existing snapshot(s) scanned")
    return check


def check_disk_headroom(
    store_dir: Optional[Path],
    checkpoint_dirs: Sequence[Path] = (),
    quota_bytes: Optional[int] = None,
    min_free_bytes: int = DEFAULT_MIN_FREE_BYTES,
) -> CheckResult:
    """Report store size, filesystem headroom and quota utilisation.

    A campaign that fills the disk dies with the least useful error in
    the taxonomy's catalogue, so the doctor warns *before*: free bytes on
    the store's filesystem below ``min_free_bytes`` is a problem, and so
    is a configured disk quota that is already ≥ the soft threshold
    (85%) full.  Without a store directory the check reports the current
    working directory's filesystem.
    """
    import shutil

    from repro.budget import DEFAULT_SOFT_FRACTION, directory_bytes

    check = CheckResult("disk headroom")
    probe = store_dir if store_dir is not None else Path(".")
    used = 0
    if store_dir is not None:
        if store_dir.is_dir():
            used = directory_bytes(store_dir)
            check.notes.append(
                f"store {store_dir}: {used / (1 << 20):.1f} MiB "
                "(entries + checkpoints)"
            )
        else:
            check.notes.append(f"{store_dir}: no store directory yet")
            probe = store_dir.parent if store_dir.parent.is_dir() else Path(".")
    for directory in checkpoint_dirs:
        if directory.is_dir() and (
            store_dir is None or store_dir not in directory.parents
        ):
            extra = directory_bytes(directory)
            used += extra
            check.notes.append(
                f"checkpoints {directory}: {extra / (1 << 20):.1f} MiB"
            )
    try:
        usage = shutil.disk_usage(probe)
    except OSError as exc:
        check.problems.append(f"cannot stat filesystem of {probe}: {exc}")
        return check
    check.notes.append(
        f"filesystem: {usage.free / (1 << 30):.2f} GiB free of "
        f"{usage.total / (1 << 30):.2f} GiB"
    )
    if usage.free < min_free_bytes:
        check.problems.append(
            f"only {usage.free / (1 << 20):.0f} MiB free on the store "
            f"filesystem (headroom floor: {min_free_bytes / (1 << 20):.0f} "
            "MiB); free space or the next campaign will hit ENOSPC"
        )
    if quota_bytes is not None:
        fraction = used / quota_bytes if quota_bytes else 1.0
        check.notes.append(
            f"quota: {used / (1 << 20):.1f} of "
            f"{quota_bytes / (1 << 20):.1f} MiB used ({fraction:.0%})"
        )
        if used >= quota_bytes:
            check.problems.append(
                f"store already exceeds the {quota_bytes:,}-byte quota; "
                "a budgeted campaign will stop immediately (exit 7)"
            )
        elif fraction >= DEFAULT_SOFT_FRACTION:
            check.problems.append(
                f"quota {fraction:.0%} full (soft threshold "
                f"{DEFAULT_SOFT_FRACTION:.0%}): the next budgeted "
                "campaign starts degraded; prune the store or raise "
                "--store-quota"
            )
    return check


def check_configuration() -> CheckResult:
    """The quarter-scale preset must build for every scheme."""
    check = CheckResult("configuration")
    for scheme in Scheme:
        try:
            small_config(scheme=scheme)
        except ConfigError as exc:
            check.problems.append(f"small_config({scheme.value}): {exc}")
    if not check.problems:
        check.notes.append(
            f"small_config builds for all {len(list(Scheme))} schemes"
        )
    return check


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_doctor(
    store_dir: Optional[str] = None,
    checkpoint_dirs: Sequence[str] = (),
    fix: bool = False,
    store_quota_bytes: Optional[int] = None,
    min_free_bytes: int = DEFAULT_MIN_FREE_BYTES,
) -> DoctorReport:
    """Run every check; returns the report (never raises on findings)."""
    store_path = Path(store_dir) if store_dir is not None else None
    checkpoint_paths = [Path(directory) for directory in checkpoint_dirs]
    report = DoctorReport()
    if store_path is not None:
        report.checks.append(check_store_integrity(store_path, fix=fix))
    report.checks.append(
        check_orphaned_temp_files(store_path, checkpoint_paths, fix=fix)
    )
    report.checks.append(check_checkpoint_round_trip(checkpoint_paths))
    report.checks.append(
        check_disk_headroom(
            store_path, checkpoint_paths,
            quota_bytes=store_quota_bytes, min_free_bytes=min_free_bytes,
        )
    )
    report.checks.append(check_configuration())
    return report


__all__ = [
    "CheckResult",
    "DEFAULT_MIN_FREE_BYTES",
    "DoctorReport",
    "check_checkpoint_round_trip",
    "check_configuration",
    "check_disk_headroom",
    "check_orphaned_temp_files",
    "check_store_integrity",
    "run_doctor",
]
