"""Shared experiment runner: one cached simulation per evaluation point.

Several of the paper's figures read different statistics off the *same*
runs (Figures 3, 7, 8, 10 and 11 all use the main 10-mix x 4-scheme
grid), so results are memoized on the full run signature.  All
experiments use the quarter-scale preset (``small_config`` +
``make_mix(scale=0.25)``); see DESIGN.md Section 5 for the scaling
argument.

Lookup order for a point is **memory -> disk -> simulate**: an attached
:class:`~repro.experiments.store.ResultStore` (see :func:`set_store`)
makes completed points durable, so a campaign interrupted hours in
replays only what is missing on the next run.

Environment knobs (read lazily, per call):

* ``REPRO_TOTAL_ACCESSES`` — accesses per run (default 240 000);
* ``REPRO_SEED`` — workload seed.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.core.schemes import Scheme
from repro.errors import CampaignError
from repro.experiments.store import ResultStore
from repro.sim.config import SMALL_WORKLOAD_SCALE, SystemConfig, small_config
from repro.sim.engine import run_simulation
from repro.sim.stats import SimulationResult
from repro.telemetry import CycleAccountant, Telemetry
from repro.workloads.mixes import MIX_NAMES, make_mix

#: Fallback run length / seed when the ``REPRO_*`` variables are unset.
#: The environment is consulted on *every* call (not at import), so
#: ``REPRO_TOTAL_ACCESSES``/``REPRO_SEED`` changes — and tests that
#: monkeypatch these module constants — take effect immediately.
DEFAULT_TOTAL_ACCESSES = 240_000
DEFAULT_SEED = 0

#: Workload scale paired with the quarter-scale hardware preset.
WORKLOAD_SCALE = SMALL_WORKLOAD_SCALE

_cache: Dict[Tuple, SimulationResult] = {}

#: Points poisoned by a campaign after exhausting retries: signature key
#: -> error message.  ``run_point`` raises instead of re-simulating them
#: so one bad point degrades its exhibit instead of stalling the report.
_failed: Dict[Tuple, str] = {}

_store: Optional[ResultStore] = None
_consult_store: bool = True


class PointFailedError(CampaignError, RuntimeError):
    """A campaign already failed this point; don't silently re-run it."""


def default_total_accesses() -> int:
    """Per-run access budget: ``REPRO_TOTAL_ACCESSES`` read lazily."""
    env = os.environ.get("REPRO_TOTAL_ACCESSES")
    return int(env) if env is not None else DEFAULT_TOTAL_ACCESSES


def default_seed() -> int:
    """Workload seed: ``REPRO_SEED`` read lazily."""
    env = os.environ.get("REPRO_SEED")
    return int(env) if env is not None else DEFAULT_SEED


# ----------------------------------------------------------------------
# Run signatures
# ----------------------------------------------------------------------
def point_signature(
    mix_name: str,
    scheme: Scheme,
    contexts: int = 2,
    virtualized: bool = True,
    switch_interval_ms: float = 10.0,
    epoch_accesses: Optional[int] = None,
    replacement: str = "lru",
    estimate_positions: bool = False,
    static_data_ways: Optional[int] = None,
    partition_l2_only: bool = False,
    partition_l3_only: bool = False,
    page_table_levels: int = 4,
    tlb_prefetch: bool = False,
    total_accesses: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Canonical, JSON-able signature of one evaluation point.

    Mirrors :func:`run_point`'s parameters with every default resolved
    (including the lazily-read environment knobs), the scheme normalized
    to its string value, and no host-dependent fields — the identity the
    memory cache, the on-disk store and the worker pool all share.
    """
    return {
        "mix_name": mix_name,
        "scheme": scheme.value if isinstance(scheme, Scheme) else str(scheme),
        "contexts": contexts,
        "virtualized": virtualized,
        "switch_interval_ms": switch_interval_ms,
        "epoch_accesses": epoch_accesses,
        "replacement": replacement,
        "estimate_positions": estimate_positions,
        "static_data_ways": static_data_ways,
        "partition_l2_only": partition_l2_only,
        "partition_l3_only": partition_l3_only,
        "page_table_levels": page_table_levels,
        "tlb_prefetch": tlb_prefetch,
        "total_accesses": (
            total_accesses if total_accesses is not None
            else default_total_accesses()
        ),
        "seed": seed if seed is not None else default_seed(),
    }


def point_from_signature(signature: Dict[str, object]) -> Dict[str, object]:
    """Inverse of :func:`point_signature`: kwargs for :func:`run_point`."""
    kwargs = dict(signature)
    kwargs["scheme"] = Scheme(kwargs["scheme"])
    return kwargs


def _cache_key(signature: Dict[str, object]) -> Tuple:
    return tuple(sorted(signature.items(), key=lambda item: item[0]))


# ----------------------------------------------------------------------
# Persistent store attachment
# ----------------------------------------------------------------------
def set_store(store: Optional[ResultStore], consult: bool = True) -> None:
    """Attach (or detach, with ``None``) the persistent result store.

    Completed points are always written through.  With ``consult=False``
    existing entries are ignored (and overwritten) instead of read back
    — a deliberately *fresh* campaign that still persists as it goes;
    ``consult=True`` is the resume behavior.
    """
    global _store, _consult_store
    _store = store
    _consult_store = consult


def get_store() -> Optional[ResultStore]:
    return _store


# ----------------------------------------------------------------------
# Point execution
# ----------------------------------------------------------------------
def run_point(
    mix_name: str,
    scheme: Scheme,
    contexts: int = 2,
    virtualized: bool = True,
    switch_interval_ms: float = 10.0,
    epoch_accesses: Optional[int] = None,
    replacement: str = "lru",
    estimate_positions: bool = False,
    static_data_ways: Optional[int] = None,
    partition_l2_only: bool = False,
    partition_l3_only: bool = False,
    page_table_levels: int = 4,
    tlb_prefetch: bool = False,
    total_accesses: Optional[int] = None,
    seed: Optional[int] = None,
    *,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    restore: Optional[str] = None,
) -> SimulationResult:
    """Run one evaluation point, consulting memory, then disk, then
    simulating; a freshly simulated result is written through to the
    attached store (when one is set) before it is returned.

    The keyword-only checkpoint knobs are run-control, not identity: they
    are deliberately **absent** from :func:`point_signature`, since a
    resumed run is bit-identical to an uninterrupted one (the engine's
    determinism oracle) and must share its cache/store entry.
    """
    signature = point_signature(
        mix_name, scheme, contexts, virtualized, switch_interval_ms,
        epoch_accesses, replacement, estimate_positions, static_data_ways,
        partition_l2_only, partition_l3_only, page_table_levels,
        tlb_prefetch, total_accesses, seed,
    )
    key = _cache_key(signature)
    cached = _cache.get(key)
    if cached is not None:
        return cached
    if key in _failed:
        raise PointFailedError(
            f"point {mix_name}/{signature['scheme']} already failed in this "
            f"campaign: {_failed[key]}"
        )
    if _store is not None and _consult_store:
        stored = _store.load(signature)
        if stored is not None:
            _cache[key] = stored
            return stored
    total = signature["total_accesses"]
    run_seed = signature["seed"]
    overrides = dict(
        scheme=scheme,
        contexts_per_core=contexts,
        virtualized=virtualized,
        switch_interval_ms=switch_interval_ms,
        replacement=replacement,
        estimate_positions=estimate_positions,
        static_data_ways=static_data_ways,
        page_table_levels=page_table_levels,
        tlb_prefetch=tlb_prefetch,
    )
    if epoch_accesses is not None:
        overrides["epoch_accesses"] = epoch_accesses
    config = small_config(**overrides)
    workloads = make_mix(mix_name, contexts=contexts, scale=WORKLOAD_SCALE)
    checkpoint_kwargs = dict(
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        restore=restore,
        # Every experiment point carries a cycle ledger, so stored
        # results can be differenced per CPI component (``repro diff``).
        telemetry=Telemetry(accounting=CycleAccountant()),
    )
    if partition_l2_only or partition_l3_only:
        result = _run_partial_partition(
            config, workloads, total, run_seed, mix_name,
            partition_l2_only, partition_l3_only, **checkpoint_kwargs,
        )
    else:
        result = run_simulation(
            config, workloads, total_accesses=total, seed=run_seed,
            workload_name=mix_name, **checkpoint_kwargs,
        )
    _cache[key] = result
    if _store is not None:
        try:
            _store.save(signature, result)
        except OSError as exc:  # persistence is best-effort
            import warnings

            warnings.warn(
                f"could not persist result for {mix_name}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return result


def _run_partial_partition(
    config: SystemConfig,
    workloads,
    total: int,
    seed: int,
    mix_name: str,
    l2_only: bool,
    l3_only: bool,
    **checkpoint_kwargs,
) -> SimulationResult:
    """Ablation: disable partitioning at one cache level (DESIGN.md §7)."""

    def disable_one_level(system) -> None:
        if l2_only:
            system.l3_controller = None
            system.l3.set_partition(None)
        if l3_only:
            for core in system.cores:
                core.l2_controller = None
                core.l2.set_partition(None)

    return run_simulation(
        config, workloads, total_accesses=total, seed=seed,
        workload_name=mix_name, system_setup=disable_one_level,
        **checkpoint_kwargs,
    )


# ----------------------------------------------------------------------
# Cache / failure bookkeeping (used by the campaign pool)
# ----------------------------------------------------------------------
def seed_cache(signature: Dict[str, object], result: SimulationResult) -> None:
    """Insert an externally produced result (worker process, store scan)."""
    _cache[_cache_key(signature)] = result


def is_cached(signature: Dict[str, object]) -> bool:
    return _cache_key(signature) in _cache


def mark_failed(signature: Dict[str, object], error: str) -> None:
    """Poison a point so later ``run_point`` calls raise immediately."""
    _failed[_cache_key(signature)] = error


def failed_count() -> int:
    return len(_failed)


def clear_cache() -> None:
    _cache.clear()
    _failed.clear()


def cache_size() -> int:
    return len(_cache)


def all_mixes() -> list:
    return list(MIX_NAMES)
