"""Shared experiment runner: one cached simulation per evaluation point.

Several of the paper's figures read different statistics off the *same*
runs (Figures 3, 7, 8, 10 and 11 all use the main 10-mix x 4-scheme
grid), so results are memoized on the full run signature.  All
experiments use the quarter-scale preset (``small_config`` +
``make_mix(scale=0.25)``); see DESIGN.md Section 5 for the scaling
argument.

Environment knobs (read once at import):

* ``REPRO_TOTAL_ACCESSES`` — accesses per run (default 240 000);
* ``REPRO_SEED`` — workload seed.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.core.schemes import Scheme
from repro.sim.config import SMALL_WORKLOAD_SCALE, SystemConfig, small_config
from repro.sim.engine import run_simulation
from repro.sim.stats import SimulationResult
from repro.workloads.mixes import MIX_NAMES, make_mix

DEFAULT_TOTAL_ACCESSES = int(os.environ.get("REPRO_TOTAL_ACCESSES", 240_000))
DEFAULT_SEED = int(os.environ.get("REPRO_SEED", 0))

#: Workload scale paired with the quarter-scale hardware preset.
WORKLOAD_SCALE = SMALL_WORKLOAD_SCALE

_cache: Dict[Tuple, SimulationResult] = {}


def run_point(
    mix_name: str,
    scheme: Scheme,
    contexts: int = 2,
    virtualized: bool = True,
    switch_interval_ms: float = 10.0,
    epoch_accesses: Optional[int] = None,
    replacement: str = "lru",
    estimate_positions: bool = False,
    static_data_ways: Optional[int] = None,
    partition_l2_only: bool = False,
    partition_l3_only: bool = False,
    page_table_levels: int = 4,
    tlb_prefetch: bool = False,
    total_accesses: Optional[int] = None,
    seed: Optional[int] = None,
) -> SimulationResult:
    """Run (or fetch from cache) one evaluation point."""
    total = total_accesses if total_accesses is not None else DEFAULT_TOTAL_ACCESSES
    seed = seed if seed is not None else DEFAULT_SEED
    key = (
        mix_name, scheme, contexts, virtualized, switch_interval_ms,
        epoch_accesses, replacement, estimate_positions, static_data_ways,
        partition_l2_only, partition_l3_only, page_table_levels,
        tlb_prefetch, total, seed,
    )
    cached = _cache.get(key)
    if cached is not None:
        return cached
    overrides = dict(
        scheme=scheme,
        contexts_per_core=contexts,
        virtualized=virtualized,
        switch_interval_ms=switch_interval_ms,
        replacement=replacement,
        estimate_positions=estimate_positions,
        static_data_ways=static_data_ways,
        page_table_levels=page_table_levels,
        tlb_prefetch=tlb_prefetch,
    )
    if epoch_accesses is not None:
        overrides["epoch_accesses"] = epoch_accesses
    config = small_config(**overrides)
    workloads = make_mix(mix_name, contexts=contexts, scale=WORKLOAD_SCALE)
    if partition_l2_only or partition_l3_only:
        result = _run_partial_partition(
            config, workloads, total, seed, mix_name,
            partition_l2_only, partition_l3_only,
        )
    else:
        result = run_simulation(
            config, workloads, total_accesses=total, seed=seed,
            workload_name=mix_name,
        )
    _cache[key] = result
    return result


def _run_partial_partition(
    config: SystemConfig,
    workloads,
    total: int,
    seed: int,
    mix_name: str,
    l2_only: bool,
    l3_only: bool,
) -> SimulationResult:
    """Ablation: disable partitioning at one cache level (DESIGN.md §7)."""

    def disable_one_level(system) -> None:
        if l2_only:
            system.l3_controller = None
            system.l3.set_partition(None)
        if l3_only:
            for core in system.cores:
                core.l2_controller = None
                core.l2.set_partition(None)

    return run_simulation(
        config, workloads, total_accesses=total, seed=seed,
        workload_name=mix_name, system_setup=disable_one_level,
    )


def clear_cache() -> None:
    _cache.clear()


def cache_size() -> int:
    return len(_cache)


def all_mixes() -> list:
    return list(MIX_NAMES)
