"""``repro chaos``: run a campaign under a fault plan, assert the end state.

The recovery machinery (write-through store, retrying pool, checksummed
checkpoints) is only trustworthy if it provably converges *under
failure* to the same result it produces without failure.  This module
makes that a single assertable run:

1. **baseline** — the selected evaluation points run fault-free into
   ``<out>/baseline-store``;
2. **chaos round** — the runner caches are cleared and the same points
   run again into ``<out>/chaos-store`` with the :class:`FaultPlan`
   armed (workers inherit it via fork); every injection lands in the
   durable fault log ``<out>/faults.jsonl``;
3. **recovery rounds** — the plan is disarmed and the campaign re-runs
   with ``resume`` semantics (caches cleared each round, so corrupt
   disk entries cannot hide behind memory) until it converges or the
   round budget runs out.

End-state assertions (any failure ⇒ :class:`~repro.errors.ChaosError`,
exit code 4):

* the plan actually fired (the fault log is non-empty);
* the final round's campaign summary reports no failed points;
* the chaos store is **byte-identical** to the baseline store — same
  entry set, same bytes (stored payloads are host-independent);
* when whole exhibits were selected, the report rendered from the chaos
  store matches the baseline report text exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro import faults
from repro.errors import ChaosError, ReproError
from repro.experiments import report as report_module
from repro.experiments import runner
from repro.experiments.pool import run_campaign
from repro.experiments.store import ResultStore
from repro.telemetry import EventTracer, MetricsRegistry, Telemetry

Progress = Callable[[str], None]

DEFAULT_ROUNDS = 3


@dataclass
class ChaosRound:
    """What one campaign round did."""

    number: int
    armed: bool
    summary: Optional[str] = None
    error: Optional[str] = None
    failures: int = 0
    converged: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "round": self.number,
            "armed": self.armed,
            "summary": self.summary,
            "error": self.error,
            "failures": self.failures,
            "converged": self.converged,
        }


@dataclass
class ChaosReport:
    """End state of one chaos campaign, with its assertion verdicts."""

    plan_name: str
    rounds: List[ChaosRound] = field(default_factory=list)
    injected: int = 0            # cross-process, from the fault log
    parent_injected: int = 0     # parent-side injector records
    store_entries: int = 0
    problems: List[str] = field(default_factory=list)
    report_match: Optional[bool] = None  # None = exhibits not compared
    fault_log: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_failed(self) -> None:
        if self.problems:
            raise ChaosError(
                f"chaos plan {self.plan_name!r}: "
                + "; ".join(self.problems)
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "plan": self.plan_name,
            "ok": self.ok,
            "injected": self.injected,
            "parent_injected": self.parent_injected,
            "store_entries": self.store_entries,
            "report_match": self.report_match,
            "fault_log": self.fault_log,
            "rounds": [entry.to_dict() for entry in self.rounds],
            "problems": list(self.problems),
        }

    def format(self) -> str:
        lines = [f"chaos plan {self.plan_name!r}:"]
        for entry in self.rounds:
            mode = "armed" if entry.armed else "recovery"
            outcome = entry.error or entry.summary or "-"
            mark = " [converged]" if entry.converged else ""
            lines.append(f"  round {entry.number} ({mode}): {outcome}{mark}")
        lines.append(
            f"  {self.injected} fault(s) injected "
            f"({self.parent_injected} parent-side), "
            f"{self.store_entries} store entries"
        )
        if self.report_match is not None:
            lines.append(
                "  report text: "
                + ("matches baseline" if self.report_match else "DIFFERS")
            )
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        lines.append("  verdict: " + ("converged" if self.ok else "FAILED"))
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _store_problems(baseline: Path, chaos: Path) -> List[str]:
    """Byte-compare two stores: missing/extra/differing entries."""
    problems: List[str] = []
    base_entries = {path.name for path in baseline.glob("*.json")}
    chaos_entries = {path.name for path in chaos.glob("*.json")}
    for name in sorted(base_entries - chaos_entries):
        problems.append(f"chaos store is missing entry {name}")
    for name in sorted(chaos_entries - base_entries):
        problems.append(f"chaos store has extra entry {name}")
    for name in sorted(base_entries & chaos_entries):
        if (baseline / name).read_bytes() != (chaos / name).read_bytes():
            problems.append(f"entry {name} differs from the baseline bytes")
    return problems


def _count_log_lines(path: Path) -> int:
    try:
        with open(path) as handle:
            return sum(1 for line in handle if line.strip())
    except OSError:
        return 0


def _render_text(
    selected, store: ResultStore, jobs: int, progress: Progress
) -> str:
    """Render the selected exhibits purely from ``store`` contents."""
    runner.clear_cache()
    document = report_module.build_report(
        progress=progress, experiments=selected,
        jobs=jobs, store=store, resume=True,
    )
    return document.text


# ----------------------------------------------------------------------
def run_chaos(
    plan: faults.FaultPlan,
    *,
    exhibits: Optional[Sequence[str]] = None,
    points: Optional[Sequence[Dict[str, object]]] = None,
    jobs: int = 2,
    rounds: int = DEFAULT_ROUNDS,
    out_dir: str = "chaos-out",
    timeout: Optional[float] = None,
    retries: int = 2,
    progress: Optional[Progress] = None,
) -> ChaosReport:
    """Run the baseline + chaos + recovery sequence; see module docstring.

    ``exhibits`` names report exhibits whose evaluation grids form the
    campaign (default: figure8, a 10-mix single-scheme grid); ``points``
    bypasses exhibit enumeration with explicit run signatures (tests use
    this for tiny grids — report-text comparison is skipped then).
    Returns the :class:`ChaosReport`; call
    :meth:`ChaosReport.raise_if_failed` for the exit-code-4 behavior.
    """
    note = progress or (lambda message: None)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    report = ChaosReport(plan_name=plan.name)

    selected = None
    if points is None:
        names = list(exhibits) if exhibits else ["figure8"]
        known = {name for name, _ in report_module.EXPERIMENTS}
        unknown = sorted(set(names) - known)
        if unknown:
            raise ChaosError(f"unknown exhibits: {', '.join(unknown)}")
        selected = [
            entry for entry in report_module.EXPERIMENTS if entry[0] in names
        ]
        points = report_module.enumerate_points(selected)
    points = list(points)
    if not points:
        raise ChaosError("no evaluation points selected")

    baseline_root = out / "baseline-store"
    chaos_root = out / "chaos-store"
    log_path = out / "faults.jsonl"
    if log_path.exists():
        log_path.unlink()

    # Phase 1: fault-free baseline -------------------------------------
    note(f"baseline: {len(points)} point(s) -> {baseline_root}")
    faults.disarm()
    runner.clear_cache()
    baseline_store = ResultStore(baseline_root)
    baseline_summary = run_campaign(
        points, jobs=jobs, store=baseline_store, resume=True,
        timeout=timeout, retries=retries, progress=note,
    )
    if not baseline_summary.ok:
        raise ChaosError(
            "fault-free baseline campaign failed: "
            + "; ".join(f.describe() for f in baseline_summary.failures)
        )

    # Phase 2: armed round + recovery rounds ---------------------------
    telemetry = Telemetry(tracer=EventTracer(), metrics=MetricsRegistry())
    chaos_store = ResultStore(chaos_root, telemetry=telemetry)
    converged = False
    for number in range(1, max(1, rounds) + 1):
        armed_round = number == 1
        entry = ChaosRound(number=number, armed=armed_round)
        report.rounds.append(entry)
        # Memory must not mask disk: a corrupt entry hiding behind the
        # in-memory cache would fake convergence.
        runner.clear_cache()
        injector = None
        if armed_round:
            note(f"round {number}: ARMED under plan {plan.name!r}")
            injector = faults.arm(
                plan, telemetry=telemetry, log_path=str(log_path)
            )
        else:
            note(f"round {number}: recovery (fault-free, resume)")
        try:
            summary = run_campaign(
                points, jobs=jobs, store=chaos_store, resume=True,
                timeout=timeout, retries=retries, progress=note,
            )
            entry.summary = summary.format()
            entry.failures = len(summary.failures)
        except KeyboardInterrupt:
            raise
        except (ReproError, OSError) as exc:
            # An injected fault escaped the campaign (e.g. a parent-side
            # store write failure).  That is a legitimate chaos outcome
            # for the round — the recovery rounds must still converge.
            entry.error = f"{type(exc).__name__}: {exc}"
            note(f"round {number}: campaign raised {entry.error}")
        finally:
            if armed_round:
                faults.disarm()
                report.parent_injected = (
                    injector.injected if injector is not None else 0
                )
        if entry.error is None and entry.failures == 0:
            if not _store_problems(baseline_root, chaos_root):
                entry.converged = True
                converged = True
                note(f"round {number}: store matches baseline")
                break

    # Phase 3: end-state assertions ------------------------------------
    report.fault_log = str(log_path)
    report.injected = _count_log_lines(log_path)
    report.store_entries = len(chaos_store)
    if report.injected == 0:
        report.problems.append(
            "the plan never fired (empty fault log) — nothing was tested"
        )
    if not converged:
        report.problems.append(
            f"did not converge within {rounds} round(s)"
        )
        report.problems.extend(_store_problems(baseline_root, chaos_root))
    if report.parent_injected:
        # Parent-side injections must be visible in telemetry too.
        counters = {
            name: telemetry.metrics.get(name).value
            for name in telemetry.metrics.names()
            if name.startswith("faults.")
        }
        if sum(counters.values()) != report.parent_injected:
            report.problems.append(
                "telemetry counters disagree with parent-side injections "
                f"({counters} vs {report.parent_injected})"
            )
    if converged and selected is not None:
        baseline_text = _render_text(selected, baseline_store, jobs, note)
        chaos_text = _render_text(selected, chaos_store, jobs, note)
        report.report_match = baseline_text == chaos_text
        if not report.report_match:
            report.problems.append(
                "report rendered from the chaos store differs from the "
                "baseline report"
            )
    runner.clear_cache()
    return report


__all__ = ["ChaosReport", "ChaosRound", "run_chaos", "DEFAULT_ROUNDS"]
