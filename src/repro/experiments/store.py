"""Persistent, content-addressed store for experiment results.

Every evaluation point is identified by its full run signature (the same
fields the in-memory cache keys on: mix, scheme, contexts, replacement,
total accesses, seed, ...).  The store maps the SHA-256 of the canonical
JSON encoding of that signature to one file holding the signature plus
the :meth:`~repro.sim.stats.SimulationResult.to_dict` snapshot.

Durability properties:

* **atomic writes** — results land via temp file + ``os.replace``, so a
  crash mid-write never leaves a truncated entry behind;
* **deterministic payloads** — host-dependent fields (``host_seconds``
  and anything else ``host_``-prefixed) are stripped before persisting,
  so two runs of the same point store byte-identical files;
* **self-describing entries** — each file embeds its signature, so a
  (vanishingly unlikely) digest collision or a hand-edited file is
  detected on load and treated as a miss.

A campaign that crashes hours in therefore loses at most the in-flight
points; rerunning with the same store replays only what is missing.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional

from repro import faults
from repro.sim.stats import SimulationResult
from repro.telemetry.events import EVENT_STORE_SKIP

#: On-disk schema version; bump on incompatible layout changes.
SCHEMA_VERSION = 1

#: ``extra`` keys that depend on the host machine, not the simulation.
_HOST_DEPENDENT_PREFIX = "host_"


def signature_key(signature: Mapping[str, object]) -> str:
    """SHA-256 of the canonical (sorted-key) JSON encoding."""
    canonical = json.dumps(dict(signature), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def strip_host_fields(result_dict: Dict[str, object]) -> Dict[str, object]:
    """Drop host-dependent ``extra`` fields so stored payloads are
    deterministic and comparable across machines and reruns."""
    cleaned = dict(result_dict)
    extra = cleaned.get("extra")
    if isinstance(extra, dict):
        cleaned["extra"] = {
            key: value
            for key, value in extra.items()
            if not key.startswith(_HOST_DEPENDENT_PREFIX)
        }
    return cleaned


class ResultStore:
    """Directory of ``<sha256>.json`` result files, one per run signature.

    ``telemetry`` (optional) makes corruption tolerance observable: every
    skipped (unreadable/malformed) entry increments the
    ``store.corrupt_skipped`` counter and emits a ``store.skip`` trace
    event, so a store quietly degrading to re-simulation shows up in the
    metrics instead of only in warnings.
    """

    def __init__(self, root: os.PathLike, telemetry=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    def path_for(self, signature: Mapping[str, object]) -> Path:
        return self.root / f"{signature_key(signature)}.json"

    def contains(self, signature: Mapping[str, object]) -> bool:
        return self.path_for(signature).is_file()

    def save(
        self, signature: Mapping[str, object], result: SimulationResult
    ) -> Path:
        """Atomically persist ``result`` under its signature digest.

        Quota-aware: when a :class:`~repro.budget.BudgetMonitor` is armed
        process-wide, the write is pre-checked against the disk quota
        (refused with :class:`~repro.errors.BudgetExceededError` before
        any bytes land) and charged to the monitor's ledger afterwards.
        A real ``ENOSPC``/``EDQUOT`` from the filesystem surfaces as
        :class:`~repro.errors.DiskFullError` with a resume hint instead
        of a raw ``OSError`` traceback.
        """
        from repro import budget as _budget

        document = {
            "schema_version": SCHEMA_VERSION,
            "signature": dict(signature),
            "result": strip_host_fields(result.to_dict()),
        }
        path = self.path_for(signature)
        # Chaos hooks (no-ops unless a FaultPlan is armed): each mutates
        # what lands on disk exactly the way the matching host failure
        # would, so ``load``'s corruption tolerance is exercised honestly.
        injector = faults.ACTIVE
        if injector is not None:
            context = dict(
                entry=path.name,
                mix_name=signature.get("mix_name"),
                scheme=signature.get("scheme"),
            )
            if injector.fire("store.save.io_error", **context):
                raise OSError(
                    errno.EIO, f"injected I/O error persisting {path.name}"
                )
            if injector.fire("store.enospc", **context):
                raise _budget.translate_disk_error(
                    OSError(
                        errno.ENOSPC,
                        f"injected disk-full persisting {path.name}",
                    ),
                    f"persisting result {path.name}",
                )
            if injector.fire("store.save.wrong_signature", **context):
                mutated = dict(document["signature"])
                mutated["mix_name"] = "__chaos__"
                document = dict(document, signature=mutated)
        data = json.dumps(document, sort_keys=True).encode("utf-8")
        if injector is not None:
            if injector.fire("store.save.torn_write", **context):
                data = data[: len(data) // 2]
            elif injector.fire("store.save.corrupt_byte", **context):
                data = faults.flip_byte(data)
        monitor = _budget.ACTIVE
        previous_size = 0
        if monitor is not None:
            try:
                previous_size = path.stat().st_size
            except OSError:
                previous_size = 0
            monitor.check_disk(
                len(data) - previous_size, f"result entry {path.name}"
            )
        try:
            handle = tempfile.NamedTemporaryFile(
                mode="wb", dir=self.root, prefix=".tmp-", suffix=".json",
                delete=False,
            )
            try:
                with handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(handle.name, path)
            finally:
                # After a successful replace the temp name no longer
                # exists and the unlink is a no-op; on *any* failure
                # (including an interrupt between write and replace) it
                # sweeps the orphan.
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
        except OSError as exc:
            if _budget.is_disk_full_error(exc):
                raise _budget.translate_disk_error(
                    exc, f"persisting result {path.name}"
                ) from exc
            raise
        if monitor is not None:
            monitor.charge_disk(len(data) - previous_size)
        return path

    def load(
        self, signature: Mapping[str, object]
    ) -> Optional[SimulationResult]:
        """Return the stored result for ``signature``, or ``None``.

        Corrupt, truncated, or mismatched entries are warnings + misses,
        never errors: a damaged store degrades to extra simulation, not
        a failed campaign.
        """
        path = self.path_for(signature)
        try:
            injector = faults.ACTIVE
            if injector is not None and injector.fire(
                "store.load.io_error", entry=path.name
            ):
                raise OSError(
                    errno.EIO, f"injected I/O error reading {path.name}"
                )
            with open(path) as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            self._skip(path, "unreadable", exc)
            return None
        try:
            if document.get("schema_version") != SCHEMA_VERSION:
                raise ValueError(
                    f"schema_version {document.get('schema_version')!r} != "
                    f"{SCHEMA_VERSION}"
                )
            if document.get("signature") != dict(signature):
                raise ValueError("stored signature does not match request")
            return SimulationResult.from_dict(document["result"])
        except (KeyError, TypeError, ValueError) as exc:
            self._skip(path, "malformed", exc)
            return None

    def _skip(self, path: Path, reason: str, exc: Exception) -> None:
        """Account one corruption-tolerant miss (warn + count + event)."""
        warnings.warn(
            f"ignoring {reason} store entry {path.name}: {exc}",
            RuntimeWarning,
            stacklevel=3,
        )
        if self.telemetry is not None:
            if self.telemetry.metrics is not None:
                self.telemetry.metrics.counter("store.corrupt_skipped").inc()
            self.telemetry.emit(
                EVENT_STORE_SKIP, 0.0, entry=path.name, reason=reason,
                error=f"{type(exc).__name__}: {exc}",
            )

    # ------------------------------------------------------------------
    def signatures(self) -> Iterator[Dict[str, object]]:
        """Yield the signature of every well-formed entry."""
        for path in sorted(self.root.glob("*.json")):
            try:
                with open(path) as handle:
                    document = json.load(handle)
                yield dict(document["signature"])
            except (OSError, KeyError, TypeError, ValueError):
                continue

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, entries={len(self)})"
