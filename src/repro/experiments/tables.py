"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as an aligned monospace table (markdown-flavoured)."""
    materialized: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |",
        "|" + "|".join("-" * (w + 2) for w in widths) + "|",
    ]
    for row in materialized:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
