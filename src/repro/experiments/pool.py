"""Fault-isolated campaign execution: run evaluation points across workers.

A *campaign* is the pre-enumerated set of evaluation points a report (or
any grid sweep) needs.  :func:`run_campaign` drains that set with

* **deduplication** — exhibits share points (the whole reason the runner
  memoizes), so each unique signature runs once;
* **resume** — points already in memory or in the attached
  :class:`~repro.experiments.store.ResultStore` are skipped;
* **fault isolation** — with ``jobs > 1`` every point runs in its own
  worker process, so a crash or OOM kill takes down one point, not the
  campaign;
* **bounded retry with exponential backoff** — transient failures
  (worker killed, per-point timeout) are retried up to ``retries``
  times; a point that exhausts its retries is recorded as failed and
  poisoned in the runner, so its exhibit degrades to PARTIAL instead of
  silently re-simulating for hours;
* **graceful SIGINT** — the first Ctrl-C stops launching new points and
  lets in-flight workers finish and persist; a second Ctrl-C aborts
  immediately.  With write-through persistence this loses at most the
  points that were mid-simulation.

Worker processes attach their own store handle and persist their own
results, so completed work survives even if the parent dies before
collecting it.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.budget import BudgetMonitor
from repro.errors import (
    BudgetExceededError,
    DiskFullError,
    InjectedFaultError,
    ReproError,
)
from repro.experiments import runner
from repro.experiments.store import ResultStore, signature_key
from repro.sim.stats import SimulationResult

Signature = Dict[str, object]
Progress = Callable[[str], None]

#: Default cap on transparent re-runs of a transiently failed point.
DEFAULT_RETRIES = 2

#: Base of the exponential backoff between retries (seconds).
DEFAULT_BACKOFF_SECONDS = 0.5


class CampaignInterrupted(KeyboardInterrupt):
    """Raised after a SIGINT once in-flight results have been persisted."""


@dataclass
class PointFailure:
    """One point that exhausted its retry budget (or failed permanently)."""

    signature: Signature
    error: str
    attempts: int

    def describe(self) -> str:
        return (
            f"{self.signature.get('mix_name')}/{self.signature.get('scheme')}"
            f" failed after {self.attempts} attempt(s): {self.error}"
        )


@dataclass
class CampaignSummary:
    """What a campaign did: per-source counts plus the failure list."""

    total: int = 0
    reused: int = 0       # already in the in-memory cache
    loaded: int = 0       # restored from the persistent store
    simulated: int = 0
    skipped: int = 0      # never launched: budget hard stop (resumable)
    failures: List[PointFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        parts = [
            f"{self.total} points",
            f"{self.simulated} simulated",
            f"{self.loaded} restored from store",
            f"{self.reused} cached",
        ]
        if self.skipped:
            parts.append(f"{self.skipped} skipped (budget)")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        return ", ".join(parts)


@dataclass
class _Attempt:
    signature: Signature
    attempts: int = 0
    ready_at: float = 0.0  # monotonic time before which we must not launch


@dataclass
class _Running:
    attempt: _Attempt
    process: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    started: float


def dedupe_signatures(signatures: Sequence[Signature]) -> List[Signature]:
    """Order-preserving dedup on the canonical signature digest."""
    seen = set()
    unique: List[Signature] = []
    for signature in signatures:
        digest = signature_key(signature)
        if digest not in seen:
            seen.add(digest)
            unique.append(signature)
    return unique


def _point_checkpoint_dir(store_root, signature: Signature) -> Path:
    """Where a point's in-flight snapshots live: keyed like the store."""
    return Path(store_root) / "checkpoints" / signature_key(signature)


def _worker_entry(
    signature: Signature, store_root, conn, checkpoint_every=None, attempt=1
) -> None:
    """Simulate one point in a child process and ship the result back."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    try:
        # Chaos hooks (no-ops unless a FaultPlan is armed — workers are
        # forked, so they inherit the parent's armed injector).  The
        # ``attempt`` context key lets a plan say "fail the first attempt
        # only" deterministically, without trigger counters that would
        # die with the crashing process.
        injector = faults.ACTIVE
        context = dict(
            attempt=attempt,
            mix_name=signature.get("mix_name"),
            scheme=signature.get("scheme"),
        )
        if injector is not None:
            spec = injector.fire("pool.worker.crash", **context)
            if spec:
                os._exit(int(spec.args.get("exit_code", 17)))
            spec = injector.fire("pool.worker.hang", **context)
            if spec:
                time.sleep(float(spec.args.get("seconds", 3600.0)))
            if injector.fire("pool.worker.error", **context):
                raise InjectedFaultError(
                    f"injected deterministic failure in "
                    f"{signature.get('mix_name')}/{signature.get('scheme')}"
                )
        if store_root is not None:
            # Write-through only: the parent already established this
            # point is missing, so reading the store back is pointless.
            runner.set_store(ResultStore(store_root), consult=False)
        kwargs = runner.point_from_signature(signature)
        checkpoint_dir: Optional[Path] = None
        if checkpoint_every is not None and store_root is not None:
            # A killed/timed-out worker leaves its snapshots behind; the
            # retry restores the newest one (restore="auto" runs fresh
            # when there is none yet) instead of starting over.
            checkpoint_dir = _point_checkpoint_dir(store_root, signature)
            kwargs.update(
                checkpoint_every=checkpoint_every,
                checkpoint_dir=str(checkpoint_dir),
                restore="auto",
            )
        result = runner.run_point(**kwargs)
        if checkpoint_dir is not None:
            shutil.rmtree(checkpoint_dir, ignore_errors=True)
        if injector is not None and injector.fire(
            "pool.worker.lost_result", **context
        ):
            return  # exit cleanly without shipping: a lost result
        conn.send(("ok", result.to_dict()))
    except (KeyboardInterrupt, SystemExit):
        raise
    except BudgetExceededError as exc:
        # A disk-full/budget wall is campaign-level, not point-level —
        # every other worker would hit it too.  Ship it distinctly so
        # the parent stops the campaign resumably instead of recording
        # one identical failure per point.
        try:
            conn.send(("budget", {
                "type": type(exc).__name__,
                "message": str(exc),
                "dimension": exc.dimension,
            }))
        except (OSError, ValueError):  # pragma: no cover - parent gone
            pass
    except ReproError as exc:
        # An understood, deterministic failure: ship the classification.
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):  # pragma: no cover - parent gone
            pass
    except Exception as exc:
        # Unexpected type: ship the full traceback instead of swallowing
        # it into a one-liner — the parent logs it verbatim.
        try:
            conn.send((
                "error",
                f"unexpected {type(exc).__name__}: {exc}\n"
                f"{traceback.format_exc()}",
            ))
        except (OSError, ValueError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()


def _label(signature: Signature) -> str:
    return f"{signature.get('mix_name')}/{signature.get('scheme')}"


def _responsive_sleep(
    seconds: float,
    latch: Optional["_SigintLatch"] = None,
    monitor: Optional[BudgetMonitor] = None,
    slice_seconds: float = 0.05,
) -> None:
    """Sleep up to ``seconds``, waking early on SIGINT or a hard breach.

    Backoff waits used to be opaque to the interrupt latch and the
    budget deadline; slicing them keeps a budgeted campaign from
    oversleeping its hard stop by a full backoff interval.
    """
    wake_at = time.monotonic() + seconds
    while True:
        if latch is not None and latch.interrupted:
            return
        if monitor is not None and monitor.hard_breach is not None:
            return
        remaining = wake_at - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(slice_seconds, remaining))


class _SigintLatch:
    """Counts SIGINTs; second one aborts immediately via KeyboardInterrupt."""

    def __init__(self) -> None:
        self.count = 0
        self._previous = None
        self._installed = False

    def __enter__(self) -> "_SigintLatch":
        if threading.current_thread() is threading.main_thread():
            self._previous = signal.signal(signal.SIGINT, self._handle)
            self._installed = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._installed:
            signal.signal(signal.SIGINT, self._previous)

    def _handle(self, signum, frame) -> None:
        self.count += 1
        if self.count >= 2:
            raise KeyboardInterrupt

    @property
    def interrupted(self) -> bool:
        return self.count > 0


def run_campaign(
    signatures: Sequence[Signature],
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF_SECONDS,
    progress: Optional[Progress] = None,
    checkpoint_every: Optional[int] = None,
    monitor: Optional[BudgetMonitor] = None,
) -> CampaignSummary:
    """Drain ``signatures`` and return what happened to each unique point.

    With ``jobs <= 1`` points run in-process (an exception in one point
    is recorded as its failure; the rest of the campaign continues).
    With ``jobs > 1`` each point runs in its own worker process with an
    optional per-point ``timeout``; killed or timed-out workers are
    retried with exponential backoff, exceptions raised *inside* the
    simulation are deterministic and fail the point immediately.

    ``checkpoint_every`` (needs ``store``, effective with ``jobs > 1``)
    makes workers snapshot in-flight points every N accesses under
    ``<store>/checkpoints/<signature-key>``; the retry of a killed or
    timed-out worker resumes from the newest snapshot instead of
    restarting, and a completed point's snapshots are deleted.

    ``monitor`` (a started :class:`~repro.budget.BudgetMonitor`) puts the
    campaign under resource budgets: a *soft* threshold stops launching
    new points while in-flight ones finish and persist; a *hard* breach
    drains exactly like a SIGINT, poisons the never-launched points (so
    exhibits render PARTIAL instead of silently re-simulating) and
    raises :class:`~repro.errors.BudgetExceededError` — the store stays
    resumable, and re-running without budgets converges byte-identically
    to a never-budgeted campaign.

    Raises :class:`CampaignInterrupted` after SIGINT, once everything
    already simulated has been persisted.
    """
    note = progress or (lambda message: None)
    unique = dedupe_signatures(signatures)
    summary = CampaignSummary(total=len(unique))
    if store is not None:
        runner.set_store(store, consult=resume)
    todo: List[_Attempt] = []
    for signature in unique:
        if runner.is_cached(signature):
            summary.reused += 1
            continue
        if resume and store is not None:
            stored = store.load(signature)
            if stored is not None:
                runner.seed_cache(signature, stored)
                summary.loaded += 1
                continue
        todo.append(_Attempt(signature))
    if summary.loaded:
        note(f"restored {summary.loaded} persisted point(s) from the store")
    if not todo:
        return summary

    with _SigintLatch() as latch:
        try:
            if jobs <= 1:
                _run_inline(todo, summary, latch, note, monitor=monitor)
            else:
                _run_parallel(
                    todo, summary, latch, note,
                    jobs=jobs, store=store, timeout=timeout,
                    retries=retries, backoff=backoff,
                    checkpoint_every=checkpoint_every, monitor=monitor,
                )
        except BudgetExceededError as exc:
            # The store/checkpoint layer stopped the campaign directly
            # (a real ENOSPC, or a quota precheck outside the monitor's
            # own sampling): same resumable-stop semantics as a
            # monitored hard breach.
            _skip_unfinished(
                todo, summary, getattr(exc, "dimension", "budget"), note
            )
            exc.summary = summary
            raise
        if latch.interrupted:
            raise CampaignInterrupted(
                f"campaign interrupted; {summary.simulated} completed "
                "point(s) were persisted"
            )
        if monitor is not None and monitor.hard_breach is not None:
            breach = monitor.hard_breach
            _skip_unfinished(todo, summary, breach.describe(), note)
            error = monitor.build_error(
                f"campaign stopped after {summary.simulated} simulated "
                f"point(s); {summary.skipped} not run"
            )
            error.summary = summary  # callers render the partial campaign
            raise error
    return summary


def _skip_unfinished(
    todo: List[_Attempt],
    summary: CampaignSummary,
    reason: str,
    note: Progress,
) -> None:
    """Poison every point the budget stop kept from running.

    ``runner.mark_failed`` is in-memory only: this run's exhibits render
    PARTIAL instead of quietly re-simulating for hours, while a *new*
    process resuming against the same store simply runs the points.
    """
    failed = {
        signature_key(failure.signature) for failure in summary.failures
    }
    for attempt in todo:
        if signature_key(attempt.signature) in failed:
            continue
        if runner.is_cached(attempt.signature):
            continue
        summary.skipped += 1
        runner.mark_failed(
            attempt.signature,
            f"not run: campaign budget exceeded ({reason}); "
            "resume without (or with a larger) budget to finish",
        )
    if summary.skipped:
        note(
            f"budget exceeded ({reason}): {summary.skipped} point(s) "
            "not run; completed points are persisted and resumable"
        )


# ----------------------------------------------------------------------
def _record_failure(
    summary: CampaignSummary, attempt: _Attempt, error: str, note: Progress
) -> None:
    failure = PointFailure(attempt.signature, error, attempt.attempts)
    summary.failures.append(failure)
    runner.mark_failed(attempt.signature, error)
    note(f"FAILED {failure.describe()}")


def _run_inline(
    todo: List[_Attempt],
    summary: CampaignSummary,
    latch: _SigintLatch,
    note: Progress,
    monitor: Optional[BudgetMonitor] = None,
) -> None:
    """Single-process execution: per-point exception isolation only.

    Budget admission control is between points: each point is one
    indivisible launch, so a hard breach stops *before* the next launch
    (soft pressure has no in-flight set to drain here — degradation is
    the monitor's telemetry downsampling).
    """
    done = summary.reused + summary.loaded
    for attempt in todo:
        if latch.interrupted:
            break
        if monitor is not None:
            monitor.beat(done)
            if monitor.sample() is not None:
                break
        attempt.attempts += 1
        try:
            runner.run_point(**runner.point_from_signature(attempt.signature))
        except KeyboardInterrupt:
            latch.count = max(latch.count, 1)
            break
        except BudgetExceededError:
            # Not a per-point fault: a disk-full (or any budget) stop
            # would hit every later point too.  Stop the campaign
            # resumably; run_campaign attaches the partial summary.
            raise
        except ReproError as exc:
            # A classified failure from the taxonomy: record and move on.
            _record_failure(
                summary, attempt, f"{type(exc).__name__}: {exc}", note
            )
            done += 1
            continue
        except Exception as exc:
            # Unexpected type: still isolate it to this point, but keep
            # the full traceback in the progress log for diagnosis.
            note(traceback.format_exc())
            _record_failure(
                summary, attempt,
                f"unexpected {type(exc).__name__}: {exc}", note,
            )
            done += 1
            continue
        summary.simulated += 1
        done += 1
        note(f"[{done}/{summary.total}] {_label(attempt.signature)} simulated")


def _run_parallel(
    todo: List[_Attempt],
    summary: CampaignSummary,
    latch: _SigintLatch,
    note: Progress,
    *,
    jobs: int,
    store: Optional[ResultStore],
    timeout: Optional[float],
    retries: int,
    backoff: float,
    checkpoint_every: Optional[int] = None,
    monitor: Optional[BudgetMonitor] = None,
) -> None:
    """Process-per-point execution with timeout, retry and SIGINT drain."""
    # Prefer fork: cheap starts, and the child sees the parent's runtime
    # state (monkeypatches included, which the fault-injection tests use).
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - e.g. Windows
        context = multiprocessing.get_context()
    store_root = str(store.root) if store is not None else None
    queue: List[_Attempt] = list(todo)
    running: List[_Running] = []
    drained_note = False

    def launch(attempt: _Attempt) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        attempt.attempts += 1
        process = context.Process(
            target=_worker_entry,
            args=(
                attempt.signature, store_root, child_conn, checkpoint_every,
                attempt.attempts,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        running.append(
            _Running(attempt, process, parent_conn, time.monotonic())
        )

    def requeue_transient(attempt: _Attempt, error: str) -> None:
        if attempt.attempts > retries:
            _record_failure(summary, attempt, error, note)
            return
        delay = backoff * (2 ** (attempt.attempts - 1))
        if monitor is not None:
            # Never schedule a retry past the hard deadline: the backoff
            # shrinks to whatever budget is actually left.
            remaining = monitor.deadline_remaining()
            if remaining is not None:
                delay = max(0.0, min(delay, remaining))
        attempt.ready_at = time.monotonic() + delay
        note(
            f"retrying {_label(attempt.signature)} in {delay:.1f}s "
            f"(attempt {attempt.attempts + 1}/{retries + 1}): {error}"
        )
        queue.append(attempt)

    def collect(task: _Running) -> None:
        running.remove(task)
        message: Optional[Tuple[str, object]] = None
        try:
            if task.conn.poll():
                message = task.conn.recv()
        except (EOFError, OSError):
            message = None
        finally:
            task.conn.close()
        task.process.join()
        if message is None:
            requeue_transient(
                task.attempt,
                f"worker died (exit code {task.process.exitcode})",
            )
            return
        status, payload = message
        if status == "ok":
            result = SimulationResult.from_dict(payload)
            runner.seed_cache(task.attempt.signature, result)
            if store is not None and not store.contains(task.attempt.signature):
                store.save(task.attempt.signature, result)
            summary.simulated += 1
            done = summary.reused + summary.loaded + summary.simulated
            note(
                f"[{done}/{summary.total}] {_label(task.attempt.signature)} "
                "simulated"
            )
        elif status == "budget":
            # Reconstruct the worker's budget stop in the parent; it
            # propagates out of the drain loop (the finally terminates
            # the other workers) up to run_campaign's resumable-stop
            # handling.
            if payload.get("type") == "DiskFullError":
                raise DiskFullError(payload["message"])
            raise BudgetExceededError(
                payload["message"],
                dimension=payload.get("dimension", "unknown"),
            )
        else:
            # An exception inside the simulation is deterministic —
            # retrying cannot help, fail the point immediately.
            _record_failure(summary, task.attempt, str(payload), note)

    soft_note = False
    try:
        while queue or running:
            if monitor is not None:
                monitor.beat(
                    summary.reused + summary.loaded + summary.simulated
                )
                monitor.sample()
            hard = monitor is not None and monitor.hard_breach is not None
            soft = monitor is not None and bool(monitor.soft_active)
            draining = latch.interrupted or hard
            if hard and not drained_note and running:
                note(
                    f"budget exceeded: waiting for {len(running)} in-flight "
                    "point(s) to finish and persist before stopping"
                )
                drained_note = True
            if latch.interrupted and not drained_note and running:
                note(
                    f"interrupt: waiting for {len(running)} in-flight "
                    "point(s) to finish and persist (Ctrl-C again to abort)"
                )
                drained_note = True
            if draining and not running:
                break
            if soft and not draining and not soft_note and queue:
                note(
                    "budget soft threshold reached "
                    f"({', '.join(sorted(monitor.soft_active))}): narrowing "
                    "the pool to one worker while pressure lasts"
                )
                soft_note = True
            now = time.monotonic()
            # Soft pressure narrows the pool to one worker instead of
            # freezing it: in-flight points finish, then work trickles
            # serially until the pressure clears or goes hard.  (A soft
            # RSS/disk level can plateau below 100% indefinitely; a
            # frozen pool would idle forever.)
            slots = 1 if soft else jobs
            if not draining:
                launchable = [
                    attempt for attempt in queue if attempt.ready_at <= now
                ]
                while launchable and len(running) < slots:
                    attempt = launchable.pop(0)
                    queue.remove(attempt)
                    launch(attempt)
            finished = [
                task for task in running
                if task.conn.poll() or not task.process.is_alive()
            ]
            for task in finished:
                collect(task)
            if timeout is not None:
                for task in list(running):
                    if time.monotonic() - task.started > timeout:
                        task.process.terminate()
                        task.process.join()
                        running.remove(task)
                        task.conn.close()
                        requeue_transient(
                            task.attempt, f"timed out after {timeout:.1f}s"
                        )
            if not finished:
                _responsive_sleep(0.02, latch, monitor)
    finally:
        for task in running:  # second Ctrl-C / unexpected error: hard stop
            task.process.terminate()
            task.process.join()
            task.conn.close()
