"""Fault-isolated campaign execution: run evaluation points across workers.

A *campaign* is the pre-enumerated set of evaluation points a report (or
any grid sweep) needs.  :func:`run_campaign` drains that set with

* **deduplication** — exhibits share points (the whole reason the runner
  memoizes), so each unique signature runs once;
* **resume** — points already in memory or in the attached
  :class:`~repro.experiments.store.ResultStore` are skipped;
* **fault isolation** — with ``jobs > 1`` every point runs in its own
  worker process, so a crash or OOM kill takes down one point, not the
  campaign;
* **bounded retry with exponential backoff** — transient failures
  (worker killed, per-point timeout) are retried up to ``retries``
  times; a point that exhausts its retries is recorded as failed and
  poisoned in the runner, so its exhibit degrades to PARTIAL instead of
  silently re-simulating for hours;
* **graceful SIGINT** — the first Ctrl-C stops launching new points and
  lets in-flight workers finish and persist; a second Ctrl-C aborts
  immediately.  With write-through persistence this loses at most the
  points that were mid-simulation.

Worker processes attach their own store handle and persist their own
results, so completed work survives even if the parent dies before
collecting it.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.errors import InjectedFaultError, ReproError
from repro.experiments import runner
from repro.experiments.store import ResultStore, signature_key
from repro.sim.stats import SimulationResult

Signature = Dict[str, object]
Progress = Callable[[str], None]

#: Default cap on transparent re-runs of a transiently failed point.
DEFAULT_RETRIES = 2

#: Base of the exponential backoff between retries (seconds).
DEFAULT_BACKOFF_SECONDS = 0.5


class CampaignInterrupted(KeyboardInterrupt):
    """Raised after a SIGINT once in-flight results have been persisted."""


@dataclass
class PointFailure:
    """One point that exhausted its retry budget (or failed permanently)."""

    signature: Signature
    error: str
    attempts: int

    def describe(self) -> str:
        return (
            f"{self.signature.get('mix_name')}/{self.signature.get('scheme')}"
            f" failed after {self.attempts} attempt(s): {self.error}"
        )


@dataclass
class CampaignSummary:
    """What a campaign did: per-source counts plus the failure list."""

    total: int = 0
    reused: int = 0       # already in the in-memory cache
    loaded: int = 0       # restored from the persistent store
    simulated: int = 0
    failures: List[PointFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        parts = [
            f"{self.total} points",
            f"{self.simulated} simulated",
            f"{self.loaded} restored from store",
            f"{self.reused} cached",
        ]
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        return ", ".join(parts)


@dataclass
class _Attempt:
    signature: Signature
    attempts: int = 0
    ready_at: float = 0.0  # monotonic time before which we must not launch


@dataclass
class _Running:
    attempt: _Attempt
    process: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    started: float


def dedupe_signatures(signatures: Sequence[Signature]) -> List[Signature]:
    """Order-preserving dedup on the canonical signature digest."""
    seen = set()
    unique: List[Signature] = []
    for signature in signatures:
        digest = signature_key(signature)
        if digest not in seen:
            seen.add(digest)
            unique.append(signature)
    return unique


def _point_checkpoint_dir(store_root, signature: Signature) -> Path:
    """Where a point's in-flight snapshots live: keyed like the store."""
    return Path(store_root) / "checkpoints" / signature_key(signature)


def _worker_entry(
    signature: Signature, store_root, conn, checkpoint_every=None, attempt=1
) -> None:
    """Simulate one point in a child process and ship the result back."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    try:
        # Chaos hooks (no-ops unless a FaultPlan is armed — workers are
        # forked, so they inherit the parent's armed injector).  The
        # ``attempt`` context key lets a plan say "fail the first attempt
        # only" deterministically, without trigger counters that would
        # die with the crashing process.
        injector = faults.ACTIVE
        context = dict(
            attempt=attempt,
            mix_name=signature.get("mix_name"),
            scheme=signature.get("scheme"),
        )
        if injector is not None:
            spec = injector.fire("pool.worker.crash", **context)
            if spec:
                os._exit(int(spec.args.get("exit_code", 17)))
            spec = injector.fire("pool.worker.hang", **context)
            if spec:
                time.sleep(float(spec.args.get("seconds", 3600.0)))
            if injector.fire("pool.worker.error", **context):
                raise InjectedFaultError(
                    f"injected deterministic failure in "
                    f"{signature.get('mix_name')}/{signature.get('scheme')}"
                )
        if store_root is not None:
            # Write-through only: the parent already established this
            # point is missing, so reading the store back is pointless.
            runner.set_store(ResultStore(store_root), consult=False)
        kwargs = runner.point_from_signature(signature)
        checkpoint_dir: Optional[Path] = None
        if checkpoint_every is not None and store_root is not None:
            # A killed/timed-out worker leaves its snapshots behind; the
            # retry restores the newest one (restore="auto" runs fresh
            # when there is none yet) instead of starting over.
            checkpoint_dir = _point_checkpoint_dir(store_root, signature)
            kwargs.update(
                checkpoint_every=checkpoint_every,
                checkpoint_dir=str(checkpoint_dir),
                restore="auto",
            )
        result = runner.run_point(**kwargs)
        if checkpoint_dir is not None:
            shutil.rmtree(checkpoint_dir, ignore_errors=True)
        if injector is not None and injector.fire(
            "pool.worker.lost_result", **context
        ):
            return  # exit cleanly without shipping: a lost result
        conn.send(("ok", result.to_dict()))
    except (KeyboardInterrupt, SystemExit):
        raise
    except ReproError as exc:
        # An understood, deterministic failure: ship the classification.
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):  # pragma: no cover - parent gone
            pass
    except Exception as exc:
        # Unexpected type: ship the full traceback instead of swallowing
        # it into a one-liner — the parent logs it verbatim.
        try:
            conn.send((
                "error",
                f"unexpected {type(exc).__name__}: {exc}\n"
                f"{traceback.format_exc()}",
            ))
        except (OSError, ValueError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()


def _label(signature: Signature) -> str:
    return f"{signature.get('mix_name')}/{signature.get('scheme')}"


class _SigintLatch:
    """Counts SIGINTs; second one aborts immediately via KeyboardInterrupt."""

    def __init__(self) -> None:
        self.count = 0
        self._previous = None
        self._installed = False

    def __enter__(self) -> "_SigintLatch":
        if threading.current_thread() is threading.main_thread():
            self._previous = signal.signal(signal.SIGINT, self._handle)
            self._installed = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._installed:
            signal.signal(signal.SIGINT, self._previous)

    def _handle(self, signum, frame) -> None:
        self.count += 1
        if self.count >= 2:
            raise KeyboardInterrupt

    @property
    def interrupted(self) -> bool:
        return self.count > 0


def run_campaign(
    signatures: Sequence[Signature],
    *,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF_SECONDS,
    progress: Optional[Progress] = None,
    checkpoint_every: Optional[int] = None,
) -> CampaignSummary:
    """Drain ``signatures`` and return what happened to each unique point.

    With ``jobs <= 1`` points run in-process (an exception in one point
    is recorded as its failure; the rest of the campaign continues).
    With ``jobs > 1`` each point runs in its own worker process with an
    optional per-point ``timeout``; killed or timed-out workers are
    retried with exponential backoff, exceptions raised *inside* the
    simulation are deterministic and fail the point immediately.

    ``checkpoint_every`` (needs ``store``, effective with ``jobs > 1``)
    makes workers snapshot in-flight points every N accesses under
    ``<store>/checkpoints/<signature-key>``; the retry of a killed or
    timed-out worker resumes from the newest snapshot instead of
    restarting, and a completed point's snapshots are deleted.

    Raises :class:`CampaignInterrupted` after SIGINT, once everything
    already simulated has been persisted.
    """
    note = progress or (lambda message: None)
    unique = dedupe_signatures(signatures)
    summary = CampaignSummary(total=len(unique))
    if store is not None:
        runner.set_store(store, consult=resume)
    todo: List[_Attempt] = []
    for signature in unique:
        if runner.is_cached(signature):
            summary.reused += 1
            continue
        if resume and store is not None:
            stored = store.load(signature)
            if stored is not None:
                runner.seed_cache(signature, stored)
                summary.loaded += 1
                continue
        todo.append(_Attempt(signature))
    if summary.loaded:
        note(f"restored {summary.loaded} persisted point(s) from the store")
    if not todo:
        return summary

    with _SigintLatch() as latch:
        if jobs <= 1:
            _run_inline(todo, summary, latch, note)
        else:
            _run_parallel(
                todo, summary, latch, note,
                jobs=jobs, store=store, timeout=timeout,
                retries=retries, backoff=backoff,
                checkpoint_every=checkpoint_every,
            )
        if latch.interrupted:
            raise CampaignInterrupted(
                f"campaign interrupted; {summary.simulated} completed "
                "point(s) were persisted"
            )
    return summary


# ----------------------------------------------------------------------
def _record_failure(
    summary: CampaignSummary, attempt: _Attempt, error: str, note: Progress
) -> None:
    failure = PointFailure(attempt.signature, error, attempt.attempts)
    summary.failures.append(failure)
    runner.mark_failed(attempt.signature, error)
    note(f"FAILED {failure.describe()}")


def _run_inline(
    todo: List[_Attempt],
    summary: CampaignSummary,
    latch: _SigintLatch,
    note: Progress,
) -> None:
    """Single-process execution: per-point exception isolation only."""
    done = summary.reused + summary.loaded
    for attempt in todo:
        if latch.interrupted:
            break
        attempt.attempts += 1
        try:
            runner.run_point(**runner.point_from_signature(attempt.signature))
        except KeyboardInterrupt:
            latch.count = max(latch.count, 1)
            break
        except ReproError as exc:
            # A classified failure from the taxonomy: record and move on.
            _record_failure(
                summary, attempt, f"{type(exc).__name__}: {exc}", note
            )
            done += 1
            continue
        except Exception as exc:
            # Unexpected type: still isolate it to this point, but keep
            # the full traceback in the progress log for diagnosis.
            note(traceback.format_exc())
            _record_failure(
                summary, attempt,
                f"unexpected {type(exc).__name__}: {exc}", note,
            )
            done += 1
            continue
        summary.simulated += 1
        done += 1
        note(f"[{done}/{summary.total}] {_label(attempt.signature)} simulated")


def _run_parallel(
    todo: List[_Attempt],
    summary: CampaignSummary,
    latch: _SigintLatch,
    note: Progress,
    *,
    jobs: int,
    store: Optional[ResultStore],
    timeout: Optional[float],
    retries: int,
    backoff: float,
    checkpoint_every: Optional[int] = None,
) -> None:
    """Process-per-point execution with timeout, retry and SIGINT drain."""
    # Prefer fork: cheap starts, and the child sees the parent's runtime
    # state (monkeypatches included, which the fault-injection tests use).
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - e.g. Windows
        context = multiprocessing.get_context()
    store_root = str(store.root) if store is not None else None
    queue: List[_Attempt] = list(todo)
    running: List[_Running] = []
    drained_note = False

    def launch(attempt: _Attempt) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        attempt.attempts += 1
        process = context.Process(
            target=_worker_entry,
            args=(
                attempt.signature, store_root, child_conn, checkpoint_every,
                attempt.attempts,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        running.append(
            _Running(attempt, process, parent_conn, time.monotonic())
        )

    def requeue_transient(attempt: _Attempt, error: str) -> None:
        if attempt.attempts > retries:
            _record_failure(summary, attempt, error, note)
            return
        delay = backoff * (2 ** (attempt.attempts - 1))
        attempt.ready_at = time.monotonic() + delay
        note(
            f"retrying {_label(attempt.signature)} in {delay:.1f}s "
            f"(attempt {attempt.attempts + 1}/{retries + 1}): {error}"
        )
        queue.append(attempt)

    def collect(task: _Running) -> None:
        running.remove(task)
        message: Optional[Tuple[str, object]] = None
        try:
            if task.conn.poll():
                message = task.conn.recv()
        except (EOFError, OSError):
            message = None
        finally:
            task.conn.close()
        task.process.join()
        if message is None:
            requeue_transient(
                task.attempt,
                f"worker died (exit code {task.process.exitcode})",
            )
            return
        status, payload = message
        if status == "ok":
            result = SimulationResult.from_dict(payload)
            runner.seed_cache(task.attempt.signature, result)
            if store is not None and not store.contains(task.attempt.signature):
                store.save(task.attempt.signature, result)
            summary.simulated += 1
            done = summary.reused + summary.loaded + summary.simulated
            note(
                f"[{done}/{summary.total}] {_label(task.attempt.signature)} "
                "simulated"
            )
        else:
            # An exception inside the simulation is deterministic —
            # retrying cannot help, fail the point immediately.
            _record_failure(summary, task.attempt, str(payload), note)

    try:
        while queue or running:
            draining = latch.interrupted
            if draining and not drained_note and running:
                note(
                    f"interrupt: waiting for {len(running)} in-flight "
                    "point(s) to finish and persist (Ctrl-C again to abort)"
                )
                drained_note = True
            if draining and not running:
                break
            now = time.monotonic()
            if not draining:
                launchable = [
                    attempt for attempt in queue if attempt.ready_at <= now
                ]
                while launchable and len(running) < jobs:
                    attempt = launchable.pop(0)
                    queue.remove(attempt)
                    launch(attempt)
            finished = [
                task for task in running
                if task.conn.poll() or not task.process.is_alive()
            ]
            for task in finished:
                collect(task)
            if timeout is not None:
                for task in list(running):
                    if time.monotonic() - task.started > timeout:
                        task.process.terminate()
                        task.process.join()
                        running.remove(task)
                        task.conn.close()
                        requeue_transient(
                            task.attempt, f"timed out after {timeout:.1f}s"
                        )
            if not finished:
                time.sleep(0.02)
    finally:
        for task in running:  # second Ctrl-C / unexpected error: hard stop
            task.process.terminate()
            task.process.join()
            task.conn.close()
