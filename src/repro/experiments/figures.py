"""Every figure and table of the paper's evaluation, as runnable experiments.

Each ``run_*`` function regenerates the rows/series of one paper exhibit
from fresh (cached) simulations and returns a result object with the
numbers plus a ``format()`` method producing a paper-style text table.
The mapping to paper exhibits is the experiment index in DESIGN.md §6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.schemes import Scheme
from repro.experiments.runner import point_signature, run_point
from repro.experiments.tables import format_table
from repro.sim.stats import geometric_mean
from repro.workloads.mixes import MIX_NAMES

#: Programs shown individually in Table 1 / Figure 3.
TABLE1_PROGRAMS = (
    "canneal", "ccomp", "graph500", "gups", "pagerank", "streamcluster",
)
FIGURE3_PROGRAMS = ("canneal", "ccomp", "graph500", "gups", "pagerank")

#: The four schemes of the headline comparison (Figure 7).
FIGURE7_SCHEMES = (
    Scheme.CONVENTIONAL, Scheme.POM_TLB, Scheme.CSALT_D, Scheme.CSALT_CD,
)


@dataclass
class SeriesResult:
    """A named family of per-mix series plus derived geomeans."""

    title: str
    headers: List[str]
    rows: List[List[object]]

    def format(self) -> str:
        return f"### {self.title}\n\n" + format_table(self.headers, self.rows)


def _geomean_row(label: str, columns: List[List[float]]) -> List[object]:
    return [label] + [geometric_mean(col) for col in columns]


# ----------------------------------------------------------------------
# Point enumeration
#
# Each ``points_*`` function pre-enumerates every evaluation point the
# matching ``run_*`` will request, as canonical run signatures (see
# ``runner.point_signature``).  The campaign pool simulates these across
# workers — with dedup, persistence and retry — *before* the exhibit
# renders, so ``run_*`` then only reads warm caches.  Keep each mirror
# in sync with its loop; ``tests/test_experiments.py`` cross-checks
# them against the signatures the runners actually simulate.
# ----------------------------------------------------------------------
def points_figure1(mixes: Sequence[str] = MIX_NAMES, **kw) -> List[Dict]:
    from repro.workloads.mixes import MIXES

    points = []
    for mix in mixes:
        points.append(point_signature(mix, Scheme.CONVENTIONAL, contexts=2, **kw))
        for program in sorted(set(MIXES[mix])):
            points.append(
                point_signature(program, Scheme.CONVENTIONAL, contexts=1, **kw)
            )
    return points


def points_table1(programs: Sequence[str] = TABLE1_PROGRAMS, **kw) -> List[Dict]:
    return [
        point_signature(
            program, Scheme.CONVENTIONAL, contexts=1,
            virtualized=virtualized, **kw,
        )
        for program in programs
        for virtualized in (False, True)
    ]


def points_figure3(programs: Sequence[str] = FIGURE3_PROGRAMS, **kw) -> List[Dict]:
    return [
        point_signature(program, Scheme.POM_TLB, contexts=2, **kw)
        for program in programs
    ]


def points_figure7(
    mixes: Sequence[str] = MIX_NAMES,
    schemes: Sequence[Scheme] = FIGURE7_SCHEMES,
    **kw,
) -> List[Dict]:
    points = []
    for mix in mixes:
        points.append(point_signature(mix, Scheme.POM_TLB, contexts=2, **kw))
        for scheme in schemes:
            points.append(point_signature(mix, scheme, contexts=2, **kw))
    return points


def points_figure8(mixes: Sequence[str] = MIX_NAMES, **kw) -> List[Dict]:
    return [
        point_signature(mix, Scheme.POM_TLB, contexts=2, **kw) for mix in mixes
    ]


def points_figure9(mix: str = "ccomp", **kw) -> List[Dict]:
    return [point_signature(mix, Scheme.CSALT_CD, contexts=2, **kw)]


def _points_relative_mpki(mixes: Sequence[str], **kw) -> List[Dict]:
    return [
        point_signature(mix, scheme, contexts=2, **kw)
        for mix in mixes
        for scheme in (Scheme.POM_TLB, Scheme.CSALT_D, Scheme.CSALT_CD)
    ]


def points_figure10(mixes: Sequence[str] = MIX_NAMES, **kw) -> List[Dict]:
    return _points_relative_mpki(mixes, **kw)


def points_figure11(mixes: Sequence[str] = MIX_NAMES, **kw) -> List[Dict]:
    return _points_relative_mpki(mixes, **kw)


def points_figure12(mixes: Sequence[str] = MIX_NAMES, **kw) -> List[Dict]:
    return [
        point_signature(mix, scheme, contexts=2, virtualized=False, **kw)
        for mix in mixes
        for scheme in (Scheme.POM_TLB, Scheme.CSALT_CD)
    ]


def points_figure13(mixes: Sequence[str] = MIX_NAMES, **kw) -> List[Dict]:
    return [
        point_signature(mix, scheme, contexts=2, **kw)
        for mix in mixes
        for scheme in (Scheme.POM_TLB, Scheme.TSB, Scheme.DIP, Scheme.CSALT_CD)
    ]


def points_figure14(
    mixes: Sequence[str] = MIX_NAMES,
    context_counts: Sequence[int] = (1, 2, 4),
    **kw,
) -> List[Dict]:
    return [
        point_signature(mix, scheme, contexts=contexts, **kw)
        for mix in mixes
        for contexts in context_counts
        for scheme in (Scheme.POM_TLB, Scheme.CSALT_CD)
    ]


def points_figure15(
    mixes: Sequence[str] = MIX_NAMES,
    epochs: Sequence[int] = (2_000, 4_000, 8_000),
    **kw,
) -> List[Dict]:
    default_epoch = epochs[len(epochs) // 2]
    wanted = list(epochs)
    if default_epoch not in wanted:
        wanted.append(default_epoch)
    return [
        point_signature(
            mix, Scheme.CSALT_CD, contexts=2, epoch_accesses=epoch, **kw
        )
        for mix in mixes
        for epoch in wanted
    ]


def points_figure16(
    mixes: Sequence[str] = MIX_NAMES,
    intervals_ms: Sequence[float] = (5.0, 10.0, 30.0),
    **kw,
) -> List[Dict]:
    return [
        point_signature(
            mix, scheme, contexts=2, switch_interval_ms=interval, **kw
        )
        for mix in mixes
        for interval in intervals_ms
        for scheme in (Scheme.POM_TLB, Scheme.CSALT_CD)
    ]


# ----------------------------------------------------------------------
# Figure 1 — L2 TLB MPKI ratio, context-switched vs not
# ----------------------------------------------------------------------
def run_figure1(
    mixes: Sequence[str] = MIX_NAMES, **run_kwargs
) -> SeriesResult:
    """Ratio of L2 TLB MPKI with 2 VM contexts over the 1-context baseline.

    Paper: geomean ratio > 6x with per-mix ratios roughly 2-11x.
    """
    from repro.workloads.mixes import MIXES

    rows: List[List[object]] = []
    ratios: List[float] = []
    for mix in mixes:
        switched = run_point(mix, Scheme.CONVENTIONAL, contexts=2, **run_kwargs)
        # Non-context-switched baseline: each of the pair's programs
        # running alone, combined by geomean (a floor keeps a fully
        # TLB-resident solo run from producing an unbounded ratio).
        solo_mpkis = []
        for program in set(MIXES[mix]):
            alone = run_point(
                program, Scheme.CONVENTIONAL, contexts=1, **run_kwargs
            )
            solo_mpkis.append(max(alone.l2_tlb_mpki, 0.25))
        base = geometric_mean(solo_mpkis)
        ratio = switched.l2_tlb_mpki / base
        ratios.append(ratio)
        rows.append([mix, switched.l2_tlb_mpki, base, ratio])
    rows.append(_geomean_row("geomean", [
        [r[1] for r in rows], [r[2] for r in rows], ratios,
    ]))
    return SeriesResult(
        "Figure 1: L2 TLB MPKI ratio (context switch / no context switch)",
        ["mix", "MPKI (2 ctx)", "MPKI (1 ctx)", "ratio"],
        rows,
    )


# ----------------------------------------------------------------------
# Table 1 — page-walk cycles per L2 TLB miss, native vs virtualized
# ----------------------------------------------------------------------
def run_table1(
    programs: Sequence[str] = TABLE1_PROGRAMS, **run_kwargs
) -> SeriesResult:
    """Average page-walk cycles per L2 TLB miss, no context switching.

    Paper: native 43-79 cycles; virtualized 61-1158 with the blow-up on
    the scattered-access workloads (connectedcomponent).
    """
    rows: List[List[object]] = []
    for program in programs:
        native = run_point(
            program, Scheme.CONVENTIONAL, contexts=1, virtualized=False,
            **run_kwargs,
        )
        virtualized = run_point(
            program, Scheme.CONVENTIONAL, contexts=1, virtualized=True,
            **run_kwargs,
        )
        rows.append([
            program,
            round(native.walk_cycles_per_l2_miss),
            round(virtualized.walk_cycles_per_l2_miss),
        ])
    return SeriesResult(
        "Table 1: average page-walk cycles per L2 TLB miss",
        ["benchmark", "native", "virtualized"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 3 — fraction of cache capacity occupied by TLB entries
# ----------------------------------------------------------------------
def run_figure3(
    programs: Sequence[str] = FIGURE3_PROGRAMS, **run_kwargs
) -> SeriesResult:
    """Mean fraction of L2/L3 data-cache lines holding translation entries.

    Paper: ~60% average, up to ~80% for connectedcomponent (POM-TLB
    organization, context-switched).
    """
    rows: List[List[object]] = []
    for program in programs:
        result = run_point(program, Scheme.POM_TLB, contexts=2, **run_kwargs)
        rows.append([
            program, result.mean_l2_tlb_occupancy, result.mean_l3_tlb_occupancy,
        ])
    rows.append(_geomean_row("geomean", [
        [r[1] for r in rows], [r[2] for r in rows],
    ]))
    return SeriesResult(
        "Figure 3: fraction of cache capacity occupied by TLB entries",
        ["benchmark", "L2 D$", "L3 D$"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 7 — headline performance comparison (normalized to POM-TLB)
# ----------------------------------------------------------------------
def run_figure7(
    mixes: Sequence[str] = MIX_NAMES,
    schemes: Sequence[Scheme] = FIGURE7_SCHEMES,
    **run_kwargs,
) -> SeriesResult:
    """IPC of each scheme normalized to POM-TLB, context-switched.

    Paper: conventional well below 1.0; CSALT-D ~1.11x and CSALT-CD
    ~1.25x geomean, with connectedcomponent the standout (2.24x).
    """
    rows: List[List[object]] = []
    columns: Dict[Scheme, List[float]] = {s: [] for s in schemes}
    for mix in mixes:
        baseline = run_point(mix, Scheme.POM_TLB, contexts=2, **run_kwargs)
        row: List[object] = [mix]
        for scheme in schemes:
            result = run_point(mix, scheme, contexts=2, **run_kwargs)
            relative = result.speedup_over(baseline)
            columns[scheme].append(relative)
            row.append(relative)
        rows.append(row)
    rows.append(_geomean_row("geomean", [columns[s] for s in schemes]))
    return SeriesResult(
        "Figure 7: performance normalized to POM-TLB",
        ["mix"] + [s.label for s in schemes],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 8 — fraction of page walks eliminated by the POM-TLB
# ----------------------------------------------------------------------
def run_figure8(
    mixes: Sequence[str] = MIX_NAMES, **run_kwargs
) -> SeriesResult:
    """Share of L2 TLB misses served without a page walk (paper: ~97%)."""
    rows: List[List[object]] = []
    for mix in mixes:
        result = run_point(mix, Scheme.POM_TLB, contexts=2, **run_kwargs)
        rows.append([mix, result.walks_eliminated_fraction])
    rows.append(_geomean_row("geomean", [[r[1] for r in rows]]))
    return SeriesResult(
        "Figure 8: fraction of page walks eliminated by POM-TLB",
        ["mix", "fraction eliminated"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 9 — TLB way-share over time (connected component deep dive)
# ----------------------------------------------------------------------
@dataclass
class TimelineResult:
    title: str
    l2_series: List[Tuple[int, float]]
    l3_series: List[Tuple[int, float]]

    def format(self) -> str:
        header = f"### {self.title}\n"

        def render(name: str, series: List[Tuple[int, float]]) -> str:
            if not series:
                return f"{name}: (no partition decisions)"
            points = "  ".join(f"{a}:{f:.2f}" for a, f in series)
            return f"{name} (access:tlb-share): {points}"

        return "\n".join([
            header,
            render("L2 D$", self.l2_series),
            render("L3 D$", self.l3_series),
        ])

    def variation(self) -> float:
        """Range of the L3 TLB share — nonzero means adaptation happened."""
        shares = [f for _, f in self.l3_series]
        if not shares:
            return 0.0
        return max(shares) - min(shares)


def run_figure9(mix: str = "ccomp", **run_kwargs) -> TimelineResult:
    """Partition-decision timeline under CSALT-CD (paper Figure 9)."""
    result = run_point(mix, Scheme.CSALT_CD, contexts=2, **run_kwargs)
    return TimelineResult(
        f"Figure 9: fraction of ways allocated to TLB over time ({mix})",
        result.l2_partition_timeline,
        result.l3_partition_timeline,
    )


# ----------------------------------------------------------------------
# Figures 10 & 11 — relative L2/L3 data-cache MPKI over POM-TLB
# ----------------------------------------------------------------------
def _run_relative_mpki(
    level: str, mixes: Sequence[str], **run_kwargs
) -> SeriesResult:
    schemes = (Scheme.POM_TLB, Scheme.CSALT_D, Scheme.CSALT_CD)
    rows: List[List[object]] = []
    columns: List[List[float]] = [[] for _ in schemes]
    for mix in mixes:
        baseline = run_point(mix, Scheme.POM_TLB, contexts=2, **run_kwargs)
        base_mpki = max(
            baseline.l2_cache_mpki if level == "l2" else baseline.l3_cache_mpki,
            1e-9,
        )
        row: List[object] = [mix]
        for index, scheme in enumerate(schemes):
            result = run_point(mix, scheme, contexts=2, **run_kwargs)
            mpki = result.l2_cache_mpki if level == "l2" else result.l3_cache_mpki
            columns[index].append(mpki / base_mpki)
            row.append(mpki / base_mpki)
        rows.append(row)
    rows.append(_geomean_row("geomean", columns))
    figure = "Figure 10" if level == "l2" else "Figure 11"
    return SeriesResult(
        f"{figure}: relative {level.upper()} data-cache MPKI over POM-TLB",
        ["mix", "POM-TLB", "CSALT-D", "CSALT-CD"],
        rows,
    )


def run_figure10(mixes: Sequence[str] = MIX_NAMES, **run_kwargs) -> SeriesResult:
    """Relative L2 D$ MPKI (paper: CSALT cuts up to ~30%, ccomp)."""
    return _run_relative_mpki("l2", mixes, **run_kwargs)


def run_figure11(mixes: Sequence[str] = MIX_NAMES, **run_kwargs) -> SeriesResult:
    """Relative L3 D$ MPKI (paper: CSALT-CD cuts up to ~26%, ccomp)."""
    return _run_relative_mpki("l3", mixes, **run_kwargs)


# ----------------------------------------------------------------------
# Figure 12 — CSALT-CD in the native (non-virtualized) context
# ----------------------------------------------------------------------
def run_figure12(mixes: Sequence[str] = MIX_NAMES, **run_kwargs) -> SeriesResult:
    """CSALT-CD over POM-TLB on native context-switched runs (paper: ~5%
    average, up to ~30% on connectedcomponent)."""
    rows: List[List[object]] = []
    for mix in mixes:
        baseline = run_point(
            mix, Scheme.POM_TLB, contexts=2, virtualized=False, **run_kwargs
        )
        result = run_point(
            mix, Scheme.CSALT_CD, contexts=2, virtualized=False, **run_kwargs
        )
        rows.append([mix, result.speedup_over(baseline)])
    rows.append(_geomean_row("geomean", [[r[1] for r in rows]]))
    return SeriesResult(
        "Figure 12: CSALT-CD performance in the native context (vs POM-TLB)",
        ["mix", "CSALT-CD"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 13 — comparison with TSB and DIP
# ----------------------------------------------------------------------
def run_figure13(mixes: Sequence[str] = MIX_NAMES, **run_kwargs) -> SeriesResult:
    """TSB vs DIP vs CSALT-CD, normalized to POM-TLB.

    Paper: CSALT-CD beats DIP by ~30% on average; TSB trails everything
    because of its multi-lookup translation path.
    """
    schemes = (Scheme.TSB, Scheme.DIP, Scheme.CSALT_CD)
    rows: List[List[object]] = []
    columns: List[List[float]] = [[] for _ in schemes]
    for mix in mixes:
        baseline = run_point(mix, Scheme.POM_TLB, contexts=2, **run_kwargs)
        row: List[object] = [mix]
        for index, scheme in enumerate(schemes):
            result = run_point(mix, scheme, contexts=2, **run_kwargs)
            relative = result.speedup_over(baseline)
            columns[index].append(relative)
            row.append(relative)
        rows.append(row)
    rows.append(_geomean_row("geomean", columns))
    return SeriesResult(
        "Figure 13: comparison with prior schemes (normalized to POM-TLB)",
        ["mix", "TSB", "DIP", "CSALT-CD"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 14 — sensitivity to the number of contexts per core
# ----------------------------------------------------------------------
def run_figure14(
    mixes: Sequence[str] = MIX_NAMES,
    context_counts: Sequence[int] = (1, 2, 4),
    **run_kwargs,
) -> SeriesResult:
    """CSALT-CD over POM-TLB at 1 / 2 / 4 contexts per core.

    Paper: gains grow with context pressure (4-context geomean ~1.33x).
    """
    rows: List[List[object]] = []
    columns: List[List[float]] = [[] for _ in context_counts]
    for mix in mixes:
        row: List[object] = [mix]
        for index, contexts in enumerate(context_counts):
            baseline = run_point(
                mix, Scheme.POM_TLB, contexts=contexts, **run_kwargs
            )
            result = run_point(
                mix, Scheme.CSALT_CD, contexts=contexts, **run_kwargs
            )
            relative = result.speedup_over(baseline)
            columns[index].append(relative)
            row.append(relative)
        rows.append(row)
    rows.append(_geomean_row("geomean", columns))
    return SeriesResult(
        "Figure 14: CSALT-CD gain vs contexts per core (normalized to POM-TLB)",
        ["mix"] + [f"{n} context{'s' if n > 1 else ''}" for n in context_counts],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 15 — sensitivity to the epoch length
# ----------------------------------------------------------------------
def run_figure15(
    mixes: Sequence[str] = MIX_NAMES,
    epochs: Sequence[int] = (2_000, 4_000, 8_000),
    **run_kwargs,
) -> SeriesResult:
    """CSALT-CD IPC at each epoch, normalized to the default epoch.

    The paper sweeps 128K/256K/512K accesses on full-length runs; the
    scaled epochs keep the same 0.5x/1x/2x spread around the default.
    """
    default_epoch = epochs[len(epochs) // 2]
    rows: List[List[object]] = []
    columns: List[List[float]] = [[] for _ in epochs]
    for mix in mixes:
        baseline = run_point(
            mix, Scheme.CSALT_CD, contexts=2, epoch_accesses=default_epoch,
            **run_kwargs,
        )
        row: List[object] = [mix]
        for index, epoch in enumerate(epochs):
            result = run_point(
                mix, Scheme.CSALT_CD, contexts=2, epoch_accesses=epoch,
                **run_kwargs,
            )
            relative = result.speedup_over(baseline)
            columns[index].append(relative)
            row.append(relative)
        rows.append(row)
    rows.append(_geomean_row("geomean", columns))
    return SeriesResult(
        "Figure 15: epoch-length sensitivity (normalized to default epoch)",
        ["mix"] + [f"epoch {e}" for e in epochs],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 16 — sensitivity to the context-switch interval
# ----------------------------------------------------------------------
def run_figure16(
    mixes: Sequence[str] = MIX_NAMES,
    intervals_ms: Sequence[float] = (5.0, 10.0, 30.0),
    **run_kwargs,
) -> SeriesResult:
    """CSALT-CD over POM-TLB at 5 / 10 / 30 ms quanta (paper: steady
    gains, slightly lower at 30 ms)."""
    rows: List[List[object]] = []
    columns: List[List[float]] = [[] for _ in intervals_ms]
    for mix in mixes:
        row: List[object] = [mix]
        for index, interval in enumerate(intervals_ms):
            baseline = run_point(
                mix, Scheme.POM_TLB, contexts=2,
                switch_interval_ms=interval, **run_kwargs,
            )
            result = run_point(
                mix, Scheme.CSALT_CD, contexts=2,
                switch_interval_ms=interval, **run_kwargs,
            )
            relative = result.speedup_over(baseline)
            columns[index].append(relative)
            row.append(relative)
        rows.append(row)
    rows.append(_geomean_row("geomean", columns))
    return SeriesResult(
        "Figure 16: context-switch interval sensitivity (vs POM-TLB)",
        ["mix"] + [f"{ms:g} ms" for ms in intervals_ms],
        rows,
    )
