"""Ablation studies for the design choices DESIGN.md Section 7 calls out.

These go beyond the paper's exhibits: they isolate individual CSALT
design decisions (static vs dynamic split, pseudo-LRU position estimates,
which cache levels to partition) the paper discusses in footnote 6 and
Sections 3.3-3.4 without plotting.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.schemes import Scheme
from repro.experiments.figures import SeriesResult, _geomean_row
from repro.experiments.runner import point_signature, run_point

#: Contended mixes where partitioning decisions matter most.
ABLATION_MIXES = ("ccomp", "can_ccomp", "canneal", "pagerank")


# ----------------------------------------------------------------------
# Point enumeration (see figures.py: pre-computed grids for the
# campaign pool; keep each mirror in sync with its run_* loop).
# ----------------------------------------------------------------------
def points_static_vs_dynamic(
    mixes: Sequence[str] = ABLATION_MIXES, **kw
) -> List[Dict]:
    schemes = (
        Scheme.POM_TLB, Scheme.CSALT_STATIC, Scheme.CSALT_D, Scheme.CSALT_CD,
    )
    return [
        point_signature(mix, scheme, contexts=2, **kw)
        for mix in mixes
        for scheme in schemes
    ]


def points_pseudo_lru(mixes: Sequence[str] = ABLATION_MIXES, **kw) -> List[Dict]:
    variants = (
        ("lru", False), ("nru", True), ("plru", True), ("rrip", True),
    )
    return [
        point_signature(
            mix, Scheme.CSALT_CD, contexts=2, replacement=replacement,
            estimate_positions=estimate, **kw,
        )
        for mix in mixes
        for replacement, estimate in variants
    ]


def points_partition_levels(
    mixes: Sequence[str] = ABLATION_MIXES, **kw
) -> List[Dict]:
    variants = (
        dict(partition_l2_only=True), dict(partition_l3_only=True), dict(),
    )
    points = []
    for mix in mixes:
        points.append(point_signature(mix, Scheme.POM_TLB, contexts=2, **kw))
        for options in variants:
            points.append(
                point_signature(
                    mix, Scheme.CSALT_CD, contexts=2, **options, **kw
                )
            )
    return points


def points_five_level_paging(
    mixes: Sequence[str] = ABLATION_MIXES, **kw
) -> List[Dict]:
    return [
        point_signature(
            mix, scheme, contexts=2, page_table_levels=levels, **kw
        )
        for mix in mixes
        for levels in (4, 5)
        for scheme in (Scheme.CONVENTIONAL, Scheme.POM_TLB, Scheme.CSALT_CD)
    ]


def points_tlb_prefetch(
    mixes: Sequence[str] = ("streamcluster", "can_stream", "gups", "ccomp"),
    **kw,
) -> List[Dict]:
    return [
        point_signature(
            mix, Scheme.CSALT_CD, contexts=2, tlb_prefetch=prefetch, **kw
        )
        for mix in mixes
        for prefetch in (False, True)
    ]


def run_static_vs_dynamic(
    mixes: Sequence[str] = ABLATION_MIXES, **run_kwargs
) -> SeriesResult:
    """Fixed half/half split vs CSALT-D vs CSALT-CD (paper footnote 6:
    no single static split wins across workloads)."""
    schemes = (Scheme.CSALT_STATIC, Scheme.CSALT_D, Scheme.CSALT_CD)
    rows: List[List[object]] = []
    columns: List[List[float]] = [[] for _ in schemes]
    for mix in mixes:
        baseline = run_point(mix, Scheme.POM_TLB, contexts=2, **run_kwargs)
        row: List[object] = [mix]
        for index, scheme in enumerate(schemes):
            result = run_point(mix, scheme, contexts=2, **run_kwargs)
            relative = result.speedup_over(baseline)
            columns[index].append(relative)
            row.append(relative)
        rows.append(row)
    rows.append(_geomean_row("geomean", columns))
    return SeriesResult(
        "Ablation: static vs dynamic partitioning (normalized to POM-TLB)",
        ["mix", "Static 50/50", "CSALT-D", "CSALT-CD"],
        rows,
    )


def run_pseudo_lru(
    mixes: Sequence[str] = ABLATION_MIXES, **run_kwargs
) -> SeriesResult:
    """Section 3.4: CSALT-CD on NRU / tree-PLRU caches with estimated
    stack positions, relative to true-LRU CSALT-CD.  The paper reports
    only minor degradation."""
    variants = (
        ("lru", False, "True-LRU"),
        ("nru", True, "NRU+estimate"),
        ("plru", True, "BT-PLRU+estimate"),
        ("rrip", True, "SRRIP+estimate"),
    )
    rows: List[List[object]] = []
    columns: List[List[float]] = [[] for _ in variants]
    for mix in mixes:
        baseline = run_point(
            mix, Scheme.CSALT_CD, contexts=2, replacement="lru",
            estimate_positions=False, **run_kwargs,
        )
        row: List[object] = [mix]
        for index, (replacement, estimate, _label) in enumerate(variants):
            result = run_point(
                mix, Scheme.CSALT_CD, contexts=2, replacement=replacement,
                estimate_positions=estimate, **run_kwargs,
            )
            relative = result.speedup_over(baseline)
            columns[index].append(relative)
            row.append(relative)
        rows.append(row)
    rows.append(_geomean_row("geomean", columns))
    return SeriesResult(
        "Ablation: replacement-policy stack estimates (vs true-LRU CSALT-CD)",
        ["mix"] + [label for _, _, label in variants],
        rows,
    )


def run_partition_levels(
    mixes: Sequence[str] = ABLATION_MIXES, **run_kwargs
) -> SeriesResult:
    """Partition only the L2s, only the L3, or both (the paper partitions
    both; this quantifies each level's contribution)."""
    variants = (
        (dict(partition_l2_only=True), "L2 only"),
        (dict(partition_l3_only=True), "L3 only"),
        (dict(), "L2+L3"),
    )
    rows: List[List[object]] = []
    columns: List[List[float]] = [[] for _ in variants]
    for mix in mixes:
        baseline = run_point(mix, Scheme.POM_TLB, contexts=2, **run_kwargs)
        row: List[object] = [mix]
        for index, (options, _label) in enumerate(variants):
            result = run_point(
                mix, Scheme.CSALT_CD, contexts=2, **options, **run_kwargs
            )
            relative = result.speedup_over(baseline)
            columns[index].append(relative)
            row.append(relative)
        rows.append(row)
    rows.append(_geomean_row("geomean", columns))
    return SeriesResult(
        "Ablation: partitioned cache levels (normalized to POM-TLB)",
        ["mix"] + [label for _, label in variants],
        rows,
    )


def run_five_level_paging(
    mixes: Sequence[str] = ABLATION_MIXES, **run_kwargs
) -> SeriesResult:
    """Extension: Intel LA57 five-level paging (paper Sections 1-2.1).

    The paper argues a fifth radix level "will only strengthen the
    motivation": nested walks get deeper (up to 35 references), so both
    the large L3 TLB and CSALT matter more.  Columns report mean walk
    cycles at 4 vs 5 levels (conventional system) and the CSALT-CD gain
    over POM-TLB at each depth.
    """
    rows: List[List[object]] = []
    walk4_col: List[float] = []
    walk5_col: List[float] = []
    gain4_col: List[float] = []
    gain5_col: List[float] = []
    for mix in mixes:
        walk_cycles = {}
        gains = {}
        for levels in (4, 5):
            conventional = run_point(
                mix, Scheme.CONVENTIONAL, contexts=2,
                page_table_levels=levels, **run_kwargs,
            )
            walk_cycles[levels] = conventional.walk_mean_cycles
            baseline = run_point(
                mix, Scheme.POM_TLB, contexts=2,
                page_table_levels=levels, **run_kwargs,
            )
            csalt = run_point(
                mix, Scheme.CSALT_CD, contexts=2,
                page_table_levels=levels, **run_kwargs,
            )
            gains[levels] = csalt.speedup_over(baseline)
        walk4_col.append(walk_cycles[4])
        walk5_col.append(walk_cycles[5])
        gain4_col.append(gains[4])
        gain5_col.append(gains[5])
        rows.append([
            mix, walk_cycles[4], walk_cycles[5], gains[4], gains[5],
        ])
    rows.append(_geomean_row(
        "geomean", [walk4_col, walk5_col, gain4_col, gain5_col]
    ))
    return SeriesResult(
        "Extension: five-level (LA57) paging",
        ["mix", "walk cyc (4-lvl)", "walk cyc (5-lvl)",
         "CSALT-CD gain (4-lvl)", "CSALT-CD gain (5-lvl)"],
        rows,
    )


def run_tlb_prefetch(
    mixes: Sequence[str] = ("streamcluster", "can_stream", "gups", "ccomp"),
    **run_kwargs,
) -> SeriesResult:
    """Extension: sequential TLB prefetching on top of CSALT-CD.

    The paper (Section 6) cites TLB prefetching as orthogonal to its
    capacity approach.  Streaming mixes should benefit (their L2 TLB
    misses are sequential); random-access mixes should be unharmed (the
    stream detector suppresses useless prefetches).
    """
    rows: List[List[object]] = []
    columns: List[List[float]] = [[], []]
    for mix in mixes:
        baseline = run_point(
            mix, Scheme.CSALT_CD, contexts=2, tlb_prefetch=False,
            **run_kwargs,
        )
        prefetching = run_point(
            mix, Scheme.CSALT_CD, contexts=2, tlb_prefetch=True,
            **run_kwargs,
        )
        no_prefetch = 1.0
        with_prefetch = prefetching.speedup_over(baseline)
        columns[0].append(no_prefetch)
        columns[1].append(with_prefetch)
        rows.append([mix, no_prefetch, with_prefetch])
    rows.append(_geomean_row("geomean", columns))
    return SeriesResult(
        "Extension: sequential TLB prefetching (vs CSALT-CD alone)",
        ["mix", "CSALT-CD", "CSALT-CD + prefetch"],
        rows,
    )
