"""Performance benchmarking harness: how fast is the simulator itself?

The repo's pytest "benchmarks" validate paper *numbers*; this module
measures the simulator's *host throughput* so a refactor that slows the
hot path 2x is caught before it lands.  ``repro bench`` runs a fixed
matrix of (mix, scheme, replacement) points, records host wall-clock
seconds plus derived accesses/second and simulated-cycles/second for
each, and writes the document as ``BENCH_<timestamp>.json``.

Runs execute with cycle accounting enabled — the observability default —
so the benchmark times the instrumented path users actually pay for.

A current run can be compared against a committed baseline
(``benchmarks/bench_baseline.json``) with a relative tolerance: CI's
``perf-smoke`` job fails when aggregate throughput regresses by more
than 25%.  The tolerance is deliberately loose — shared CI runners
jitter — so only step-function regressions trip it.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional

from repro.budget import Budget, BudgetMonitor
from repro.core.schemes import Scheme
from repro.errors import DataError
from repro.sim.config import small_config
from repro.sim.engine import run_simulation
from repro.telemetry import CycleAccountant, Telemetry
from repro.workloads.mixes import make_mix

SCHEMA_VERSION = 1

#: Throughput may drop this much relative to baseline before failing.
DEFAULT_TOLERANCE = 0.25

#: The quick matrix: one translation-light and one translation-heavy
#: point per scheme family, small enough for a CI smoke job.
QUICK_MATRIX: List[Dict[str, object]] = [
    {"mix": "gups", "scheme": "conventional", "replacement": "lru"},
    {"mix": "gups", "scheme": "pom-tlb", "replacement": "lru"},
    {"mix": "gups", "scheme": "csalt-cd", "replacement": "lru"},
]

#: The full matrix adds a second mix, the remaining schemes and a
#: non-default replacement policy.
FULL_MATRIX: List[Dict[str, object]] = QUICK_MATRIX + [
    {"mix": "gups", "scheme": "csalt-d", "replacement": "lru"},
    {"mix": "gups", "scheme": "tsb", "replacement": "lru"},
    {"mix": "graph500_gups", "scheme": "csalt-cd", "replacement": "lru"},
    {"mix": "graph500_gups", "scheme": "csalt-cd", "replacement": "plru"},
]

QUICK_ACCESSES = 8_000
FULL_ACCESSES = 40_000

#: Operations per micro-benchmark component (``repro bench --micro``).
MICRO_OPERATIONS = 20_000


class BenchError(DataError, RuntimeError):
    """A benchmark document could not be read or compared.

    A :class:`~repro.errors.DataError` (exit code 2); still a
    ``RuntimeError`` for pre-taxonomy callers.
    """


def _point_id(point: Dict[str, object]) -> str:
    return f"{point['mix']}/{point['scheme']}/{point['replacement']}"


def run_bench(
    quick: bool = False,
    accesses: Optional[int] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    deadline: Optional[float] = None,
) -> Dict[str, object]:
    """Run the benchmark matrix and return the result document.

    ``deadline`` (wall-clock seconds) bounds the whole matrix: points
    are only started while time remains, and a deadline hit raises
    :class:`~repro.errors.BudgetExceededError` carrying the truncated
    document (``error.document``) so the CLI can still write the
    artifact before exiting 7.  Completed points are never invalidated —
    a truncated benchmark is a shorter benchmark, not a wrong one.
    """
    matrix = QUICK_MATRIX if quick else FULL_MATRIX
    total = accesses if accesses is not None else (
        QUICK_ACCESSES if quick else FULL_ACCESSES
    )
    monitor: Optional[BudgetMonitor] = None
    if deadline is not None:
        monitor = BudgetMonitor(Budget(deadline_seconds=deadline))
        monitor.start()
    points: List[Dict[str, object]] = []

    def document(truncated: bool = False) -> Dict[str, object]:
        rates = [p["accesses_per_second"] for p in points
                 if p["accesses_per_second"] > 0]
        # Harmonic mean: total work over total time, so one slow point
        # is not papered over by several fast ones.
        aggregate = (
            len(rates) / sum(1.0 / r for r in rates) if rates else 0.0
        )
        result: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "quick": quick,
            "accesses_per_point": total,
            "seed": seed,
            "host": {
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "points": points,
            "aggregate_accesses_per_second": aggregate,
        }
        if truncated:
            result["truncated"] = {
                "reason": "deadline",
                "deadline_seconds": deadline,
                "points_run": len(points),
                "points_total": len(matrix),
            }
        return result

    try:
        for index, point in enumerate(matrix):
            if monitor is not None:
                monitor.beat(index)
                if monitor.sample() is not None:
                    error = monitor.build_error(
                        f"bench stopped after {len(points)} of "
                        f"{len(matrix)} matrix point(s)"
                    )
                    error.document = document(truncated=True)
                    raise error
            if progress is not None:
                progress(f"bench {_point_id(point)} x {total} accesses")
            config = small_config(
                scheme=Scheme(point["scheme"]),
                replacement=str(point["replacement"]),
            )
            workloads = make_mix(str(point["mix"]), scale=0.25)
            telemetry = Telemetry(accounting=CycleAccountant())
            result = run_simulation(
                config, workloads, total_accesses=total, seed=seed,
                workload_name=str(point["mix"]), telemetry=telemetry,
            )
            points.append({
                "point": _point_id(point),
                "mix": point["mix"],
                "scheme": point["scheme"],
                "replacement": point["replacement"],
                "accesses": total,
                "host_seconds": float(result.extra["host_seconds"]),
                "accesses_per_second": float(
                    result.extra["host_accesses_per_second"]
                ),
                "sim_cycles_per_second": float(
                    result.extra["host_sim_cycles_per_second"]
                ),
                "ipc": result.ipc,
            })
    finally:
        if monitor is not None:
            monitor.stop()
    return document()


# ----------------------------------------------------------------------
# Micro-benchmarks: one datapath layer at a time
# ----------------------------------------------------------------------
#
# ``run_bench`` times whole simulations, which is what users pay for but
# tells you nothing about *which* layer regressed.  The micro mode times
# each hot-path primitive in isolation — a cache hit probe, a cache
# miss-fill (victim selection included), an L1 TLB hit probe, and native /
# virtualized page walks — so a future PR that slows one layer shows up as
# one moved number instead of a whole-matrix bisection.  Inputs are fully
# deterministic (fixed address strides, no RNG), so run-to-run variance is
# host jitter only.

def _micro_cache_lookup(operations: int) -> Callable[[], float]:
    """Hit-path probes of a warm 32 KB / 8-way cache (every probe hits)."""
    from repro.mem.address import CACHE_LINE_BYTES
    from repro.mem.cache import Cache, LineKind

    cache = Cache("micro-l2", 1 << 15, ways=8, latency=10, policy="lru")
    lines = (1 << 15) // CACHE_LINE_BYTES
    resident = [line * CACHE_LINE_BYTES for line in range(lines)]
    kind = LineKind.DATA
    for address in resident:
        cache.fill(address, kind)
    # Stride 7 is coprime with the line count: all sets visited, no
    # trivially-predictable same-set streak.
    addresses = [resident[(i * 7) % lines] for i in range(operations)]
    lookup = cache.lookup

    def timed() -> float:
        start = time.perf_counter()
        for address in addresses:
            lookup(address, kind)
        return time.perf_counter() - start

    return timed


def _micro_cache_fill(operations: int) -> Callable[[], float]:
    """Miss-path (probe-miss then fill with victim selection): a
    2x-capacity working set keeps the LRU reuse distance (16 tags/set)
    above the associativity (8 ways), so steady state is ~100% fills."""
    from repro.mem.address import CACHE_LINE_BYTES
    from repro.mem.cache import Cache, LineKind

    cache = Cache("micro-l2", 1 << 15, ways=8, latency=10, policy="lru")
    lines = (1 << 15) // CACHE_LINE_BYTES
    span = lines * 2
    kind = LineKind.DATA
    addresses = [((i * 7) % span) * CACHE_LINE_BYTES
                 for i in range(operations)]
    lookup = cache.lookup
    fill = cache.fill

    def timed() -> float:
        start = time.perf_counter()
        for address in addresses:
            if not lookup(address, kind):
                fill(address, kind)
        return time.perf_counter() - start

    return timed


def _micro_tlb_lookup(operations: int) -> Callable[[], float]:
    """Hit-path probes of a full 64-entry / 4-way L1 TLB."""
    from repro.mem.address import Asid, PAGE_4K_BITS
    from repro.tlb.tlb import Tlb, TlbEntry

    tlb = Tlb("micro-l1d", entries=64, ways=4, latency=1)
    asid = Asid(vm_id=0, process_id=0)
    pages = [vpn << PAGE_4K_BITS for vpn in range(64)]
    for virtual_address in pages:
        tlb.insert(asid, virtual_address, TlbEntry(
            frame_base=virtual_address >> PAGE_4K_BITS,
            page_bits=PAGE_4K_BITS,
        ))
    addresses = [pages[(i * 7) % 64] for i in range(operations)]
    lookup = tlb.lookup

    def timed() -> float:
        start = time.perf_counter()
        for address in addresses:
            lookup(asid, address)
        return time.perf_counter() - start

    return timed


def _micro_walk(operations: int, native: bool) -> Callable[[], float]:
    """Full page walks through a real radix table with a stub memory
    accessor (fixed 4-cycle reference), so only walker + PSC + table
    code is on the clock.  64 distinct 2 MB regions cycled against a
    32-entry PDE cache keep the PDE level missing while PDP/PML4 hit —
    the steady-state mix a real run sees."""
    from repro.mem.address import Asid
    from repro.vm.physical_memory import HostPhysicalMemory
    from repro.vm.walker import PageWalker, VirtualMachine

    host_memory = HostPhysicalMemory(num_vms=1)
    vm = VirtualMachine(0, host_memory, native=native)
    asid = Asid(vm_id=0, process_id=0)
    regions = [region << 21 for region in range(64)]
    for virtual_address in regions:
        vm.ensure_mapped(asid.process_id, virtual_address)
    walker = PageWalker(lambda address, kind, is_write: 4)
    addresses = [regions[(i * 7) % 64] for i in range(operations)]

    if native:
        table = vm.guest_table(asid.process_id)
        walk = walker.walk_native

        def timed() -> float:
            start = time.perf_counter()
            for address in addresses:
                walk(asid, table, address)
            return time.perf_counter() - start
    else:
        walk = walker.walk_virtualized

        def timed() -> float:
            start = time.perf_counter()
            for address in addresses:
                walk(asid, vm, address)
            return time.perf_counter() - start

    return timed


#: Ordered (component name, builder) pairs; builders do all setup outside
#: the timed region and return a zero-arg callable yielding host seconds.
MICRO_COMPONENTS: List[tuple] = [
    ("cache.lookup", _micro_cache_lookup),
    ("cache.fill", _micro_cache_fill),
    ("tlb.lookup", _micro_tlb_lookup),
    ("walk.native", lambda operations: _micro_walk(operations, native=True)),
    ("walk.virtualized",
     lambda operations: _micro_walk(operations, native=False)),
]


def run_micro_bench(
    operations: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Time each datapath primitive in isolation; returns a document.

    The document shares ``schema_version`` and the ``points`` shape with
    :func:`run_bench` (so ``load_bench`` accepts it) but sets
    ``"micro": true`` and reports ``ns_per_op`` / ``ops_per_second``
    instead of simulation throughput.  Micro documents are informational:
    they are not compared against the committed baseline.
    """
    count = operations if operations is not None else MICRO_OPERATIONS
    points: List[Dict[str, object]] = []
    for name, builder in MICRO_COMPONENTS:
        if progress is not None:
            progress(f"micro {name} x {count} ops")
        elapsed = builder(count)()
        points.append({
            "point": name,
            "operations": count,
            "host_seconds": elapsed,
            "ns_per_op": elapsed / count * 1e9 if count else 0.0,
            "ops_per_second": count / elapsed if elapsed > 0 else 0.0,
        })
    return {
        "schema_version": SCHEMA_VERSION,
        "micro": True,
        "operations_per_point": count,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "points": points,
    }


def format_micro_bench(document: Dict[str, object]) -> str:
    """Human-readable table for one micro-benchmark document."""
    lines = [
        f"{'component':<20} {'ops':>9} {'seconds':>8} "
        f"{'ns/op':>9} {'ops/s':>12}"
    ]
    for point in document.get("points", []):
        lines.append(
            f"{point['point']:<20} {point['operations']:>9} "
            f"{point['host_seconds']:>8.3f} "
            f"{point['ns_per_op']:>9,.0f} "
            f"{point['ops_per_second']:>12,.0f}"
        )
    return "\n".join(lines)


def write_bench(
    document: Dict[str, object], out_dir: str = "."
) -> str:
    """Write ``BENCH_<timestamp>.json`` into ``out_dir``; returns path."""
    os.makedirs(out_dir, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    path = os.path.join(out_dir, f"BENCH_{stamp}.json")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict[str, object]:
    """Load and sanity-check a benchmark document."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchError(f"cannot read benchmark {path}: {exc}") from exc
    if not isinstance(document, dict) or "points" not in document:
        raise BenchError(f"{path} is not a benchmark document")
    if document.get("schema_version") != SCHEMA_VERSION:
        raise BenchError(
            f"{path}: schema_version "
            f"{document.get('schema_version')!r} != {SCHEMA_VERSION}"
        )
    return document


def compare_bench(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regressions of ``current`` vs ``baseline`` (empty = pass).

    Throughput is compared in relative terms: the aggregate and each
    matched point must stay above ``(1 - tolerance)`` of the baseline
    rate.  Points present on only one side are reported informationally
    by the CLI but are not failures — the matrix is allowed to grow.
    """
    problems: List[str] = []
    base_aggregate = float(baseline.get("aggregate_accesses_per_second", 0.0))
    cur_aggregate = float(current.get("aggregate_accesses_per_second", 0.0))
    if base_aggregate > 0 and cur_aggregate < base_aggregate * (1 - tolerance):
        problems.append(
            f"aggregate throughput {cur_aggregate:,.0f} acc/s is "
            f"{1 - cur_aggregate / base_aggregate:.1%} below baseline "
            f"{base_aggregate:,.0f} acc/s (tolerance {tolerance:.0%})"
        )
    base_points = {p["point"]: p for p in baseline.get("points", [])}
    for point in current.get("points", []):
        base = base_points.get(point["point"])
        if base is None:
            continue
        base_rate = float(base.get("accesses_per_second", 0.0))
        cur_rate = float(point.get("accesses_per_second", 0.0))
        if base_rate > 0 and cur_rate < base_rate * (1 - tolerance):
            problems.append(
                f"{point['point']}: {cur_rate:,.0f} acc/s is "
                f"{1 - cur_rate / base_rate:.1%} below baseline "
                f"{base_rate:,.0f} acc/s"
            )
    return problems


def format_bench(document: Dict[str, object]) -> str:
    """Human-readable table for one benchmark document."""
    lines = [
        f"{'point':<28} {'accesses':>9} {'seconds':>8} "
        f"{'acc/s':>10} {'Mcyc/s':>8}"
    ]
    for point in document.get("points", []):
        lines.append(
            f"{point['point']:<28} {point['accesses']:>9} "
            f"{point['host_seconds']:>8.2f} "
            f"{point['accesses_per_second']:>10,.0f} "
            f"{point['sim_cycles_per_second'] / 1e6:>8.2f}"
        )
    lines.append(
        f"aggregate (harmonic mean)               "
        f"{document.get('aggregate_accesses_per_second', 0.0):>10,.0f} acc/s"
    )
    return "\n".join(lines)
