"""Full reproduction report: run every experiment, render EXPERIMENTS-style
markdown.

Usage::

    python -m repro.experiments.report            # print to stdout
    python -m repro.experiments.report out.md     # write to a file

The richer entry point is ``repro report`` (see ``repro.cli``), which
adds crash-safe campaign execution: ``--jobs N`` fans the pre-enumerated
evaluation grid out across worker processes, ``--store DIR`` persists
every completed point, ``--resume`` replays only what is missing after
an interruption, and a point that keeps failing degrades its exhibit to
PARTIAL instead of aborting the campaign.
"""

from __future__ import annotations

import sys
import traceback
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.budget import BudgetMonitor
from repro.errors import BudgetExceededError, ReproError
from repro.experiments import ablations, figures, runner
from repro.experiments.pool import CampaignSummary, run_campaign
from repro.experiments.runner import (
    PointFailedError,
    cache_size,
    default_total_accesses,
)
from repro.experiments.store import ResultStore

#: Paper-expectation notes shown next to each exhibit.
PAPER_NOTES = {
    "figure1": "paper: geomean ratio >6x, per-mix roughly 2-11x",
    "table1": "paper: native 43-79 cycles, virtualized 61-1158",
    "figure3": "paper: ~60% average occupancy, ~80% peak (ccomp)",
    "figure7": "paper: Conventional ~0.54x, CSALT-D ~1.11x, CSALT-CD ~1.25x geomean",
    "figure8": "paper: ~97% of page walks eliminated",
    "figure9": "paper: TLB share tracks application phases",
    "figure10": "paper: CSALT reduces L2 MPKI, up to ~30% (ccomp)",
    "figure11": "paper: CSALT-CD reduces L3 MPKI, up to ~26% (ccomp)",
    "figure12": "paper: ~5% geomean gain natively, ~30% peak (ccomp)",
    "figure13": "paper: CSALT-CD ~30% over DIP; TSB trails all schemes",
    "figure14": "paper: gain grows with contexts (4-ctx ~1.33x)",
    "figure15": "paper: default epoch best for most mixes",
    "figure16": "paper: steady gains, slightly lower at 30 ms",
}

EXPERIMENTS: List = [
    ("figure1", figures.run_figure1),
    ("table1", figures.run_table1),
    ("figure3", figures.run_figure3),
    ("figure7", figures.run_figure7),
    ("figure8", figures.run_figure8),
    ("figure9", figures.run_figure9),
    ("figure10", figures.run_figure10),
    ("figure11", figures.run_figure11),
    ("figure12", figures.run_figure12),
    ("figure13", figures.run_figure13),
    ("figure14", figures.run_figure14),
    ("figure15", figures.run_figure15),
    ("figure16", figures.run_figure16),
    ("ablation-static", ablations.run_static_vs_dynamic),
    ("ablation-pseudo-lru", ablations.run_pseudo_lru),
    ("ablation-partition-levels", ablations.run_partition_levels),
    ("extension-5level", ablations.run_five_level_paging),
    ("extension-prefetch", ablations.run_tlb_prefetch),
]

#: Exhibit name -> function enumerating its evaluation points (run
#: signatures).  The campaign pool pre-simulates these before the
#: exhibit renders; an exhibit without an enumerator simply simulates
#: inline when it renders.
POINT_ENUMERATORS: Dict[str, Callable] = {
    "figure1": figures.points_figure1,
    "table1": figures.points_table1,
    "figure3": figures.points_figure3,
    "figure7": figures.points_figure7,
    "figure8": figures.points_figure8,
    "figure9": figures.points_figure9,
    "figure10": figures.points_figure10,
    "figure11": figures.points_figure11,
    "figure12": figures.points_figure12,
    "figure13": figures.points_figure13,
    "figure14": figures.points_figure14,
    "figure15": figures.points_figure15,
    "figure16": figures.points_figure16,
    "ablation-static": ablations.points_static_vs_dynamic,
    "ablation-pseudo-lru": ablations.points_pseudo_lru,
    "ablation-partition-levels": ablations.points_partition_levels,
    "extension-5level": ablations.points_five_level_paging,
    "extension-prefetch": ablations.points_tlb_prefetch,
}


@dataclass
class ReportDocument:
    """A rendered report plus per-exhibit status for strict callers."""

    text: str
    statuses: Dict[str, str] = field(default_factory=dict)  # name -> ok|partial
    campaign: Optional[CampaignSummary] = None
    #: Set when a resource budget stopped the campaign: the report still
    #: rendered (PARTIAL where points are missing), but the caller owes
    #: the user exit code 7 and a resume hint.
    budget_breach: Optional[BudgetExceededError] = None

    @property
    def partial_exhibits(self) -> List[str]:
        return [
            name for name, status in self.statuses.items() if status != "ok"
        ]

    @property
    def complete(self) -> bool:
        return not self.partial_exhibits


def enumerate_points(
    experiments: Sequence[Tuple[str, Callable]]
) -> List[Dict[str, object]]:
    """Every run signature the given exhibits will request (with dups)."""
    points: List[Dict[str, object]] = []
    for name, _ in experiments:
        enumerator = POINT_ENUMERATORS.get(name)
        if enumerator is not None:
            points.extend(enumerator())
    return points


def build_report(
    progress: Callable[[str], None] = lambda s: None,
    *,
    experiments: Optional[Sequence[Tuple[str, Callable]]] = None,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    timeout: Optional[float] = None,
    retries: int = 2,
    checkpoint_every: Optional[int] = None,
    monitor: Optional[BudgetMonitor] = None,
) -> ReportDocument:
    """Generate the report, optionally through a crash-safe campaign.

    When a ``store`` is given or ``jobs > 1``, the exhibits' evaluation
    grids are pre-enumerated and drained by the worker pool first
    (persistent, deduplicated, fault-isolated); rendering then reads
    warm caches.  An exhibit whose points failed renders as PARTIAL with
    the error attached — the rest of the report still completes.

    ``monitor`` runs the campaign under resource budgets: on a hard
    breach the report is *still rendered* from whatever completed
    (breach-skipped points show as PARTIAL), and the breach is returned
    in ``document.budget_breach`` so the CLI can write the artifact and
    then exit 7.
    """
    selected = list(experiments if experiments is not None else EXPERIMENTS)
    campaign = None
    breach: Optional[BudgetExceededError] = None
    if store is not None or jobs > 1 or monitor is not None:
        if store is not None:
            runner.set_store(store, consult=resume)
        try:
            campaign = run_campaign(
                enumerate_points(selected),
                jobs=jobs, store=store, resume=resume,
                timeout=timeout, retries=retries, progress=progress,
                checkpoint_every=checkpoint_every, monitor=monitor,
            )
        except BudgetExceededError as exc:
            breach = exc
            campaign = getattr(exc, "summary", None)
        if campaign is not None:
            progress(f"campaign: {campaign.format()}")
    document = ReportDocument(
        text="", campaign=campaign, budget_breach=breach
    )
    sections = [
        "# CSALT reproduction report",
        "",
        f"Generated by `python -m repro.experiments.report` "
        f"({default_total_accesses()} accesses/run, quarter-scale preset; "
        "see DESIGN.md Section 5).",
        "",
    ]
    if breach is not None:
        sections.append(
            f"> **PARTIAL — budget exceeded ({breach.dimension})**: "
            f"{breach}\n"
        )
    for name, experiment in selected:
        started = perf_counter()
        try:
            result = experiment()
        except PointFailedError as exc:
            document.statuses[name] = "partial"
            sections.append(_partial_section(name, str(exc)))
            progress(f"{name}: PARTIAL ({exc})")
        except (KeyboardInterrupt, SystemExit):
            raise
        except ReproError as exc:
            # A classified failure: degrade the exhibit, keep the report.
            document.statuses[name] = "partial"
            error = f"{type(exc).__name__}: {exc}"
            sections.append(_partial_section(name, error))
            progress(f"{name}: PARTIAL ({error})")
        except Exception as exc:  # defense: no exhibit may kill the report
            document.statuses[name] = "partial"
            error = f"unexpected {type(exc).__name__}: {exc}"
            sections.append(_partial_section(name, error))
            progress(traceback.format_exc())
            progress(f"{name}: PARTIAL ({error})")
        else:
            document.statuses[name] = "ok"
            sections.append(result.format())
            progress(f"{name}: done in {perf_counter() - started:.1f}s "
                     f"({cache_size()} cached runs)")
        note = PAPER_NOTES.get(name)
        if note:
            sections.append(f"\n*{note}*")
        sections.append("")
    document.text = "\n".join(sections)
    return document


def _partial_section(name: str, error: str) -> str:
    return (
        f"### {name} — PARTIAL\n\n"
        f"This exhibit could not be fully regenerated: {error}\n\n"
        "Re-run with `repro report --resume --store DIR` to retry the "
        "missing points."
    )


def generate_report(
    progress: Callable[[str], None] = lambda s: None, **kwargs
) -> str:
    """Run every experiment and return the markdown report text."""
    return build_report(progress, **kwargs).text


def main(argv: List[str]) -> int:
    report = generate_report(progress=lambda s: print(s, file=sys.stderr))
    if len(argv) > 1:
        with open(argv[1], "w") as handle:
            handle.write(report + "\n")
        print(f"wrote {argv[1]}", file=sys.stderr)
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
