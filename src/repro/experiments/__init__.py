"""repro.experiments subpackage: the paper's evaluation, runnable.

``figures`` has one ``run_*`` per paper exhibit (plus ``points_*``
pre-enumerating each exhibit's evaluation grid), ``ablations`` the
design ablations and extensions, ``runner`` the cached per-point
simulator (memory -> disk -> simulate), ``store`` the persistent
content-addressed result store, ``pool`` the fault-isolated campaign
executor, and ``report`` the all-in-one markdown generator
(``python -m repro.experiments.report``).
"""

from repro.experiments.pool import (
    CampaignInterrupted,
    CampaignSummary,
    PointFailure,
    run_campaign,
)
from repro.experiments.runner import (
    PointFailedError,
    clear_cache,
    point_signature,
    run_point,
    set_store,
)
from repro.experiments.store import ResultStore

__all__ = [
    "CampaignInterrupted",
    "CampaignSummary",
    "PointFailedError",
    "PointFailure",
    "ResultStore",
    "clear_cache",
    "point_signature",
    "run_campaign",
    "run_point",
    "set_store",
]
