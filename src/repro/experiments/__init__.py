"""repro.experiments subpackage: the paper's evaluation, runnable.

``figures`` has one ``run_*`` per paper exhibit, ``ablations`` the design
ablations and extensions, ``runner`` the cached per-point simulator, and
``report`` the all-in-one markdown generator
(``python -m repro.experiments.report``).
"""

from repro.experiments.runner import clear_cache, run_point

__all__ = ["clear_cache", "run_point"]
