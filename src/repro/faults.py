"""Deterministic fault injection: seeded chaos for the robustness layer.

PRs 2–4 built the survival machinery — crash-safe result store, retrying
worker pool, checksummed checkpoints — but those recovery paths only run
when the host actually misbehaves.  This module makes failure a
first-class, *reproducible* input: a declarative :class:`FaultPlan`
names *fault points* threaded through the I/O and orchestration layers
and says when each should fire; ``repro chaos`` then runs a campaign
under the plan and asserts the end state (see
:mod:`repro.experiments.chaos` and ``docs/chaos.md``).

Design rules:

* **zero overhead unarmed** — every hook site guards with one
  ``faults.ACTIVE is not None`` check (the same idiom as telemetry), so
  production runs pay nothing;
* **deterministic** — each spec draws from its own ``random.Random``
  seeded from ``(plan.seed, spec index, point name)``; the same plan
  over the same campaign fires the same faults;
* **honest failures** — fault points raise the *real* exception type
  the failure would produce (``OSError``, truncated bytes on disk, a
  hard ``os._exit``), so the recovery path exercised is exactly the
  production one;
* **accounted** — every injected fault is recorded in the injector, in
  the telemetry event trace / metrics registry (when attached), and in
  a durable append-only JSONL *fault log* that survives worker crashes
  (children fork the armed injector and append to the same file).

Fault-point catalogue (``FAULT_POINTS``): see ``docs/chaos.md`` for
behavior, context keys and the recovery each point exercises.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.telemetry.events import EVENT_FAULT

#: Environment knobs: arm any process (CLI entry points call
#: :func:`arm_from_env`) with a plan file / fault-log path.
ENV_PLAN = "REPRO_FAULT_PLAN"
ENV_LOG = "REPRO_FAULT_LOG"

#: Every fault point a plan may reference, with a one-line contract.
FAULT_POINTS: Dict[str, str] = {
    "store.save.io_error": (
        "raise OSError(EIO) while persisting a result (write fails cleanly)"
    ),
    "store.save.torn_write": (
        "persist only the first half of a result entry (torn write that "
        "still lands via os.replace)"
    ),
    "store.save.corrupt_byte": (
        "flip one byte of a result entry before it lands (bit rot)"
    ),
    "store.save.wrong_signature": (
        "persist the entry under a mutated signature (hash collision / "
        "hand-edited file)"
    ),
    "store.enospc": (
        "raise OSError(ENOSPC) while persisting a result (disk full; must "
        "surface as DiskFullError, exit 7, resumable)"
    ),
    "store.load.io_error": (
        "raise OSError(EIO) while reading a store entry (transient read "
        "failure; the loader must degrade to a miss)"
    ),
    "checkpoint.write.io_error": (
        "raise OSError(EIO) mid checkpoint write (previous snapshot must "
        "survive, temp file must not leak)"
    ),
    "checkpoint.write.torn_payload": (
        "write a checkpoint whose payload is truncated to half (header "
        "promises more bytes than the file holds)"
    ),
    "checkpoint.write.flip_checksum": (
        "corrupt the checkpoint header's sha256 (reader must reject)"
    ),
    "checkpoint.enospc": (
        "raise OSError(ENOSPC) mid checkpoint write (disk full; previous "
        "snapshot must survive and DiskFullError must surface)"
    ),
    "checkpoint.read.io_error": (
        "raise OSError(EIO) while reading a checkpoint"
    ),
    "pool.worker.crash": (
        "hard-exit the worker process (os._exit) before it simulates — "
        "an OOM-kill stand-in; the pool must retry"
    ),
    "pool.worker.hang": (
        "sleep inside the worker (args.seconds, default 3600) — the "
        "pool's per-point timeout must kill and retry it"
    ),
    "pool.worker.error": (
        "raise InjectedFaultError inside the worker — a deterministic "
        "simulation failure; the pool must fail the point, not retry"
    ),
    "pool.worker.lost_result": (
        "simulate successfully but exit without shipping the result — "
        "the pool must treat it as a dead worker and retry"
    ),
    "trace.record.truncate_thread": (
        "record a trace with thread 0's address array truncated to half "
        "(malformed record; the loader must reject it loudly)"
    ),
    "trace.load.io_error": (
        "raise OSError(EIO) while loading a trace file"
    ),
}


@dataclass
class FaultSpec:
    """One arming of one fault point.

    ``when`` filters on the context keys the hook site passes to
    :meth:`FaultInjector.fire` (e.g. ``{"attempt": 1}`` fires only on a
    point's first attempt — the deterministic way to express "crash
    once, then recover" across worker processes whose trigger counters
    do not survive the crash).  ``after`` skips the first N matching
    hits; ``max_triggers`` bounds firings (``None`` = unbounded);
    ``probability`` < 1 samples from the spec's own seeded stream.
    ``args`` carries mode-specific knobs (e.g. ``seconds`` for
    ``pool.worker.hang``, ``exit_code`` for ``pool.worker.crash``).
    """

    point: str
    probability: float = 1.0
    max_triggers: Optional[int] = 1
    after: int = 0
    when: Dict[str, object] = field(default_factory=dict)
    args: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise ConfigError(
                f"unknown fault point {self.point!r}; known points: {known}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"{self.point}: probability must be in [0, 1], got "
                f"{self.probability}"
            )
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ConfigError(
                f"{self.point}: max_triggers must be positive or null, got "
                f"{self.max_triggers}"
            )
        if self.after < 0:
            raise ConfigError(
                f"{self.point}: after cannot be negative, got {self.after}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "point": self.point,
            "probability": self.probability,
            "max_triggers": self.max_triggers,
            "after": self.after,
            "when": dict(self.when),
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "FaultSpec":
        if not isinstance(record, dict):
            raise ConfigError(f"fault spec must be an object, got {record!r}")
        unknown = set(record) - {
            "point", "probability", "max_triggers", "after", "when", "args"
        }
        if unknown:
            raise ConfigError(
                f"fault spec has unknown field(s): {sorted(unknown)}"
            )
        if "point" not in record:
            raise ConfigError(f"fault spec is missing 'point': {record!r}")
        return cls(
            point=str(record["point"]),
            probability=float(record.get("probability", 1.0)),
            max_triggers=(
                None if record.get("max_triggers", 1) is None
                else int(record.get("max_triggers", 1))
            ),
            after=int(record.get("after", 0)),
            when=dict(record.get("when", {})),
            args=dict(record.get("args", {})),
        )


@dataclass
class FaultPlan:
    """A declarative, JSON-able set of armed fault specs."""

    faults: List[FaultSpec] = field(default_factory=list)
    seed: int = 0
    name: str = "unnamed"

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "FaultPlan":
        if not isinstance(record, dict):
            raise ConfigError(f"fault plan must be an object, got {record!r}")
        unknown = set(record) - {"name", "seed", "faults"}
        if unknown:
            raise ConfigError(
                f"fault plan has unknown field(s): {sorted(unknown)}"
            )
        faults = record.get("faults", [])
        if not isinstance(faults, list):
            raise ConfigError("fault plan 'faults' must be a list")
        return cls(
            faults=[FaultSpec.from_dict(spec) for spec in faults],
            seed=int(record.get("seed", 0)),
            name=str(record.get("name", "unnamed")),
        )

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        try:
            with open(path) as handle:
                record = json.load(handle)
        except OSError as exc:
            raise ConfigError(f"cannot read fault plan {path}: {exc}") from exc
        except ValueError as exc:
            raise ConfigError(
                f"fault plan {path} is not valid JSON: {exc}"
            ) from exc
        plan = cls.from_dict(record)
        if plan.name == "unnamed":
            plan.name = os.path.basename(str(path))
        return plan


class _SpecState:
    """Per-spec runtime state: hit/trigger counters + seeded stream."""

    __slots__ = ("spec", "rng", "hits", "triggers")

    def __init__(self, spec: FaultSpec, plan_seed: int, index: int):
        self.spec = spec
        tag = f"repro.fault:{plan_seed}:{index}:{spec.point}".encode("utf-8")
        self.rng = random.Random(
            int.from_bytes(hashlib.blake2b(tag, digest_size=8).digest(), "big")
        )
        self.hits = 0
        self.triggers = 0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at every reached fault point.

    ``telemetry`` (optional) receives one :data:`EVENT_FAULT` trace
    event and a ``faults.<point>`` counter increment per injection.
    ``log_path`` (optional) appends one JSON line per injection —
    opened, written and closed per event so the record survives a
    worker that ``os._exit``\\ s immediately afterwards, and forked
    children append to the same file.
    """

    def __init__(
        self,
        plan: FaultPlan,
        telemetry=None,
        log_path: Optional[str] = None,
    ):
        self.plan = plan
        self.telemetry = telemetry
        self.log_path = str(log_path) if log_path is not None else None
        self.records: List[Dict[str, object]] = []
        self._states: Dict[str, List[_SpecState]] = {}
        for index, spec in enumerate(plan.faults):
            self._states.setdefault(spec.point, []).append(
                _SpecState(spec, plan.seed, index)
            )

    # ------------------------------------------------------------------
    def fire(self, point: str, **context: object) -> Optional[FaultSpec]:
        """Decide whether ``point`` faults now; record it if so.

        Returns the firing :class:`FaultSpec` (the hook site interprets
        its ``args``) or ``None``.  The first matching spec wins.
        """
        states = self._states.get(point)
        if not states:
            return None
        for state in states:
            spec = state.spec
            if spec.when and any(
                context.get(key) != value for key, value in spec.when.items()
            ):
                continue
            state.hits += 1
            if state.hits <= spec.after:
                continue
            if (
                spec.max_triggers is not None
                and state.triggers >= spec.max_triggers
            ):
                continue
            if spec.probability < 1.0 and state.rng.random() >= spec.probability:
                continue
            state.triggers += 1
            self._record(point, spec, state.triggers, context)
            return spec
        return None

    @property
    def injected(self) -> int:
        """Faults injected *in this process* (children count separately;
        the shared fault log is the cross-process ledger)."""
        return len(self.records)

    def recent(self, count: int = 16) -> List[Dict[str, object]]:
        """The last ``count`` injection records (newest last)."""
        return self.records[-count:]

    # ------------------------------------------------------------------
    def _record(
        self,
        point: str,
        spec: FaultSpec,
        trigger: int,
        context: Dict[str, object],
    ) -> None:
        record = {
            "point": point,
            "plan": self.plan.name,
            "trigger": trigger,
            "pid": os.getpid(),
            "context": _jsonable(context),
        }
        self.records.append(record)
        if self.telemetry is not None:
            if self.telemetry.tracer is not None:
                self.telemetry.emit(
                    EVENT_FAULT, 0.0, point=point, trigger=trigger,
                    **_jsonable(context),
                )
            if self.telemetry.metrics is not None:
                self.telemetry.metrics.counter(f"faults.{point}").inc()
        if self.log_path is not None:
            try:
                with open(self.log_path, "a") as handle:
                    handle.write(
                        json.dumps(record, sort_keys=True) + "\n"
                    )
                    handle.flush()
            except OSError:
                pass  # the log is evidence, never a new failure mode


def _jsonable(context: Dict[str, object]) -> Dict[str, object]:
    return {
        key: (
            value if isinstance(value, (int, float, str, bool, type(None)))
            else repr(value)
        )
        for key, value in context.items()
    }


def flip_byte(data: bytes, offset: Optional[int] = None) -> bytes:
    """``data`` with one byte XOR-flipped (defaults to the middle byte)."""
    if not data:
        return data
    index = (len(data) // 2) if offset is None else (offset % len(data))
    mutated = bytearray(data)
    mutated[index] ^= 0xFF
    return bytes(mutated)


# ----------------------------------------------------------------------
# Global arming (hook sites read ``faults.ACTIVE`` — one attribute load)
# ----------------------------------------------------------------------
ACTIVE: Optional[FaultInjector] = None


def arm(
    plan: FaultPlan,
    telemetry=None,
    log_path: Optional[str] = None,
) -> FaultInjector:
    """Arm ``plan`` process-wide and return the live injector.

    Forked worker processes (the campaign pool prefers the fork start
    method) inherit the armed injector, so worker-side fault points fire
    under the same plan.
    """
    global ACTIVE
    ACTIVE = FaultInjector(plan, telemetry=telemetry, log_path=log_path)
    return ACTIVE


def disarm() -> Optional[FaultInjector]:
    """Disarm fault injection; returns the injector that was active."""
    global ACTIVE
    previous, ACTIVE = ACTIVE, None
    return previous


def get_active() -> Optional[FaultInjector]:
    return ACTIVE


@contextmanager
def armed(plan: FaultPlan, telemetry=None, log_path: Optional[str] = None):
    """``with faults.armed(plan): ...`` — scoped arming for tests."""
    injector = arm(plan, telemetry=telemetry, log_path=log_path)
    try:
        yield injector
    finally:
        disarm()


def arm_from_env(telemetry=None) -> Optional[FaultInjector]:
    """Arm from ``REPRO_FAULT_PLAN`` (a plan file path) if set.

    ``REPRO_FAULT_LOG`` names the fault log.  Lets any entry point —
    including CI driving the plain ``repro report`` CLI — run under a
    plan without new flags.  No-op (returns the current injector, maybe
    ``None``) when the variable is unset or something is already armed.
    """
    if ACTIVE is not None:
        return ACTIVE
    plan_path = os.environ.get(ENV_PLAN)
    if not plan_path:
        return None
    return arm(
        FaultPlan.from_file(plan_path),
        telemetry=telemetry,
        log_path=os.environ.get(ENV_LOG),
    )
