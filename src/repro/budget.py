"""Resource-budgeted execution: deadlines, memory ceilings, disk quotas.

The paper's evaluation runs 10B-instruction campaigns across dozens of
points; a reproduction of that scale must operate under explicit
resource budgets instead of assuming infinite time, memory and disk.
This module is the governance layer the engine, the campaign pool, the
result store, the checkpoint writer and the telemetry ring all consult:

* a :class:`Budget` — the declarative limits: wall-clock
  ``deadline_seconds``, ``max_rss_bytes`` (resident-set ceiling),
  ``disk_quota_bytes`` (store + checkpoints + exported outputs) and
  ``max_events`` (telemetry event budget);
* a :class:`BudgetMonitor` — a daemon thread beside the engine's
  :class:`~repro.checkpoint.StallWatchdog` (both extend
  :class:`~repro.checkpoint.HeartbeatDaemon`) that samples usage and
  classifies each dimension as ``ok``, ``soft`` or ``hard``.

Every budget has two thresholds:

* **soft** (default 85% of the limit) triggers *graceful degradation*:
  the telemetry ring downsamples (dropped events are accounted in the
  tracer and the ``telemetry.downsampled`` counter), the engine doubles
  its checkpoint cadence, and the campaign pool stops admitting new
  points while in-flight ones finish and persist;
* **hard** (100%) triggers *checkpoint-then-stop*: the engine snapshots
  via its :class:`~repro.checkpoint.CheckpointWriter`, the campaign
  drains exactly like a SIGINT, and
  :class:`~repro.errors.BudgetExceededError` surfaces with the stable
  exit code 7 — the run is resumable, and a resumed run without budgets
  converges to the never-budgeted result byte-for-byte (the CI
  ``budget-smoke`` job enforces this).

Enforcement is cooperative: the monitor thread only *observes* (it never
touches simulator state), and the main loops read one attribute per
iteration — the same zero-overhead-unarmed idiom as telemetry and fault
injection.  Disk accounting is a ledger: directories registered with
:meth:`BudgetMonitor.track_directory` are scanned once at arming and
rescanned periodically; the store and checkpoint writers charge bytes
incrementally between scans via the process-wide :data:`ACTIVE` monitor
(forked campaign workers inherit a passive copy — their monitor thread
does not survive the fork — so worker-side quota prechecks are a
best-effort guard while the parent's monitor is the authority).

See ``docs/budgets.md`` for the budget model and the degradation ladder.
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.checkpoint import HeartbeatDaemon
from repro.errors import BudgetExceededError, ConfigError, DiskFullError

#: Fraction of a limit at which graceful degradation begins.
DEFAULT_SOFT_FRACTION = 0.85

#: Keep one event in this many while the telemetry ring is degraded.
DEFAULT_DOWNSAMPLE_STRIDE = 8

#: How often the monitor thread samples usage (seconds).
DEFAULT_POLL_SECONDS = 0.2

#: How often tracked directories are rescanned to reconcile the disk
#: ledger with writers the monitor cannot see (other processes, prunes).
DEFAULT_DISK_RESCAN_SECONDS = 1.0

#: Budget dimensions, in reporting order.
DIMENSIONS = ("deadline", "rss", "disk", "events")

LEVEL_OK = "ok"
LEVEL_SOFT = "soft"
LEVEL_HARD = "hard"

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": 1 << 10, "kb": 1 << 10, "kib": 1 << 10,
    "m": 1 << 20, "mb": 1 << 20, "mib": 1 << 20,
    "g": 1 << 30, "gb": 1 << 30, "gib": 1 << 30,
    "t": 1 << 40, "tb": 1 << 40, "tib": 1 << 40,
}

_DURATION_SUFFIXES = {
    "": 1.0,
    "s": 1.0,
    "m": 60.0, "min": 60.0,
    "h": 3600.0,
    "d": 86400.0,
}


def parse_size(text: str) -> int:
    """``"512M"``/``"2GiB"``/``"1048576"`` -> bytes (case-insensitive)."""
    match = re.fullmatch(
        r"\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*", str(text)
    )
    if not match:
        raise ConfigError(f"cannot parse size {text!r} (try '512M', '2G')")
    value, suffix = match.groups()
    multiplier = _SIZE_SUFFIXES.get(suffix.lower())
    if multiplier is None:
        raise ConfigError(
            f"unknown size suffix {suffix!r} in {text!r} "
            f"(known: {', '.join(sorted(s for s in _SIZE_SUFFIXES if s))})"
        )
    return int(float(value) * multiplier)


def parse_duration(text: str) -> float:
    """``"90"``/``"90s"``/``"5m"``/``"2h"`` -> seconds."""
    match = re.fullmatch(
        r"\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*", str(text)
    )
    if not match:
        raise ConfigError(
            f"cannot parse duration {text!r} (try '90s', '5m', '2h')"
        )
    value, suffix = match.groups()
    multiplier = _DURATION_SUFFIXES.get(suffix.lower())
    if multiplier is None:
        raise ConfigError(
            f"unknown duration suffix {suffix!r} in {text!r} "
            f"(known: s, m, h, d)"
        )
    return float(value) * multiplier


def rss_bytes() -> Optional[int]:
    """Current resident-set size of this process, or ``None`` unknown.

    Reads ``/proc/self/status`` (no dependencies); falls back to
    ``resource.getrusage`` peak RSS — for ceiling enforcement the peak
    is the conservative, correct bound anyway.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes; both are upper bounds
        # in their own unit and Linux is the deployment target.
        return int(peak) * 1024
    except Exception:
        return None


def directory_bytes(path: os.PathLike) -> int:
    """Recursive size of ``path`` in bytes (0 if it does not exist)."""
    root = Path(path)
    if root.is_file():
        try:
            return root.stat().st_size
        except OSError:
            return 0
    total = 0
    if not root.is_dir():
        return 0
    for entry in root.rglob("*"):
        try:
            if entry.is_file():
                total += entry.stat().st_size
        except OSError:  # racing a prune/replace is not an error
            continue
    return total


def is_disk_full_error(exc: OSError) -> bool:
    """``True`` for the errnos that mean "the disk/quota is exhausted"."""
    import errno

    return getattr(exc, "errno", None) in (errno.ENOSPC, errno.EDQUOT)


def translate_disk_error(exc: OSError, what: str) -> DiskFullError:
    """Wrap an ENOSPC/EDQUOT ``OSError`` in the taxonomy with a cure."""
    return DiskFullError(
        f"no space left while {what}: {exc}. Completed work is already "
        "persisted; free disk space (or raise the quota) and re-run with "
        "--resume to continue from where this run stopped."
    )


# ----------------------------------------------------------------------
# Declarative limits
# ----------------------------------------------------------------------
@dataclass
class Budget:
    """Explicit resource limits for one run or campaign.

    Every field is optional; an all-``None`` budget is inert (and
    :attr:`enabled` is ``False``).  ``soft_fraction`` positions the
    degradation threshold relative to each limit.
    """

    deadline_seconds: Optional[float] = None
    max_rss_bytes: Optional[int] = None
    disk_quota_bytes: Optional[int] = None
    max_events: Optional[int] = None
    soft_fraction: float = DEFAULT_SOFT_FRACTION

    def __post_init__(self) -> None:
        for name in (
            "deadline_seconds", "max_rss_bytes", "disk_quota_bytes",
            "max_events",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if not 0.0 < self.soft_fraction <= 1.0:
            raise ConfigError(
                f"soft_fraction must be in (0, 1], got {self.soft_fraction}"
            )

    @property
    def enabled(self) -> bool:
        return any(
            getattr(self, name) is not None
            for name in (
                "deadline_seconds", "max_rss_bytes", "disk_quota_bytes",
                "max_events",
            )
        )

    def limit_for(self, dimension: str) -> Optional[float]:
        return {
            "deadline": self.deadline_seconds,
            "rss": self.max_rss_bytes,
            "disk": self.disk_quota_bytes,
            "events": self.max_events,
        }[dimension]

    def to_dict(self) -> Dict[str, object]:
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_rss_bytes": self.max_rss_bytes,
            "disk_quota_bytes": self.disk_quota_bytes,
            "max_events": self.max_events,
            "soft_fraction": self.soft_fraction,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Budget":
        if not isinstance(record, dict):
            raise ConfigError(f"budget must be an object, got {record!r}")
        unknown = set(record) - {
            "deadline_seconds", "max_rss_bytes", "disk_quota_bytes",
            "max_events", "soft_fraction",
        }
        if unknown:
            raise ConfigError(
                f"budget has unknown field(s): {sorted(unknown)}"
            )
        kwargs = dict(record)
        return cls(**kwargs)


@dataclass
class BudgetStatus:
    """One dimension's usage at one sample."""

    dimension: str
    used: float
    limit: float
    level: str = LEVEL_OK

    @property
    def fraction(self) -> float:
        return self.used / self.limit if self.limit else 0.0

    def describe(self) -> str:
        if self.dimension == "deadline":
            return (
                f"deadline: {self.used:.1f}s of {self.limit:.1f}s "
                f"({self.fraction:.0%})"
            )
        if self.dimension == "rss":
            return (
                f"rss: {self.used / (1 << 20):.0f} MiB of "
                f"{self.limit / (1 << 20):.0f} MiB ({self.fraction:.0%})"
            )
        if self.dimension == "disk":
            return (
                f"disk: {self.used / (1 << 20):.1f} MiB of "
                f"{self.limit / (1 << 20):.1f} MiB quota "
                f"({self.fraction:.0%})"
            )
        return (
            f"{self.dimension}: {self.used:,.0f} of {self.limit:,.0f} "
            f"({self.fraction:.0%})"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "dimension": self.dimension,
            "used": self.used,
            "limit": self.limit,
            "fraction": self.fraction,
            "level": self.level,
        }


# ----------------------------------------------------------------------
# The monitor
# ----------------------------------------------------------------------
class BudgetMonitor(HeartbeatDaemon):
    """Samples resource usage against a :class:`Budget` and classifies it.

    Runs as a daemon thread (same heartbeat plumbing as the stall
    watchdog: the engine's :meth:`beat` value is embedded in breach
    reports so "where did the budget die" is answerable).  The thread
    only *samples*; the engine loop, the campaign pool and the CLI read
    :attr:`hard_breach` / :attr:`soft_active` and act on their own
    threads.  :meth:`sample` can also be called synchronously — hook
    sites that must decide *now* (a quota precheck before a store write)
    do that instead of waiting a poll interval.
    """

    thread_name = "repro-budget-monitor"

    def __init__(
        self,
        budget: Budget,
        telemetry=None,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        downsample_stride: int = DEFAULT_DOWNSAMPLE_STRIDE,
        disk_rescan_seconds: float = DEFAULT_DISK_RESCAN_SECONDS,
    ):
        super().__init__(poll_seconds)
        self.budget = budget
        self.telemetry = telemetry
        self.downsample_stride = max(1, int(downsample_stride))
        self.started_monotonic = time.monotonic()
        self.soft_active: frozenset = frozenset()
        self.hard_breach: Optional[BudgetStatus] = None
        self.soft_trips = 0
        self._disk_lock = threading.Lock()
        self._tracked: List[Path] = []
        self._disk_scanned = 0
        self._disk_charged = 0
        self._disk_rescan_seconds = disk_rescan_seconds
        self._next_disk_scan = 0.0
        self._downsampled_seen = 0
        self._register_gauges()

    # ------------------------------------------------------------------
    # Disk ledger
    # ------------------------------------------------------------------
    def track_directory(self, path: os.PathLike) -> None:
        """Count ``path`` (recursively) against the disk quota.

        Existing contents are charged immediately, so resuming into a
        half-full store starts from honest usage, not zero.
        """
        root = Path(path)
        with self._disk_lock:
            if any(root == tracked for tracked in self._tracked):
                return
            self._tracked.append(root)
            self._disk_scanned += directory_bytes(root)

    def charge_disk(self, nbytes: int) -> None:
        """Adjust the ledger (negative for pruned/deleted files)."""
        with self._disk_lock:
            self._disk_charged += int(nbytes)

    @property
    def disk_used(self) -> int:
        with self._disk_lock:
            return max(0, self._disk_scanned + self._disk_charged)

    def check_disk(self, nbytes: int, what: str) -> None:
        """Refuse a write that would push usage past the disk quota.

        Raises :class:`~repro.errors.BudgetExceededError` — the budget
        equivalent of the kernel's ENOSPC, but *before* the bytes land,
        so the store/checkpoint directory never overshoots its quota.
        """
        quota = self.budget.disk_quota_bytes
        if quota is None:
            return
        projected = self.disk_used + max(0, int(nbytes))
        if projected > quota:
            raise BudgetExceededError(
                f"disk quota exceeded: {what} needs {nbytes:,} bytes but "
                f"only {max(0, quota - self.disk_used):,} of the "
                f"{quota:,}-byte quota remain. Completed work is already "
                "persisted; raise --store-quota (or free space) and re-run "
                "with --resume.",
                dimension="disk",
            )

    def _rescan_disk(self) -> None:
        """Reconcile the ledger with reality (other processes write too)."""
        with self._disk_lock:
            tracked = list(self._tracked)
        scanned = sum(directory_bytes(root) for root in tracked)
        with self._disk_lock:
            self._disk_scanned = scanned
            self._disk_charged = 0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def elapsed_seconds(self) -> float:
        return time.monotonic() - self.started_monotonic

    def deadline_remaining(self) -> Optional[float]:
        """Seconds until the hard deadline, or ``None`` when unbounded."""
        if self.budget.deadline_seconds is None:
            return None
        return self.budget.deadline_seconds - self.elapsed_seconds()

    def _usage(self, dimension: str) -> Optional[float]:
        if dimension == "deadline":
            return self.elapsed_seconds()
        if dimension == "rss":
            return rss_bytes()
        if dimension == "disk":
            return float(self.disk_used)
        if dimension == "events":
            tracer = getattr(self.telemetry, "tracer", None)
            return float(tracer.emitted) if tracer is not None else 0.0
        raise ValueError(f"unknown budget dimension {dimension!r}")

    def statuses(self) -> List[BudgetStatus]:
        """Usage vs limit for every *configured* dimension."""
        out: List[BudgetStatus] = []
        for dimension in DIMENSIONS:
            limit = self.budget.limit_for(dimension)
            if limit is None:
                continue
            used = self._usage(dimension)
            if used is None:
                continue  # unmeasurable on this host (e.g. no RSS source)
            status = BudgetStatus(dimension, float(used), float(limit))
            if used >= limit:
                status.level = LEVEL_HARD
            elif used >= limit * self.budget.soft_fraction:
                status.level = LEVEL_SOFT
            out.append(status)
        return out

    def sample(self) -> Optional[BudgetStatus]:
        """Take one sample; update soft/hard state and degradation.

        Returns the hard breach (first dimension to cross 100%), or
        ``None``.  A hard breach latches: once set it never clears, so
        racing readers cannot see the budget "recover".
        """
        now = time.monotonic()
        if self._tracked and now >= self._next_disk_scan:
            self._next_disk_scan = now + self._disk_rescan_seconds
            self._rescan_disk()
        statuses = self.statuses()
        soft = frozenset(
            s.dimension for s in statuses if s.level != LEVEL_OK
        )
        newly_soft = soft - self.soft_active
        if soft != self.soft_active:
            self.soft_active = soft
        for dimension in newly_soft:
            self.soft_trips += 1
            self._note_soft(dimension, statuses)
        self._apply_degradation()
        if self.hard_breach is None:
            for status in statuses:
                if status.level == LEVEL_HARD:
                    self.hard_breach = status
                    self._note_hard(status)
                    break
        return self.hard_breach

    def build_error(self, context: str) -> BudgetExceededError:
        """The canonical error for the current hard breach."""
        breach = self.hard_breach
        detail = breach.describe() if breach is not None else "budget"
        return BudgetExceededError(
            f"{context}: {detail}. State was persisted on the way out; "
            "re-run with --resume (and a larger budget, or none) to "
            "continue — the resumed result is identical to an "
            "unbudgeted run.",
            dimension=breach.dimension if breach is not None else "unknown",
        )

    # ------------------------------------------------------------------
    # Degradation ladder + accounting
    # ------------------------------------------------------------------
    def _apply_degradation(self) -> None:
        tracer = getattr(self.telemetry, "tracer", None)
        if tracer is not None and hasattr(tracer, "downsample"):
            tracer.downsample = (
                self.downsample_stride if self.soft_active else 1
            )
        metrics = getattr(self.telemetry, "metrics", None)
        if metrics is not None and tracer is not None:
            delta = tracer.downsampled - self._downsampled_seen
            if delta > 0:
                metrics.counter("telemetry.downsampled").inc(delta)
                self._downsampled_seen = tracer.downsampled

    def _note_soft(self, dimension: str, statuses: List[BudgetStatus]) -> None:
        if self.telemetry is None:
            return
        status = next(
            (s for s in statuses if s.dimension == dimension), None
        )
        if getattr(self.telemetry, "metrics", None) is not None:
            self.telemetry.metrics.counter("budget.soft_trips").inc()
        if getattr(self.telemetry, "tracer", None) is not None:
            self.telemetry.emit(
                "budget.soft", 0.0, dimension=dimension,
                fraction=status.fraction if status else None,
                heartbeat=_jsonable(self._value),
            )

    def _note_hard(self, status: BudgetStatus) -> None:
        if self.telemetry is None:
            return
        if getattr(self.telemetry, "metrics", None) is not None:
            self.telemetry.metrics.counter("budget.hard_stops").inc()
        if getattr(self.telemetry, "tracer", None) is not None:
            self.telemetry.emit(
                "budget.exceeded", 0.0, dimension=status.dimension,
                used=status.used, limit=status.limit,
                heartbeat=_jsonable(self._value),
            )

    def _register_gauges(self) -> None:
        metrics = getattr(self.telemetry, "metrics", None)
        if metrics is None:
            return
        metrics.gauge("budget.elapsed_seconds", fn=self.elapsed_seconds)
        metrics.gauge("budget.disk_bytes", fn=lambda: float(self.disk_used))
        metrics.gauge("budget.rss_bytes", fn=lambda: float(rss_bytes() or 0))
        metrics.gauge(
            "budget.soft_dimensions", fn=lambda: float(len(self.soft_active))
        )
        metrics.gauge(
            "budget.hard_breached",
            fn=lambda: 1.0 if self.hard_breach is not None else 0.0,
        )

    # ------------------------------------------------------------------
    # Thread + reporting
    # ------------------------------------------------------------------
    def _poll(self, value: object, now: float) -> bool:
        self.sample()
        return False  # keep observing: degradation state stays current

    def to_dict(self) -> Dict[str, object]:
        """Budget state for stall snapshots and ``result.extra``."""
        return {
            "budget": self.budget.to_dict(),
            "statuses": [status.to_dict() for status in self.statuses()],
            "soft_active": sorted(self.soft_active),
            "soft_trips": self.soft_trips,
            "hard_breach": (
                None if self.hard_breach is None
                else self.hard_breach.to_dict()
            ),
            "heartbeat": _jsonable(self._value),
        }


def _jsonable(value: object) -> object:
    return (
        value if isinstance(value, (int, float, str, bool, type(None)))
        else repr(value)
    )


# ----------------------------------------------------------------------
# Process-wide arming (hook sites read ``budget.ACTIVE`` — one load)
# ----------------------------------------------------------------------
ACTIVE: Optional[BudgetMonitor] = None


def arm(monitor: BudgetMonitor) -> BudgetMonitor:
    """Make ``monitor`` the process-wide quota authority.

    The store and checkpoint writers consult :data:`ACTIVE` for quota
    prechecks and ledger charges.  Forked campaign workers inherit the
    armed monitor as a passive copy (daemon threads do not survive
    ``fork``), which is exactly the desired behavior: workers get
    best-effort quota guards, the parent keeps the live authority.
    """
    global ACTIVE
    ACTIVE = monitor
    return monitor


def disarm() -> Optional[BudgetMonitor]:
    global ACTIVE
    previous, ACTIVE = ACTIVE, None
    return previous


@contextmanager
def armed(monitor: BudgetMonitor):
    """``with budget.armed(monitor): ...`` — scoped arming for tests."""
    global ACTIVE
    previous = ACTIVE
    arm(monitor)
    try:
        yield monitor
    finally:
        ACTIVE = previous


__all__ = [
    "ACTIVE",
    "Budget",
    "BudgetMonitor",
    "BudgetStatus",
    "DEFAULT_DOWNSAMPLE_STRIDE",
    "DEFAULT_SOFT_FRACTION",
    "DIMENSIONS",
    "LEVEL_HARD",
    "LEVEL_OK",
    "LEVEL_SOFT",
    "arm",
    "armed",
    "directory_bytes",
    "disarm",
    "is_disk_full_error",
    "parse_duration",
    "parse_size",
    "rss_bytes",
    "translate_disk_error",
]
