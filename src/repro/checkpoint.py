"""Checkpoint/restore of in-flight simulations, plus the stall watchdog.

A long CSALT run that dies at 95% should not restart from access 0.
This module gives the engine (see :func:`repro.sim.engine.run_simulation`)
three cooperating pieces:

* a **snapshot envelope** — :func:`write_checkpoint` /
  :func:`read_checkpoint` store an arbitrary plain-data document as
  ``magic line + JSON header + pickled payload``.  The header carries a
  format version, the payload length and its SHA-256, so a torn or
  bit-rotted file is rejected loudly (:class:`CheckpointError`) instead
  of resuming a half-written state.  Writes are atomic: a temp file in
  the target directory is fsynced and ``os.replace``d into place, so a
  crash mid-write leaves the previous checkpoint intact;
* a :class:`CheckpointWriter` — names snapshots by their access count
  (``ckpt-000000120000.ckpt``), prunes old ones, and tracks write
  latency for telemetry;
* a :class:`StallWatchdog` — a daemon thread fed a heartbeat
  (the engine's access counter) that trips when the counter stops
  advancing for ``timeout_seconds`` of wall-clock time.  The watchdog
  never touches simulator state itself (it runs concurrently with the
  main loop); it interrupts the main thread, which then snapshots the
  stalled state single-threadedly and raises :class:`SimulationStalled`.

The checkpoint *document* layout is owned by the engine; components
contribute via their ``state_dict()``/``load_state()`` methods (see
``docs/robustness.md`` for the catalogue and versioning rules).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
import _thread
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import faults
from repro.errors import SimulationError

#: First line of every checkpoint file.
MAGIC = b"repro-checkpoint"

#: Bump whenever the envelope or the snapshot document layout changes
#: incompatibly.  Readers reject other versions instead of guessing.
FORMAT_VERSION = 1

#: Pinned pickle protocol: stable across the CPython versions CI runs,
#: so a checkpoint written under 3.12 restores under 3.10.
_PICKLE_PROTOCOL = 4

_CHECKPOINT_SUFFIX = ".ckpt"
_CHECKPOINT_PREFIX = "ckpt-"
_STALL_PREFIX = "stall-"


class CheckpointError(SimulationError, RuntimeError):
    """A checkpoint could not be written, read, or trusted.

    Part of the :mod:`repro.errors` taxonomy (exit code 3); still a
    ``RuntimeError`` for pre-taxonomy callers.
    """


class SimulationStalled(SimulationError, RuntimeError):
    """The watchdog saw the access counter stop advancing.

    Carries enough context for the campaign pool and the CLI to report
    the stall precisely (and, when checkpointing was on, where the
    post-mortem snapshot landed).
    """

    def __init__(
        self,
        message: str,
        *,
        executed: int,
        timeout_seconds: float,
        snapshot_path: Optional[str] = None,
    ):
        super().__init__(message)
        self.executed = executed
        self.timeout_seconds = timeout_seconds
        self.snapshot_path = snapshot_path


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------
def write_checkpoint(
    path: os.PathLike,
    document: object,
    meta: Optional[Dict[str, object]] = None,
    enforce_quota: bool = True,
) -> Path:
    """Atomically write ``document`` as a versioned, checksummed snapshot.

    ``meta`` (JSON-able) is merged into the header — the engine records
    the executed-access count there so tools can rank checkpoints
    without unpickling the payload.

    Budget-aware: with a process-wide
    :class:`~repro.budget.BudgetMonitor` armed, the write is pre-checked
    against the disk quota and charged to the ledger; ``enforce_quota=
    False`` skips the precheck (the engine's *breach* snapshot — the one
    that makes a budget-killed run resumable — must never itself be
    refused by the budget that killed the run).  A real ``ENOSPC``/
    ``EDQUOT`` surfaces as :class:`~repro.errors.DiskFullError` with a
    resume hint, not a raw ``OSError``.
    """
    from repro import budget as _budget

    target = Path(path)
    try:
        payload = pickle.dumps(document, protocol=_PICKLE_PROTOCOL)
    except Exception as exc:  # unpicklable state is a programming error
        raise CheckpointError(f"cannot serialize checkpoint: {exc}") from exc
    header = {
        "format": FORMAT_VERSION,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    if meta:
        header.update(meta)
    # Chaos hooks (no-ops unless a FaultPlan is armed): each lands the
    # exact artifact the matching host failure would leave behind, so
    # ``read_checkpoint``'s rejections are exercised honestly.
    write_payload = payload
    injector = faults.ACTIVE
    if injector is not None:
        if injector.fire("checkpoint.write.torn_payload", path=target.name):
            write_payload = payload[: len(payload) // 2]
        if injector.fire("checkpoint.write.flip_checksum", path=target.name):
            digest = header["sha256"]
            header["sha256"] = (
                ("0" if digest[0] != "0" else "1") + digest[1:]
            )
    header_line = json.dumps(header, sort_keys=True).encode("utf-8")
    total_bytes = len(MAGIC) + 1 + len(header_line) + 1 + len(write_payload)
    monitor = _budget.ACTIVE
    previous_size = 0
    if monitor is not None:
        try:
            previous_size = target.stat().st_size
        except OSError:
            previous_size = 0
        if enforce_quota:
            monitor.check_disk(
                total_bytes - previous_size, f"checkpoint {target.name}"
            )
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=target.parent
    )
    try:
        if injector is not None and injector.fire(
            "checkpoint.write.io_error", path=target.name
        ):
            os.close(fd)
            raise OSError(f"injected I/O error writing {target.name}")
        if injector is not None and injector.fire(
            "checkpoint.enospc", path=target.name
        ):
            os.close(fd)
            raise OSError(
                errno.ENOSPC, f"injected disk-full writing {target.name}"
            )
        with os.fdopen(fd, "wb") as handle:
            handle.write(MAGIC + b"\n")
            handle.write(header_line + b"\n")
            handle.write(write_payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except OSError as exc:
        if _budget.is_disk_full_error(exc):
            raise _budget.translate_disk_error(
                exc, f"writing checkpoint {target.name}"
            ) from exc
        raise CheckpointError(f"cannot write checkpoint {target}: {exc}") from exc
    finally:
        # One cleanup for every exit path: after a successful replace the
        # temp name is gone and the unlink is a no-op; on any failure —
        # including interrupts the old except clause missed — it sweeps
        # the orphan.  (A crash between mkstemp and here still strands
        # one; ``repro doctor`` sweeps those.)
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
    try:  # make the rename itself durable; best-effort on odd filesystems
        dir_fd = os.open(target.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    if monitor is not None:
        monitor.charge_disk(total_bytes - previous_size)
    return target


def read_checkpoint(path: os.PathLike) -> Tuple[object, Dict[str, object]]:
    """Read and verify a checkpoint; returns ``(document, header)``.

    Raises :class:`CheckpointError` on any mismatch — wrong magic,
    unknown format version, truncated payload, or checksum failure.
    """
    target = Path(path)
    try:
        injector = faults.ACTIVE
        if injector is not None and injector.fire(
            "checkpoint.read.io_error", path=target.name
        ):
            raise OSError(f"injected I/O error reading {target.name}")
        with open(target, "rb") as handle:
            magic = handle.readline().rstrip(b"\n")
            if magic != MAGIC:
                raise CheckpointError(
                    f"{target} is not a repro checkpoint "
                    f"(bad magic {magic[:32]!r})"
                )
            try:
                header = json.loads(handle.readline().decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"{target} has a corrupt header: {exc}"
                ) from exc
            version = header.get("format")
            if version != FORMAT_VERSION:
                raise CheckpointError(
                    f"{target} has format version {version!r}; this build "
                    f"reads version {FORMAT_VERSION}"
                )
            payload = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {target}: {exc}") from exc
    expected_bytes = header.get("payload_bytes")
    if expected_bytes != len(payload):
        raise CheckpointError(
            f"{target} is truncated: header promises {expected_bytes} "
            f"payload bytes, file holds {len(payload)}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(
            f"{target} failed its checksum: payload sha256 {digest} != "
            f"header {header.get('sha256')}"
        )
    try:
        document = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"{target} passed its checksum but cannot be unpickled: {exc}"
        ) from exc
    return document, header


def checkpoint_name(executed: int) -> str:
    """Snapshot filename for an access count; sorts chronologically."""
    return f"{_CHECKPOINT_PREFIX}{executed:012d}{_CHECKPOINT_SUFFIX}"


def list_checkpoints(directory: os.PathLike) -> List[Path]:
    """Regular checkpoints in ``directory``, oldest first (stall snapshots
    are post-mortem artifacts and are deliberately excluded)."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(
        entry for entry in root.iterdir()
        if entry.name.startswith(_CHECKPOINT_PREFIX)
        and entry.name.endswith(_CHECKPOINT_SUFFIX)
    )


def latest_checkpoint(directory: os.PathLike) -> Optional[Path]:
    """The newest resumable checkpoint in ``directory``, or ``None``."""
    found = list_checkpoints(directory)
    return found[-1] if found else None


class CheckpointWriter:
    """Writes access-count-named snapshots into a directory and prunes.

    ``keep`` bounds disk usage: after each write, only the newest
    ``keep`` regular checkpoints survive.  Stall snapshots (written by
    the engine's watchdog path) are never pruned — they are the evidence.
    """

    def __init__(self, directory: os.PathLike, keep: int = 3):
        if keep < 1:
            raise ValueError(f"keep must be positive, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.written = 0
        self.last_write_seconds = 0.0
        #: Set to ``False`` before an emergency (budget-breach) snapshot:
        #: the checkpoint that makes a budget-killed run resumable must
        #: not itself be refused by the exhausted disk quota.
        self.enforce_quota = True

    def write(
        self, executed: int, document: object, meta: Optional[Dict] = None
    ) -> Path:
        started = time.perf_counter()
        merged = {"executed": executed}
        if meta:
            merged.update(meta)
        path = write_checkpoint(
            self.directory / checkpoint_name(executed),
            document,
            meta=merged,
            enforce_quota=self.enforce_quota,
        )
        self.last_write_seconds = time.perf_counter() - started
        self.written += 1
        self._prune()
        return path

    def write_stall(self, executed: int, document: object) -> Path:
        """Post-mortem snapshot of a stalled run (never pruned, may be
        mid-access and is marked as such in the header).  Exempt from
        quota enforcement — the evidence must land."""
        name = f"{_STALL_PREFIX}{executed:012d}{_CHECKPOINT_SUFFIX}"
        return write_checkpoint(
            self.directory / name,
            document,
            meta={"executed": executed, "stalled": True, "consistent": False},
            enforce_quota=False,
        )

    def _prune(self) -> None:
        from repro import budget as _budget

        stale = list_checkpoints(self.directory)[:-self.keep]
        for path in stale:
            try:
                freed = path.stat().st_size
                path.unlink()
            except OSError:  # pruning is best-effort
                continue
            if _budget.ACTIVE is not None:
                _budget.ACTIVE.charge_disk(-freed)


# ----------------------------------------------------------------------
# Heartbeat daemons (stall watchdog, budget monitor)
# ----------------------------------------------------------------------
class HeartbeatDaemon:
    """Shared plumbing for daemon threads fed the engine's heartbeat.

    The main loop calls :meth:`beat` with its progress value (the access
    counter) every round — one attribute store, thread-safe under the
    GIL; a daemon thread wakes every ``poll_seconds`` and hands the
    latest value to the subclass's :meth:`_poll` hook.  Subclasses never
    touch simulator structures, so they cannot race them: the
    :class:`StallWatchdog` and the :class:`~repro.budget.BudgetMonitor`
    both observe from the side and let the main thread act.

    ``_poll`` returning ``True`` ends the thread (a terminal trip).
    """

    thread_name = "repro-heartbeat"

    def __init__(self, poll_seconds: float):
        if poll_seconds <= 0:
            raise ValueError(
                f"poll interval must be positive, got {poll_seconds}"
            )
        self._poll_seconds = poll_seconds
        self._value: object = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def beat(self, value: object) -> None:
        """Record progress (cheap: one attribute store; thread-safe)."""
        self._value = value

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError(f"{type(self).__name__} already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=self.thread_name, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "HeartbeatDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self._poll_seconds):
            if self._poll(self._value, time.monotonic()):
                return

    def _poll(self, value: object, now: float) -> bool:
        """One observation; return ``True`` to end the thread."""
        raise NotImplementedError


class StallWatchdog(HeartbeatDaemon):
    """Flags a simulation whose heartbeat value stops advancing.

    The engine calls :meth:`beat` with its access counter every round;
    the daemon thread polls, and if the value has not changed for
    ``timeout_seconds`` it sets :attr:`tripped` and interrupts the main
    thread (a ``KeyboardInterrupt`` at the next bytecode boundary).  The
    *engine* — on its own, now-consistent thread — distinguishes a
    watchdog trip from a user Ctrl-C via :attr:`tripped`, snapshots the
    state, and raises :class:`SimulationStalled`.
    """

    thread_name = "repro-stall-watchdog"

    def __init__(
        self, timeout_seconds: float, poll_seconds: Optional[float] = None
    ):
        if timeout_seconds <= 0:
            raise ValueError(
                f"watchdog timeout must be positive, got {timeout_seconds}"
            )
        super().__init__(
            poll_seconds if poll_seconds else min(1.0, timeout_seconds / 4)
        )
        self.timeout_seconds = timeout_seconds
        self.tripped = False
        self._last_value: object = None
        self._last_advance: Optional[float] = None

    def _poll(self, value: object, now: float) -> bool:
        if self._last_advance is None or value != self._last_value:
            self._last_value = value
            self._last_advance = now
            return False
        if now - self._last_advance >= self.timeout_seconds:
            self.tripped = True
            _thread.interrupt_main()
            return True
        return False
