"""On-chip set-associative TLBs (L1 split by page size, L2 unified).

Entries are tagged with the full :class:`~repro.mem.address.Asid`, so VM
context switches do not flush them (the entries simply compete for
capacity — the effect Figure 1 quantifies).  The unified L2 TLB holds both
4 KB and 2 MB translations; a lookup probes one set per supported page
size, as real unified TLBs do.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.mem.address import Asid, PAGE_4K_BITS, PAGE_2M_BITS


@dataclass(frozen=True)
class TlbEntry:
    """A cached translation: virtual page -> host physical frame."""

    frame_base: int
    page_bits: int


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """A set-associative, ASID-tagged TLB with LRU replacement.

    ``page_bits_supported`` lists the page sizes this TLB holds; a unified
    TLB passes both, a split L1 passes exactly one.
    """

    def __init__(
        self,
        name: str,
        entries: int,
        ways: int,
        latency: int,
        page_bits_supported: Tuple[int, ...] = (PAGE_4K_BITS,),
    ):
        if entries % ways:
            raise ValueError(f"{name}: {entries} entries not divisible by {ways} ways")
        self.name = name
        self.entries = entries
        self.ways = ways
        self.latency = latency
        self.num_sets = entries // ways
        self.page_bits_supported = tuple(page_bits_supported)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = TlbStats()

    def _set_index(self, vpn: int) -> int:
        return vpn % self.num_sets

    def lookup(self, asid: Asid, virtual_address: int) -> Optional[TlbEntry]:
        """Probe all supported page sizes; LRU-promote on hit.

        Hot path: the set-index modulo is inlined (no ``_set_index``
        call) and attributes are hoisted out of the probe loop.
        """
        sets = self._sets
        num_sets = self.num_sets
        for page_bits in self.page_bits_supported:
            vpn = virtual_address >> page_bits
            tlb_set = sets[vpn % num_sets]
            key = (asid, vpn, page_bits)
            entry = tlb_set.get(key)
            if entry is not None:
                tlb_set.move_to_end(key)
                self.stats.hits += 1
                return entry
        self.stats.misses += 1
        return None

    def probe(self, asid: Asid, virtual_address: int) -> Optional[TlbEntry]:
        """Presence check without statistics or recency update (used by
        prefetchers and tests)."""
        for page_bits in self.page_bits_supported:
            vpn = virtual_address >> page_bits
            entry = self._sets[self._set_index(vpn)].get((asid, vpn, page_bits))
            if entry is not None:
                return entry
        return None

    def insert(self, asid: Asid, virtual_address: int, entry: TlbEntry) -> None:
        """Install a translation, evicting the set's LRU entry if full."""
        if entry.page_bits not in self.page_bits_supported:
            raise ValueError(
                f"{self.name} does not hold 2**{entry.page_bits}-byte pages"
            )
        vpn = virtual_address >> entry.page_bits
        tlb_set = self._sets[self._set_index(vpn)]
        key = (asid, vpn, entry.page_bits)
        if key in tlb_set:
            tlb_set.move_to_end(key)
            tlb_set[key] = entry
            return
        if len(tlb_set) >= self.ways:
            tlb_set.popitem(last=False)
            self.stats.evictions += 1
        tlb_set[key] = entry
        self.stats.insertions += 1

    def invalidate_page(self, asid: Asid, virtual_address: int) -> int:
        """Drop any entry translating ``virtual_address`` (all page sizes).

        Models the per-page INVLPG half of a TLB shootdown; returns the
        number of entries dropped (0 or 1 per supported size).
        """
        dropped = 0
        for page_bits in self.page_bits_supported:
            vpn = virtual_address >> page_bits
            tlb_set = self._sets[self._set_index(vpn)]
            if tlb_set.pop((asid, vpn, page_bits), None) is not None:
                dropped += 1
        return dropped

    def invalidate_asid(self, asid: Asid) -> int:
        """Drop all entries of one address space (explicit shootdown)."""
        dropped = 0
        for tlb_set in self._sets:
            stale = [key for key in tlb_set if key[0] == asid]
            for key in stale:
                del tlb_set[key]
                dropped += 1
        return dropped

    def occupancy(self) -> float:
        held = sum(len(tlb_set) for tlb_set in self._sets)
        return held / self.entries

    def reset_stats(self) -> None:
        self.stats = TlbStats()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Plain-data snapshot; set order *is* the LRU order, so each set
        is serialized as an ordered (key, entry) list."""
        return {
            "sets": [list(tlb_set.items()) for tlb_set in self._sets],
            "stats": replace(self.stats),
        }

    def load_state(self, state: dict) -> None:
        sets = state["sets"]
        if len(sets) != self.num_sets:
            raise ValueError(
                f"{self.name}: snapshot has {len(sets)} sets, "
                f"this TLB has {self.num_sets}"
            )
        self._sets = [OrderedDict(items) for items in sets]
        self.stats = replace(state["stats"])


class L1TlbPair:
    """Split L1 TLBs (4 KB and 2 MB), probed in parallel as on Skylake."""

    def __init__(
        self,
        entries_4k: int = 64,
        entries_2m: int = 32,
        ways: int = 4,
        latency: int = 9,
    ):
        self.tlb_4k = Tlb("l1tlb-4k", entries_4k, ways, latency, (PAGE_4K_BITS,))
        self.tlb_2m = Tlb("l1tlb-2m", entries_2m, ways, latency, (PAGE_2M_BITS,))
        self.latency = latency

    def lookup(self, asid: Asid, virtual_address: int) -> Optional[TlbEntry]:
        # Both probes are inlined: this runs once per simulated access, so
        # the two Tlb.lookup calls it replaces were measurable.  Statistics
        # match the nested-call form exactly — a 4 KB hit leaves the 2 MB
        # side untouched (the parallel 2 MB probe would also have happened,
        # but it is not a demand miss).
        tlb = self.tlb_4k
        vpn = virtual_address >> PAGE_4K_BITS
        key = (asid, vpn, PAGE_4K_BITS)
        tlb_set = tlb._sets[vpn % tlb.num_sets]
        entry = tlb_set.get(key)
        if entry is not None:
            tlb_set.move_to_end(key)
            tlb.stats.hits += 1
            return entry
        tlb.stats.misses += 1
        tlb = self.tlb_2m
        vpn = virtual_address >> PAGE_2M_BITS
        key = (asid, vpn, PAGE_2M_BITS)
        tlb_set = tlb._sets[vpn % tlb.num_sets]
        entry = tlb_set.get(key)
        if entry is not None:
            tlb_set.move_to_end(key)
            tlb.stats.hits += 1
            return entry
        tlb.stats.misses += 1
        return None

    def insert(self, asid: Asid, virtual_address: int, entry: TlbEntry) -> None:
        target = self.tlb_4k if entry.page_bits == PAGE_4K_BITS else self.tlb_2m
        target.insert(asid, virtual_address, entry)

    def invalidate_page(self, asid: Asid, virtual_address: int) -> int:
        return self.tlb_4k.invalidate_page(
            asid, virtual_address
        ) + self.tlb_2m.invalidate_page(asid, virtual_address)

    @property
    def hits(self) -> int:
        return self.tlb_4k.stats.hits + self.tlb_2m.stats.hits

    @property
    def misses(self) -> int:
        # A demand miss missed both structures; the 2 MB TLB sees exactly
        # the stream that missed in the 4 KB TLB.
        return self.tlb_2m.stats.misses

    def state_dict(self) -> dict:
        return {
            "tlb_4k": self.tlb_4k.state_dict(),
            "tlb_2m": self.tlb_2m.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.tlb_4k.load_state(state["tlb_4k"])
        self.tlb_2m.load_state(state["tlb_2m"])
