"""POM-TLB: the very large part-of-memory L3 TLB (Ryoo et al., ISCA 2017).

The POM-TLB is a 16 MB set-associative TLB living in die-stacked DRAM at a
fixed host-physical address range.  Because it is *memory mapped*, probes
and fills are ordinary memory references: they travel through the L2/L3
data caches, which is precisely what creates the data/TLB cache contention
CSALT manages.

Organization (following the ISCA paper as summarized in CSALT Section 3):

* each 64-byte DRAM line is one TLB set holding four translation entries;
* the region is split in half: the lower half indexes 4 KB translations,
  the upper half 2 MB translations;
* a lightweight page-size predictor chooses which half to probe first; a
  wrong first probe costs a second memory reference.

This module models content and geometry; the *timing* of each probe is the
caller's memory access to :meth:`set_address` (see ``repro.sim.system``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.mem.address import Asid, CACHE_LINE_BYTES, PAGE_4K_BITS, PAGE_2M_BITS
from repro.tlb.tlb import TlbEntry

_HASH_MULTIPLIER = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1


@dataclass
class PomTlbStats:
    hits: int = 0
    misses: int = 0
    first_probe_hits: int = 0
    second_probes: int = 0
    insertions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class PageSizePredictor:
    """Per-ASID saturating counter predicting 4 KB vs 2 MB translations."""

    def __init__(self, maximum: int = 15):
        self.maximum = maximum
        self._counters: Dict[Asid, int] = {}

    def predict(self, asid: Asid) -> int:
        """Return the predicted page_bits for the next translation."""
        counter = self._counters.get(asid, 0)
        return PAGE_2M_BITS if counter > self.maximum // 2 else PAGE_4K_BITS

    def update(self, asid: Asid, actual_page_bits: int) -> None:
        counter = self._counters.get(asid, 0)
        if actual_page_bits == PAGE_2M_BITS:
            counter = min(self.maximum, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[asid] = counter

    def state_dict(self) -> dict:
        return {"counters": dict(self._counters)}

    def load_state(self, state: dict) -> None:
        self._counters = dict(state["counters"])


class PomTlb:
    """Content model of the memory-mapped large L3 TLB."""

    def __init__(
        self,
        base_address: int = 0,
        size_bytes: int = 16 * 1024 * 1024,
        entries_per_set: int = 4,
    ):
        self.base_address = base_address
        self.size_bytes = size_bytes
        self.entries_per_set = entries_per_set
        total_sets = size_bytes // CACHE_LINE_BYTES
        # Lower half of the sets index 4 KB pages, upper half 2 MB pages.
        self.sets_per_size = total_sets // 2
        self._contents: Dict[int, OrderedDict] = {}
        self.predictor = PageSizePredictor()
        self.stats = PomTlbStats()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _set_index(self, asid: Asid, vpn: int, page_bits: int) -> int:
        mixed = (vpn * _HASH_MULTIPLIER) & _HASH_MASK
        mixed ^= (asid.vm_id & 0xFF) << 57 | (asid.process_id & 0xFF) << 49
        index = (mixed >> 20) % self.sets_per_size
        if page_bits == PAGE_2M_BITS:
            index += self.sets_per_size
        return index

    def set_address(self, asid: Asid, virtual_address: int, page_bits: int) -> int:
        """Host physical address of the set line a probe must read."""
        vpn = virtual_address >> page_bits
        index = self._set_index(asid, vpn, page_bits)
        return self.base_address + index * CACHE_LINE_BYTES

    def contains_address(self, address: int) -> bool:
        return self.base_address <= address < self.base_address + self.size_bytes

    # ------------------------------------------------------------------
    # Content operations
    # ------------------------------------------------------------------
    def probe(
        self, asid: Asid, virtual_address: int, page_bits: int
    ) -> Optional[TlbEntry]:
        """Check the set for ``page_bits``-sized translation; LRU-promote."""
        vpn = virtual_address >> page_bits
        index = self._set_index(asid, vpn, page_bits)
        pom_set = self._contents.get(index)
        if pom_set is None:
            return None
        key = (asid, vpn)
        entry = pom_set.get(key)
        if entry is not None:
            pom_set.move_to_end(key)
        return entry

    def probe_with_address(
        self, asid: Asid, virtual_address: int, page_bits: int
    ) -> Tuple[Optional[TlbEntry], int]:
        """Fused :meth:`probe` + :meth:`set_address`: one hash, not two.

        The datapath needs both the content answer and the set's line
        address (the memory reference that models the probe's timing);
        computing them together halves the hash-mix work per probe.
        """
        vpn = virtual_address >> page_bits
        mixed = (vpn * _HASH_MULTIPLIER) & _HASH_MASK
        mixed ^= (asid.vm_id & 0xFF) << 57 | (asid.process_id & 0xFF) << 49
        index = (mixed >> 20) % self.sets_per_size
        if page_bits == PAGE_2M_BITS:
            index += self.sets_per_size
        address = self.base_address + index * CACHE_LINE_BYTES
        pom_set = self._contents.get(index)
        if pom_set is None:
            return None, address
        key = (asid, vpn)
        entry = pom_set.get(key)
        if entry is not None:
            pom_set.move_to_end(key)
        return entry, address

    def lookup_order(self, asid: Asid) -> Tuple[int, int]:
        """Page sizes in probe order, predicted size first."""
        predicted = self.predictor.predict(asid)
        other = PAGE_2M_BITS if predicted == PAGE_4K_BITS else PAGE_4K_BITS
        return predicted, other

    def record_outcome(
        self, asid: Asid, hit: bool, page_bits: Optional[int], probes: int
    ) -> None:
        """Update stats and the predictor after a completed lookup."""
        if hit:
            self.stats.hits += 1
            if probes == 1:
                self.stats.first_probe_hits += 1
            self.predictor.update(asid, page_bits)
        else:
            self.stats.misses += 1
        if probes > 1:
            self.stats.second_probes += 1

    def insert(self, asid: Asid, virtual_address: int, entry: TlbEntry) -> None:
        """Install a translation in its set (4-way LRU within the line)."""
        vpn = virtual_address >> entry.page_bits
        index = self._set_index(asid, vpn, entry.page_bits)
        pom_set = self._contents.setdefault(index, OrderedDict())
        key = (asid, vpn)
        if key in pom_set:
            pom_set.move_to_end(key)
        elif len(pom_set) >= self.entries_per_set:
            pom_set.popitem(last=False)
        pom_set[key] = entry
        self.stats.insertions += 1
        self.predictor.update(asid, entry.page_bits)

    def invalidate(self, asid: Asid, virtual_address: int) -> int:
        """Drop the translation for ``virtual_address`` (both page sizes).

        The POM-TLB participates in shootdowns like any TLB (Ryoo et al.
        handle this with an OS-visible invalidation write); returns the
        number of entries dropped.
        """
        dropped = 0
        for page_bits in (PAGE_4K_BITS, PAGE_2M_BITS):
            vpn = virtual_address >> page_bits
            index = self._set_index(asid, vpn, page_bits)
            pom_set = self._contents.get(index)
            if pom_set is not None and pom_set.pop((asid, vpn), None) is not None:
                dropped += 1
        return dropped

    def occupancy(self) -> float:
        held = sum(len(s) for s in self._contents.values())
        return held / (2 * self.sets_per_size * self.entries_per_set)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "contents": {
                index: list(pom_set.items())
                for index, pom_set in self._contents.items()
            },
            "predictor": self.predictor.state_dict(),
            "stats": replace(self.stats),
        }

    def load_state(self, state: dict) -> None:
        total_sets = 2 * self.sets_per_size
        for index in state["contents"]:
            if not 0 <= index < total_sets:
                raise ValueError(
                    f"pom-tlb: snapshot set index {index} outside "
                    f"[0, {total_sets})"
                )
        self._contents = {
            index: OrderedDict(items)
            for index, items in state["contents"].items()
        }
        self.predictor.load_state(state["predictor"])
        self.stats = replace(state["stats"])

    def register_metrics(self, registry, prefix: str = "pom") -> None:
        """Expose POM-TLB counters as callback gauges under ``prefix``.

        Callbacks read through ``self.stats`` lazily (the stats object is
        replaced on ``System.reset_stats``) and cost nothing until the
        registry is exported.
        """
        registry.gauge(f"{prefix}.hits", lambda: self.stats.hits)
        registry.gauge(f"{prefix}.misses", lambda: self.stats.misses)
        registry.gauge(f"{prefix}.hit_rate", lambda: self.stats.hit_rate)
        registry.gauge(
            f"{prefix}.first_probe_hits", lambda: self.stats.first_probe_hits
        )
        registry.gauge(
            f"{prefix}.second_probes", lambda: self.stats.second_probes
        )
        registry.gauge(f"{prefix}.insertions", lambda: self.stats.insertions)
        registry.gauge(f"{prefix}.occupancy", self.occupancy)
