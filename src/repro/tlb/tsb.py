"""Translation Storage Buffer baseline (Oracle UltraSPARC, paper Fig. 13).

The TSB is a software-managed, direct-mapped translation table in ordinary
memory.  The trap handler reloads the TLB from it on a miss.  In a
virtualized system the guest's TSB holds gVA -> gPA translations and lives
in *guest* memory, so probing it requires first translating the TSB slot's
own guest-physical address; the resulting hPA must then be translated via
the host's TSB (gPA -> hPA).  That multi-lookup structure — at least two
dependent cacheable references per miss, plus trap overhead — is exactly
why the paper finds TSB inferior to the single-probe POM-TLB (Section 5.2),
even though both benefit from caching their entries in the data caches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.mem.address import Asid
from repro.tlb.tlb import TlbEntry

#: Cycles of software trap entry/exit charged per TSB reload (Li et al.
#: measure trap costs in the tens of cycles; the TSB handler is short).
TSB_TRAP_CYCLES = 30


@dataclass
class TsbStats:
    probes: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0


class Tsb:
    """One direct-mapped software TSB in a contiguous memory region.

    ``entry_bytes`` is 16 (tag + data) as on UltraSPARC; consecutive slots
    therefore pack four to a cache line, giving TSB probes good spatial
    locality in the data caches.
    """

    def __init__(
        self,
        name: str,
        base_address: int,
        num_entries: int = 512 * 1024,
        entry_bytes: int = 16,
    ):
        if num_entries & (num_entries - 1):
            raise ValueError(f"{name}: entry count must be a power of two")
        self.name = name
        self.base_address = base_address
        self.num_entries = num_entries
        self.entry_bytes = entry_bytes
        self.size_bytes = num_entries * entry_bytes
        self._slots: Dict[int, Tuple[Asid, int, TlbEntry]] = {}
        self.stats = TsbStats()

    def slot_index(self, asid: Asid, virtual_address: int, page_bits: int) -> int:
        vpn = virtual_address >> page_bits
        return (vpn ^ (asid.process_id * 0x85EB)) % self.num_entries

    def slot_address(self, asid: Asid, virtual_address: int, page_bits: int) -> int:
        """Address of the slot the trap handler reads (one load)."""
        index = self.slot_index(asid, virtual_address, page_bits)
        return self.base_address + index * self.entry_bytes

    def probe(
        self, asid: Asid, virtual_address: int, page_bits: int
    ) -> Optional[TlbEntry]:
        self.stats.probes += 1
        index = self.slot_index(asid, virtual_address, page_bits)
        slot = self._slots.get(index)
        if slot is None:
            self.stats.misses += 1
            return None
        slot_asid, slot_vpn, entry = slot
        # The tag must include the page size: a 2 MB probe may otherwise
        # falsely match a 4 KB entry whose VPN collides numerically.
        if (
            slot_asid == asid
            and slot_vpn == (virtual_address >> page_bits)
            and entry.page_bits == page_bits
        ):
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        return None

    def insert(self, asid: Asid, virtual_address: int, entry: TlbEntry) -> None:
        """Direct-mapped fill: the previous occupant is simply overwritten."""
        index = self.slot_index(asid, virtual_address, entry.page_bits)
        self._slots[index] = (asid, virtual_address >> entry.page_bits, entry)
        self.stats.insertions += 1

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Geometry is included: TSBs are created lazily per (vm, process),
        so a restore may need to rebuild one that the fresh system has not
        allocated yet (see :meth:`from_state`)."""
        return {
            "name": self.name,
            "base_address": self.base_address,
            "num_entries": self.num_entries,
            "entry_bytes": self.entry_bytes,
            "slots": dict(self._slots),
            "stats": replace(self.stats),
        }

    def load_state(self, state: dict) -> None:
        for field_name in ("name", "base_address", "num_entries", "entry_bytes"):
            if state[field_name] != getattr(self, field_name):
                raise ValueError(
                    f"{self.name}: snapshot {field_name}={state[field_name]!r} "
                    f"does not match this TSB's {getattr(self, field_name)!r}"
                )
        self._slots = dict(state["slots"])
        self.stats = replace(state["stats"])

    @classmethod
    def from_state(cls, state: dict) -> "Tsb":
        """Rebuild a TSB at its recorded base address *without* going
        through the allocator (the frames were already reserved in the
        allocator state restored alongside)."""
        tsb = cls(
            state["name"],
            state["base_address"],
            num_entries=state["num_entries"],
            entry_bytes=state["entry_bytes"],
        )
        tsb.load_state(state)
        return tsb
