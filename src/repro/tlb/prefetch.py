"""Sequential TLB prefetching (paper Section 6's orthogonal technique).

Kandiraju & Sivasubramaniam-style distance/sequential prefetching: on an
L2 TLB miss to virtual page P, speculatively fetch the translation of
P+stride into the L2 TLB.  With a POM-TLB substrate the prefetch is one
(off-critical-path) probe; without one it would cost a page walk, so the
prefetcher only engages when a POM-TLB is present.

The prefetch is *not* charged to the demanding instruction's latency —
real prefetches ride free MSHR/queue slots — but its memory references do
go through the caches, so mis-prefetching pollutes exactly as it would in
hardware.  A small stream detector gates prefetches to avoid flooding the
caches for random-access workloads (gups would otherwise double its POM
traffic for nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.mem.address import Asid


@dataclass
class PrefetchStats:
    issued: int = 0
    suppressed: int = 0
    useful: int = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


@dataclass
class SequentialTlbPrefetcher:
    """Stride-1 TLB prefetcher with a per-ASID stream confidence gate.

    ``confidence`` per ASID rises when consecutive L2 TLB misses hit
    adjacent pages (a streaming pattern) and decays otherwise; prefetches
    are issued only above ``threshold``.
    """

    stride: int = 1
    threshold: int = 2
    max_confidence: int = 7
    stats: PrefetchStats = field(default_factory=PrefetchStats)
    _last_vpn: Dict[Asid, int] = field(default_factory=dict)
    _confidence: Dict[Asid, int] = field(default_factory=dict)

    def observe_miss(self, asid: Asid, vpn: int) -> bool:
        """Record an L2 TLB miss; returns whether to prefetch vpn+stride."""
        last = self._last_vpn.get(asid)
        confidence = self._confidence.get(asid, 0)
        if last is not None and vpn == last + self.stride:
            confidence = min(self.max_confidence, confidence + 1)
        else:
            confidence = max(0, confidence - 1)
        self._last_vpn[asid] = vpn
        self._confidence[asid] = confidence
        if confidence >= self.threshold:
            self.stats.issued += 1
            return True
        self.stats.suppressed += 1
        return False

    def credit_hit(self) -> None:
        """A demand access hit a prefetched entry (accuracy accounting)."""
        self.stats.useful += 1

    def state_dict(self) -> dict:
        return {
            "stats": replace(self.stats),
            "last_vpn": dict(self._last_vpn),
            "confidence": dict(self._confidence),
        }

    def load_state(self, state: dict) -> None:
        self.stats = replace(state["stats"])
        self._last_vpn = dict(state["last_vpn"])
        self._confidence = dict(state["confidence"])
