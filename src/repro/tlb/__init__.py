"""repro.tlb subpackage."""
