"""repro.sim subpackage."""
