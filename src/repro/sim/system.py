"""Full-system model: cores, TLB hierarchy, caches, walkers, DRAM.

This implements the paper's Figure 4 system and Figure 6 datapath:

* per core — split L1 TLBs, unified L2 TLB, L1 data cache, private L2
  data cache (with optional CSALT partition controller), a page walker
  with PSC + nested TLB, and an MSHR overlap model;
* shared — 16-way L3 data cache (optionally partitioned), the POM-TLB in
  die-stacked DRAM, software TSBs for the TSB baseline, and the two DRAM
  channels.

The timing model is latency-composition: each memory reference accumulates
the latencies of the levels it traverses.  Translation latency beyond the
L1 TLB is charged in full (translation is a blocking, pipeline-flushing
event — paper Section 4.2), while data-miss latency is discounted by the
MSHR model's achieved memory-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from itertools import chain
from typing import Dict, List, Optional, Tuple

from repro.core.criticality import CriticalityEstimator, CriticalityInputs
from repro.core.partitioning import PartitionController, unit_weights
from repro.core.schemes import PartitionMode
from repro.mem.address import (
    Asid,
    CACHE_LINE_BYTES,
    PAGE_4K_BITS,
    PAGE_2M_BITS,
    line_address,
)
from repro.mem.cache import Cache, LineKind
from repro.mem.dram import DDR4_2133, DIE_STACKED, DramChannel
from repro.mem.mshr import MshrModel
from repro.sim.config import SystemConfig
from repro.sim.stats import CoreStats, OccupancySample, SimulationResult
from repro.telemetry import Telemetry
from repro.telemetry.accounting import CYCLE_QUANTUM, quantize_cycles
from repro.telemetry.events import (
    EVENT_POM_LOOKUP,
    EVENT_SHOOTDOWN,
    EVENT_TLB_MISS,
    EVENT_WALK,
)
from repro.tlb.pom_tlb import PageSizePredictor, PomTlb
from repro.tlb.prefetch import SequentialTlbPrefetcher
from repro.tlb.tlb import L1TlbPair, Tlb, TlbEntry
from repro.tlb.tsb import TSB_TRAP_CYCLES, Tsb
from repro.vm.physical_memory import HostPhysicalMemory
from repro.vm.walker import PageWalker, VirtualMachine

#: Cold-start page-walk estimate used by the criticality estimator before
#: any walk has completed.
_DEFAULT_WALK_CYCLES = 500.0

#: Inlined ``line_address`` mask for the per-access datapath.
_LINE_MASK = ~(CACHE_LINE_BYTES - 1)

#: Inverse of the accounting cycle quantum (1024.0): the per-access MSHR
#: stall quantization is inlined in :meth:`System.access` with exactly
#: ``round(x * _CYCLE_SCALE) / _CYCLE_SCALE`` — bit-identical to
#: :func:`~repro.telemetry.accounting.quantize_cycles`.
_CYCLE_SCALE = 1.0 / CYCLE_QUANTUM


@dataclass
class CoreState:
    """Private state of one core."""

    core_id: int
    l1_tlb: L1TlbPair
    l2_tlb: Tlb
    l1d: Cache
    l2: Cache
    walker: PageWalker
    mshr: MshrModel
    stats: CoreStats = field(default_factory=CoreStats)
    l2_controller: Optional[PartitionController] = None
    prefetcher: Optional[SequentialTlbPrefetcher] = None


class System:
    """The simulated 8-core machine, configured by :class:`SystemConfig`."""

    def __init__(
        self, config: SystemConfig, telemetry: Optional[Telemetry] = None
    ):
        self.config = config
        self.scheme = config.scheme
        #: Optional telemetry sink bundle; ``None`` keeps every hook a
        #: single ``is None`` check (tier-1 timing unaffected).
        self.telemetry = telemetry
        self._profiler = telemetry.profiler if telemetry is not None else None
        #: Optional cycle-accounting ledger.  The System owns it for the
        #: lifetime of this machine, so a reused Telemetry bundle starts
        #: from a clean ledger (the previous machine's charges would
        #: otherwise break the sum invariant).
        self.accounting = (
            telemetry.accounting if telemetry is not None else None
        )
        if self.accounting is not None:
            self.accounting.reset()
        self._walk_hist = None
        self._pom_hit_hist = None
        self.host_memory = HostPhysicalMemory(
            num_vms=config.num_vms,
            vm_bytes=config.vm_bytes,
            pom_tlb_bytes=config.pom_tlb_bytes,
        )
        self.vms = [
            VirtualMachine(
                vm_id,
                self.host_memory,
                native=not config.virtualized,
                levels=config.page_table_levels,
            )
            for vm_id in range(config.num_vms)
        ]
        self.ddr = DramChannel(DDR4_2133)
        self.die_stacked = DramChannel(DIE_STACKED)

        dip = self.scheme.uses_dip
        self.l3 = Cache(
            "l3",
            config.l3.size_bytes,
            config.l3.ways,
            config.l3.latency,
            policy=config.replacement,
            dip=dip,
        )
        self.pom: Optional[PomTlb] = None
        if self.scheme.uses_pom_tlb:
            self.pom = PomTlb(
                base_address=self.host_memory.pom_tlb_base,
                size_bytes=config.pom_tlb_bytes,
            )
        self._prefetch_enabled = config.tlb_prefetch and self.pom is not None
        self._prefetched = set()
        self._tsb_predictor = PageSizePredictor()
        self._guest_tsbs: Dict[Tuple[int, int], Tsb] = {}
        self._host_tsbs: Dict[int, Tsb] = {}

        self.cores: List[CoreState] = []
        for core_id in range(config.cores):
            self.cores.append(self._build_core(core_id))
        #: One memory instruction retires 1 + nonmem_per_mem companions;
        #: the base charge is quantized to a dyadic rational so the
        #: cycle-accounting sum invariant can hold bit-exactly.
        self._instructions_per_access = 1 + config.nonmem_per_mem
        self._base_cycles = quantize_cycles(
            self._instructions_per_access * config.base_cpi
        )

        self.l3_controller = self._build_controller(self.l3, "l3")
        self._apply_static_partition()
        self.occupancy_samples: List[OccupancySample] = []
        self._total_accesses = 0
        self._last_walk_latency = 0
        # Which level served TLB-kind references (probe locality analysis).
        self.tlb_ref_levels = {"l2": 0, "l3": 0, "dram": 0}
        if telemetry is not None and telemetry.metrics is not None:
            self._register_metrics(telemetry.metrics)
        # Bind bare datapath variants when the corresponding hooks are
        # off.  This makes PR 1's "None keeps every hook free" contract
        # structural: the disabled path no longer even tests for the
        # hooks at access time.  Profiler wrappers (below) compose on
        # top, so a metrics-only Telemetry still profiles the bare path.
        if self.accounting is None:
            self._mem_from_l2 = self._mem_from_l2_bare
            self.access = self._access_bare
        if telemetry is None:
            self._walk = self._walk_bare
        if self._profiler is not None:
            self._install_profiler_wrappers()
        # Rebind each walker's memory accessor from the construction-time
        # lambda to a partial over the *resolved* ``_mem_from_l2`` (bare
        # or profiler-wrapped, chosen above).  A partial removes one
        # Python frame from every walk memory reference — the single
        # hottest call edge after the caches themselves.
        for core in self.cores:
            core.walker._access = partial(self._mem_from_l2, core)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_core(self, core_id: int) -> CoreState:
        cfg = self.config
        l1_tlb = L1TlbPair(
            entries_4k=cfg.tlb.l1_4k_entries,
            entries_2m=cfg.tlb.l1_2m_entries,
            ways=cfg.tlb.l1_ways,
            latency=cfg.tlb.l1_latency,
        )
        l2_tlb = Tlb(
            f"l2tlb-core{core_id}",
            cfg.tlb.l2_entries,
            cfg.tlb.l2_ways,
            cfg.tlb.l2_latency,
            page_bits_supported=(PAGE_4K_BITS, PAGE_2M_BITS),
        )
        l1d = Cache(
            f"l1d-core{core_id}", cfg.l1d.size_bytes, cfg.l1d.ways, cfg.l1d.latency
        )
        l2 = Cache(
            f"l2-core{core_id}",
            cfg.l2.size_bytes,
            cfg.l2.ways,
            cfg.l2.latency,
            policy=cfg.replacement,
            dip=self.scheme.uses_dip,
        )
        core = CoreState(
            core_id=core_id,
            l1_tlb=l1_tlb,
            l2_tlb=l2_tlb,
            l1d=l1d,
            l2=l2,
            walker=None,  # set below: the accessor closes over `core`
            mshr=MshrModel(entries=cfg.mshr_entries, workload_mlp=cfg.workload_mlp),
        )
        core.walker = PageWalker(
            accessor=lambda addr, kind, is_write, _core=core: self._mem_from_l2(
                _core, addr, kind, is_write
            ),
            psc_config=cfg.psc,
            levels=cfg.page_table_levels,
        )
        core.walker.accountant = self.accounting
        core.l2_controller = self._build_controller(l2, "l2", core)
        if self._prefetch_enabled:
            core.prefetcher = SequentialTlbPrefetcher()
        return core

    def _build_controller(
        self, cache: Cache, level: str, core: Optional[CoreState] = None
    ) -> Optional[PartitionController]:
        mode = self.scheme.partition_mode
        if mode not in (PartitionMode.DYNAMIC, PartitionMode.CRITICALITY):
            return None
        if mode is PartitionMode.CRITICALITY:
            estimator = CriticalityEstimator(
                cache_latency=cache.latency,
                dynamic_inputs=(
                    self._l2_criticality_inputs
                    if level == "l2"
                    else self._l3_criticality_inputs
                ),
            )
            weight_provider = estimator.weights
        else:
            weight_provider = unit_weights
        if core is not None:
            label = f"core{core.core_id}.l2"
            core_id = core.core_id
            clock = lambda _core=core: _core.stats.cycles
        else:
            label = level
            core_id = -1
            clock = self._max_cycles
        return PartitionController(
            cache,
            epoch_accesses=self.config.epoch_accesses,
            weight_provider=weight_provider,
            sample_shift=self.config.sample_shift,
            estimate_positions=self.config.estimate_positions,
            telemetry=self.telemetry,
            clock=clock,
            label=label,
            core_id=core_id,
        )

    def _max_cycles(self) -> float:
        """System-wide timestamp: the furthest-ahead core clock."""
        return max(core.stats.cycles for core in self.cores)

    # ------------------------------------------------------------------
    # Telemetry wiring
    # ------------------------------------------------------------------
    def _register_metrics(self, metrics) -> None:
        """Register this machine's instruments into the metrics registry."""
        self._walk_hist = metrics.histogram("walker.latency_cycles")
        if self.pom is not None:
            self._pom_hit_hist = metrics.histogram("pom.hit_latency_cycles")
            self.pom.register_metrics(metrics, "pom")
        self.l3.register_metrics(metrics, "cache.l3")
        self.ddr.register_metrics(metrics, "dram.ddr")
        self.die_stacked.register_metrics(metrics, "dram.die_stacked")
        for core in self.cores:
            prefix = f"core{core.core_id}"
            core.l1d.register_metrics(metrics, f"{prefix}.l1d")
            core.l2.register_metrics(metrics, f"{prefix}.l2")
            core.walker.register_metrics(metrics, f"{prefix}.walker")
            # Bind through the CoreState: ``core.stats`` is replaced on
            # reset_stats, so the callbacks must dereference lazily.
            metrics.gauge(
                f"{prefix}.instructions", lambda _c=core: _c.stats.instructions
            )
            metrics.gauge(f"{prefix}.cycles", lambda _c=core: _c.stats.cycles)
            metrics.gauge(
                f"{prefix}.l1_tlb_misses",
                lambda _c=core: _c.stats.l1_tlb_misses,
            )
            metrics.gauge(
                f"{prefix}.l2_tlb_misses",
                lambda _c=core: _c.stats.l2_tlb_misses,
            )
            metrics.gauge(
                f"{prefix}.page_walks", lambda _c=core: _c.stats.page_walks
            )

    def _install_profiler_wrappers(self) -> None:
        """Route hot datapath methods through host-profiler scopes.

        Installed as instance attributes only when profiling is on, so
        the disabled path pays no extra call or check.  Scope times are
        inclusive: ``walker`` contains the ``cache``/``dram`` time its
        memory references trigger.
        """
        prof = self._profiler
        mem_from_l2 = self._mem_from_l2
        dram_access = self._dram_access
        translate_via_pom = self._translate_via_pom

        def profiled_mem(core, address, kind, is_write):
            with prof.scope("cache"):
                return mem_from_l2(core, address, kind, is_write)

        def profiled_dram(address):
            with prof.scope("dram"):
                return dram_access(address)

        def profiled_pom(core, asid, virtual_address):
            with prof.scope("pom"):
                return translate_via_pom(core, asid, virtual_address)

        self._mem_from_l2 = profiled_mem
        self._dram_access = profiled_dram
        self._translate_via_pom = profiled_pom

    def _apply_static_partition(self) -> None:
        if self.scheme.partition_mode is not PartitionMode.STATIC:
            return
        for core in self.cores:
            split = self.config.static_data_ways or core.l2.ways // 2
            core.l2.set_partition(min(split, core.l2.ways - 1))
        split = self.config.static_data_ways or self.l3.ways // 2
        self.l3.set_partition(min(split, self.l3.ways - 1))

    # ------------------------------------------------------------------
    # Criticality counter snapshots (paper Section 3.2: read from PMCs)
    # ------------------------------------------------------------------
    def _walk_mean(self) -> float:
        walks = 0
        total = 0
        for core in self.cores:
            stats = core.walker.stats
            walks += stats.walks
            total += stats.total_latency
        if not walks:
            return _DEFAULT_WALK_CYCLES
        return total / walks

    def _pom_hit_rate(self) -> float:
        if self.pom is None or not self.pom.stats.accesses:
            return 0.0
        return self.pom.stats.hit_rate

    def _l3_criticality_inputs(self) -> CriticalityInputs:
        dram = self.ddr.average_latency()
        return CriticalityInputs(
            next_data_latency=dram,
            tlb_downstream_latency=0.0,
            pom_hit_rate=self._pom_hit_rate(),
            pom_latency=self.die_stacked.average_latency(),
            walk_latency=self._walk_mean(),
        )

    def _l2_criticality_inputs(self) -> CriticalityInputs:
        stats = self.l3.stats
        data_total = stats.data_hits + stats.data_misses
        data_hit_rate = stats.data_hits / data_total if data_total else 0.5
        tlb_total = stats.tlb_hits + stats.tlb_misses
        tlb_hit_rate = stats.tlb_hits / tlb_total if tlb_total else 0.5
        dram = self.ddr.average_latency()
        l3_latency = self.l3.latency
        tlb_miss_fraction = 1.0 - tlb_hit_rate
        return CriticalityInputs(
            next_data_latency=l3_latency + (1.0 - data_hit_rate) * dram,
            tlb_downstream_latency=l3_latency,
            pom_hit_rate=self._pom_hit_rate(),
            pom_latency=tlb_miss_fraction * self.die_stacked.average_latency(),
            walk_latency=tlb_miss_fraction * self._walk_mean(),
        )

    # ------------------------------------------------------------------
    # Memory datapath
    # ------------------------------------------------------------------
    def _dram_access(self, address: int) -> int:
        if self.host_memory.in_pom_tlb(address):
            return self.die_stacked.access(address)
        return self.ddr.access(address)

    def _mem_from_l2(
        self, core: CoreState, address: int, kind: int, is_write: bool
    ) -> int:
        """A reference entering the core's L2 data cache (Figure 6 path).

        This is the hottest System method: ``line_address`` and the
        controllers' set/tag math are inlined (no tuple-returning
        ``index_of``), and ``kind`` is used as a plain int (``LineKind``
        is an ``IntEnum``; ``TLB`` is truthy).
        """
        line = address & _LINE_MASK
        l2 = core.l2
        acct = self.accounting
        # ``charge_level`` inlined at each serving level: the context
        # cannot change inside one reference, so the prefix/split pair is
        # read once, and a suppressed (None-prefix) context books nothing
        # — exactly the method's semantics, minus three calls per miss.
        if acct is not None:
            prefix = acct._prefix
            if prefix is None:
                acct = None
            else:
                split = acct._split
                current = acct._current
        latency = l2.latency
        if acct is not None:
            component = prefix + ".l2" if split else prefix
            try:
                current[component] += latency
            except KeyError:
                current[component] = latency
            acct.charged += latency
        hit = l2.lookup(line, kind, is_write)
        controller = core.l2_controller
        if controller is not None:
            line_no = line >> l2._line_shift
            controller.observe(
                kind, line_no & l2._set_mask, line_no >> l2._set_bits, hit
            )
        if hit:
            if kind:
                self.tlb_ref_levels["l2"] += 1
            return latency
        l3 = self.l3
        l3_latency = l3.latency
        latency += l3_latency
        if acct is not None:
            component = prefix + ".l3" if split else prefix
            try:
                current[component] += l3_latency
            except KeyError:
                current[component] = l3_latency
            acct.charged += l3_latency
        l3_hit = l3.lookup(line, kind, False)
        controller = self.l3_controller
        if controller is not None:
            line_no = line >> l3._line_shift
            controller.observe(
                kind, line_no & l3._set_mask, line_no >> l3._set_bits, l3_hit
            )
        if kind:
            self.tlb_ref_levels["l3" if l3_hit else "dram"] += 1
        if not l3_hit:
            dram_latency = self._dram_access(line)
            latency += dram_latency
            if acct is not None:
                component = prefix + ".dram" if split else prefix
                try:
                    current[component] += dram_latency
                except KeyError:
                    current[component] = dram_latency
                acct.charged += dram_latency
            # Dirty L3 victims drain to DRAM through the write buffer; no
            # latency is charged on the demand path.
            l3.fill(line, kind)
        evicted = l2.fill(line, kind, dirty=is_write)
        if evicted is not None and evicted.dirty:
            l3.write_back(evicted.address, evicted.kind)
        return latency

    def _mem_from_l2_bare(
        self, core: CoreState, address: int, kind: int, is_write: bool
    ) -> int:
        """:meth:`_mem_from_l2` with the cycle-accounting hooks compiled
        out; bound over it at construction when no accountant exists.
        Must stay result-identical (the golden-equivalence suite compares
        instrumented and bare runs through the public results)."""
        line = address & _LINE_MASK
        l2 = core.l2
        latency = l2.latency
        hit = l2.lookup(line, kind, is_write)
        controller = core.l2_controller
        if controller is not None:
            line_no = line >> l2._line_shift
            controller.observe(
                kind, line_no & l2._set_mask, line_no >> l2._set_bits, hit
            )
        if hit:
            if kind:
                self.tlb_ref_levels["l2"] += 1
            return latency
        l3 = self.l3
        latency += l3.latency
        l3_hit = l3.lookup(line, kind, False)
        controller = self.l3_controller
        if controller is not None:
            line_no = line >> l3._line_shift
            controller.observe(
                kind, line_no & l3._set_mask, line_no >> l3._set_bits, l3_hit
            )
        if kind:
            self.tlb_ref_levels["l3" if l3_hit else "dram"] += 1
        if not l3_hit:
            latency += self._dram_access(line)
            l3.fill(line, kind)
        evicted = l2.fill(line, kind, dirty=is_write)
        if evicted is not None and evicted.dirty:
            l3.write_back(evicted.address, evicted.kind)
        return latency

    def _data_access(self, core: CoreState, address: int, is_write: bool) -> int:
        """A demand data reference from the core (L1D first)."""
        line = address & _LINE_MASK
        l1d = core.l1d
        if l1d.lookup(line, 0, is_write):
            return l1d.latency
        latency = l1d.latency + self._mem_from_l2(core, line, 0, False)
        evicted = l1d.fill(line, 0, dirty=is_write)
        if evicted is not None and evicted.dirty:
            core.l2.write_back(evicted.address, evicted.kind)
        return latency

    # ------------------------------------------------------------------
    # Translation datapath
    # ------------------------------------------------------------------
    def _walk(self, core: CoreState, asid: Asid, virtual_address: int) -> TlbEntry:
        vm = self.vms[asid.vm_id]
        core.stats.page_walks += 1
        acct = self.accounting
        # The walker sets its own per-level charging contexts; save the
        # caller's (POM/TSB/none) and put it back afterwards (inlined
        # ``context(None)``/``restore``).
        if acct is not None:
            saved = (acct._prefix, acct._split)
            acct._prefix = None
            acct._split = False
        prof = self._profiler
        if prof is not None:
            with prof.scope("walker"):
                result = self._do_walk(core, vm, asid, virtual_address)
        else:
            result = self._do_walk(core, vm, asid, virtual_address)
        if acct is not None:
            acct._prefix, acct._split = saved
        tel = self.telemetry
        if tel is not None:
            if tel.tracer is not None:
                tel.tracer.emit(
                    EVENT_WALK,
                    core.stats.cycles,
                    core.core_id,
                    duration=float(result.latency),
                    refs=result.memory_refs,
                    virtualized=not vm.native,
                )
            if self._walk_hist is not None:
                self._walk_hist.record(result.latency)
        self._last_walk_latency = result.latency
        return TlbEntry(
            frame_base=result.translation.frame_base,
            page_bits=result.translation.page_bits,
        )

    def _walk_bare(
        self, core: CoreState, asid: Asid, virtual_address: int
    ) -> TlbEntry:
        """:meth:`_walk` without telemetry/accounting/profiler hooks;
        bound over it at construction when no telemetry bundle exists."""
        vm = self.vms[asid.vm_id]
        core.stats.page_walks += 1
        result = self._do_walk(core, vm, asid, virtual_address)
        self._last_walk_latency = result.latency
        return TlbEntry(
            frame_base=result.translation.frame_base,
            page_bits=result.translation.page_bits,
        )

    def _do_walk(
        self, core: CoreState, vm: VirtualMachine, asid: Asid, virtual_address: int
    ):
        if vm.native:
            return core.walker.walk_native(
                asid, vm.guest_table(asid.process_id), virtual_address
            )
        return core.walker.walk_virtualized(asid, vm, virtual_address)

    def _translate_via_pom(
        self, core: CoreState, asid: Asid, virtual_address: int
    ) -> Tuple[int, TlbEntry]:
        """POM-TLB path: probe (through the caches), walk on miss."""
        pom = self.pom
        acct = self.accounting
        saved = acct.context("pom", split=True) if acct is not None else None
        latency = 0
        probes = 0
        entry = None
        hit_bits = None
        for page_bits in pom.lookup_order(asid):
            # Fused content-probe + set-address: one hash instead of two.
            # The POM content and the cache traffic are independent
            # structures, so probing before the memory reference is
            # result-identical to the old probe-after ordering.
            entry, set_addr = pom.probe_with_address(
                asid, virtual_address, page_bits
            )
            latency += self._mem_from_l2(core, set_addr, LineKind.TLB, False)
            probes += 1
            if entry is not None:
                hit_bits = page_bits
                break
        pom.record_outcome(asid, entry is not None, hit_bits, probes)
        tel = self.telemetry
        if tel is not None:
            hit = entry is not None
            if tel.tracer is not None:
                tel.tracer.emit(
                    EVENT_POM_LOOKUP,
                    core.stats.cycles,
                    core.core_id,
                    hit=hit,
                    probes=probes,
                    latency=latency,
                )
            if hit and self._pom_hit_hist is not None:
                self._pom_hit_hist.record(latency)
        if entry is not None:
            if acct is not None:
                acct.restore(saved)
            if core.prefetcher is not None:
                self._maybe_prefetch(core, asid, virtual_address, entry.page_bits)
            return latency, entry
        entry = self._walk(core, asid, virtual_address)
        latency += self._last_walk_latency
        pom.insert(asid, virtual_address, entry)
        # The fill dirties the set line in the cache hierarchy.
        fill_addr = pom.set_address(asid, virtual_address, entry.page_bits)
        latency += self._mem_from_l2(core, fill_addr, LineKind.TLB, True)
        if acct is not None:
            acct.restore(saved)
        if core.prefetcher is not None:
            self._maybe_prefetch(core, asid, virtual_address, entry.page_bits)
        return latency, entry

    def _maybe_prefetch(
        self, core: CoreState, asid: Asid, virtual_address: int, page_bits: int
    ) -> None:
        """Sequential TLB prefetch off the critical path.

        The probe's cache traffic is modeled (it can pollute), but no
        stall is charged to the demanding instruction — so the cycle
        accountant's context is suppressed for the duration.
        """
        acct = self.accounting
        saved = acct.context(None) if acct is not None else None
        try:
            self._prefetch_body(core, asid, virtual_address, page_bits)
        finally:
            if acct is not None:
                acct.restore(saved)

    def _prefetch_body(
        self, core: CoreState, asid: Asid, virtual_address: int, page_bits: int
    ) -> None:
        prefetcher = core.prefetcher
        vpn = virtual_address >> page_bits
        if not prefetcher.observe_miss(asid, vpn):
            return
        target = (vpn + prefetcher.stride) << page_bits
        key = (core.core_id, asid, vpn + prefetcher.stride, page_bits)
        if core.l2_tlb.probe(asid, target) is not None:
            return
        vm = self.vms[asid.vm_id]
        if vm.guest_table(asid.process_id).lookup(target) is None:
            return  # never walk speculatively for an unmapped page
        set_addr = self.pom.set_address(asid, target, page_bits)
        self._mem_from_l2(core, set_addr, LineKind.TLB, False)
        entry = self.pom.probe(asid, target, page_bits)
        if entry is not None:
            core.l2_tlb.insert(asid, target, entry)
            self._prefetched.add(key)

    # -- TSB baseline ---------------------------------------------------
    def _guest_tsb(self, vm_id: int, process_id: int) -> Tsb:
        key = (vm_id, process_id)
        tsb = self._guest_tsbs.get(key)
        if tsb is None:
            vm = self.vms[vm_id]
            frames = (self.config.tsb_entries * 16) // 4096
            base_frame = vm._guest_allocator.alloc(contiguous=frames)
            tsb = Tsb(
                f"guest-tsb-{vm_id}.{process_id}",
                base_address=base_frame << PAGE_4K_BITS,
                num_entries=self.config.tsb_entries,
            )
            self._guest_tsbs[key] = tsb
        return tsb

    def _host_tsb(self, vm_id: int) -> Tsb:
        tsb = self._host_tsbs.get(vm_id)
        if tsb is None:
            vm = self.vms[vm_id]
            frames = (self.config.tsb_entries * 16) // 4096
            base_frame = vm._host_allocator.alloc(contiguous=frames)
            tsb = Tsb(
                f"host-tsb-{vm_id}",
                base_address=base_frame << PAGE_4K_BITS,
                num_entries=self.config.tsb_entries,
            )
            self._host_tsbs[vm_id] = tsb
        return tsb

    def _translate_via_tsb(
        self, core: CoreState, asid: Asid, virtual_address: int
    ) -> Tuple[int, TlbEntry]:
        """TSB path (Section 5.2): trap, multi-probe, walk on miss.

        Virtualized: the guest TSB (gVA -> gPA) lives in guest memory, so
        the probe's own address needs a nested translation; a hit is then
        followed by a host TSB probe (gPA -> hPA).  Native: one probe.
        """
        acct = self.accounting
        saved = acct.context("tsb", split=True) if acct is not None else None
        try:
            return self._tsb_body(core, asid, virtual_address)
        finally:
            if acct is not None:
                acct.restore(saved)

    def _tsb_body(
        self, core: CoreState, asid: Asid, virtual_address: int
    ) -> Tuple[int, TlbEntry]:
        acct = self.accounting
        vm = self.vms[asid.vm_id]
        latency = TSB_TRAP_CYCLES
        if acct is not None:
            acct.charge("tsb.trap", TSB_TRAP_CYCLES)
        predicted, other = (
            (PAGE_2M_BITS, PAGE_4K_BITS)
            if self._tsb_predictor.predict(asid) == PAGE_2M_BITS
            else (PAGE_4K_BITS, PAGE_2M_BITS)
        )
        if vm.native:
            tsb = self._host_tsb(asid.vm_id)
            entry = None
            for page_bits in (predicted, other):
                slot = tsb.slot_address(asid, virtual_address, page_bits)
                latency += self._mem_from_l2(core, slot, LineKind.TLB, False)
                entry = tsb.probe(asid, virtual_address, page_bits)
                if entry is not None:
                    break
            if entry is None:
                entry = self._walk(core, asid, virtual_address)
                latency += self._last_walk_latency + TSB_TRAP_CYCLES
                if acct is not None:
                    acct.charge("tsb.trap", TSB_TRAP_CYCLES)
                tsb.insert(asid, virtual_address, entry)
            self._tsb_predictor.update(asid, entry.page_bits)
            return latency, entry

        guest_tsb = self._guest_tsb(asid.vm_id, asid.process_id)
        guest_entry = None
        for page_bits in (predicted, other):
            slot_gpa = guest_tsb.slot_address(asid, virtual_address, page_bits)
            nested_latency, _refs, slot_hpa = core.walker.translate_guest_physical(
                vm, slot_gpa
            )
            latency += nested_latency
            latency += self._mem_from_l2(core, slot_hpa, LineKind.TLB, False)
            guest_entry = guest_tsb.probe(asid, virtual_address, page_bits)
            if guest_entry is not None:
                break
        host_entry = None
        if guest_entry is not None:
            # guest_entry.frame_base is a *guest* frame; resolve via host TSB.
            host_tsb = self._host_tsb(asid.vm_id)
            guest_physical = guest_entry.frame_base << PAGE_4K_BITS
            slot = host_tsb.slot_address(
                Asid(asid.vm_id, 0), guest_physical, guest_entry.page_bits
            )
            latency += self._mem_from_l2(core, slot, LineKind.TLB, False)
            host_entry = host_tsb.probe(
                Asid(asid.vm_id, 0), guest_physical, guest_entry.page_bits
            )
        if host_entry is None:
            entry = self._walk(core, asid, virtual_address)
            latency += self._last_walk_latency + TSB_TRAP_CYCLES
            if acct is not None:
                acct.charge("tsb.trap", TSB_TRAP_CYCLES)
            guest_translation = vm.guest_table(asid.process_id).lookup(
                virtual_address
            )
            guest_tsb.insert(
                asid,
                virtual_address,
                TlbEntry(guest_translation.frame_base, guest_translation.page_bits),
            )
            self._host_tsb(asid.vm_id).insert(
                Asid(asid.vm_id, 0),
                guest_translation.frame_base << PAGE_4K_BITS,
                entry,
            )
        else:
            entry = host_entry
        self._tsb_predictor.update(asid, entry.page_bits)
        return latency, entry

    def translate_beyond_l1(
        self, core: CoreState, asid: Asid, virtual_address: int
    ) -> Tuple[int, TlbEntry]:
        """Service an L1 TLB miss; returns (stall cycles, translation)."""
        l2_tlb = core.l2_tlb
        latency = l2_tlb.latency
        acct = self.accounting
        if acct is not None:
            current = acct._current
            try:
                current["tlb.l2tlb"] += latency
            except KeyError:
                current["tlb.l2tlb"] = latency
            acct.charged += latency
        entry = l2_tlb.lookup(asid, virtual_address)
        l1_pair = core.l1_tlb
        if entry is not None:
            if core.prefetcher is not None:
                key = (
                    core.core_id, asid,
                    virtual_address >> entry.page_bits, entry.page_bits,
                )
                if key in self._prefetched:
                    self._prefetched.discard(key)
                    core.prefetcher.credit_hit()
            # L1 pair insert dispatched inline (one call frame saved on
            # every L1 TLB miss).
            (
                l1_pair.tlb_4k if entry.page_bits == PAGE_4K_BITS
                else l1_pair.tlb_2m
            ).insert(asid, virtual_address, entry)
            return latency, entry
        core.stats.l2_tlb_misses += 1
        tel = self.telemetry
        # ``emit`` is a no-op without a tracer; skip the call (and its
        # kwargs build) on every L2 TLB miss of untraced runs.
        if tel is not None and tel.tracer is not None:
            tel.emit(
                EVENT_TLB_MISS, core.stats.cycles, core.core_id, level="l2"
            )
        if self.scheme.uses_pom_tlb:
            extra, entry = self._translate_via_pom(core, asid, virtual_address)
        elif self.scheme.uses_tsb:
            extra, entry = self._translate_via_tsb(core, asid, virtual_address)
        else:
            entry = self._walk(core, asid, virtual_address)
            extra = self._last_walk_latency
        latency += extra
        l2_tlb.insert(asid, virtual_address, entry)
        (
            l1_pair.tlb_4k if entry.page_bits == PAGE_4K_BITS
            else l1_pair.tlb_2m
        ).insert(asid, virtual_address, entry)
        return latency, entry

    # ------------------------------------------------------------------
    # Per-access execution (the CPU timing model)
    # ------------------------------------------------------------------
    def access(
        self, core_id: int, asid: Asid, virtual_address: int, is_write: bool
    ) -> None:
        """Run one memory instruction (plus its non-memory companions)."""
        core = self.cores[core_id]
        stats = core.stats
        instructions = self._instructions_per_access
        cycles = self._base_cycles
        acct = self.accounting
        if acct is not None:
            # ``begin`` guard inlined: consecutive accesses from one
            # (core, VM) — the engine's whole batch — skip the call.
            vm_id = asid.vm_id
            if core_id != acct._core_id or vm_id != acct._vm_id:
                acct.begin(core_id, vm_id)
            current = acct._current
            try:
                current["base"] += cycles
            except KeyError:
                current["base"] = cycles
            acct.charged += cycles

        entry = core.l1_tlb.lookup(asid, virtual_address)
        if entry is None:
            stats.l1_tlb_misses += 1
            mark = acct.charged if acct is not None else 0.0
            stall, entry = self.translate_beyond_l1(core, asid, virtual_address)
            # Translation is blocking: the full latency stalls the core.
            cycles += stall
            stats.translation_stall_cycles += stall
            if acct is not None:
                # Anything the translation path forgot to attribute lands
                # in a residual bucket, keeping the sum invariant
                # structural (tests assert the residual is zero).
                residual = stall - (acct.charged - mark)
                if residual:
                    acct.charge("translation.other", residual)

        page_mask = (1 << entry.page_bits) - 1
        physical = (entry.frame_base << PAGE_4K_BITS) + (virtual_address & page_mask)
        if acct is not None:
            mark = acct.charged
            # ``context``/``restore`` inlined around the data reference.
            saved = (acct._prefix, acct._split)
            acct._prefix = "data"
            acct._split = True
        # ``_data_access`` inlined (one call per simulated access saved);
        # the L2 entry stays behind ``self._mem_from_l2`` so the profiler
        # wrapper seam keeps working.
        line = physical & _LINE_MASK
        l1d = core.l1d
        l1d_latency = l1d.latency
        if l1d.lookup(line, 0, is_write):
            data_latency = l1d_latency
        else:
            data_latency = l1d_latency + self._mem_from_l2(core, line, 0, False)
            evicted = l1d.fill(line, 0, dirty=is_write)
            if evicted is not None and evicted.dirty:
                core.l2.write_back(evicted.address, evicted.kind)
        if acct is not None:
            acct._prefix, acct._split = saved
        miss_latency = data_latency - l1d_latency
        # ``MshrModel.observe`` + ``data_stall`` inlined (same arithmetic,
        # no per-access method/property calls — see mem/mshr.py).
        mshr = core.mshr
        miss_rate = mshr._miss_rate
        stall = 0.0
        if miss_latency > 0:
            miss_rate += mshr.decay * (1.0 - miss_rate)
            mshr._miss_rate = miss_rate
            mlp = 1.0 + (
                min(float(mshr.entries), mshr.workload_mlp) - 1.0
            ) * miss_rate
            stall = round(miss_latency / mlp * _CYCLE_SCALE) / _CYCLE_SCALE
            cycles += stall
            stats.data_stall_cycles += stall
        else:
            mshr._miss_rate = miss_rate + mshr.decay * (0.0 - miss_rate)
        if acct is not None:
            # The ledger booked the *raw* per-level latencies; only the
            # MLP-discounted stall hit the clock.  The (negative) credit
            # is their exact difference.
            credit = stall - (acct.charged - mark)
            if credit:
                acct.charge("data.mlp_credit", credit)

        stats.cycles += cycles
        stats.instructions += instructions
        stats.memory_accesses += 1
        self._total_accesses += 1

    def _access_bare(
        self, core_id: int, asid: Asid, virtual_address: int, is_write: bool
    ) -> None:
        """:meth:`access` with the cycle-accounting hooks compiled out;
        bound over it at construction when no accountant exists."""
        core = self.cores[core_id]
        stats = core.stats
        cycles = self._base_cycles

        entry = core.l1_tlb.lookup(asid, virtual_address)
        if entry is None:
            stats.l1_tlb_misses += 1
            stall, entry = self.translate_beyond_l1(core, asid, virtual_address)
            cycles += stall
            stats.translation_stall_cycles += stall

        page_mask = (1 << entry.page_bits) - 1
        physical = (entry.frame_base << PAGE_4K_BITS) + (virtual_address & page_mask)
        # ``_data_access`` inlined, as in :meth:`access`.
        line = physical & _LINE_MASK
        l1d = core.l1d
        l1d_latency = l1d.latency
        if l1d.lookup(line, 0, is_write):
            data_latency = l1d_latency
        else:
            data_latency = l1d_latency + self._mem_from_l2(core, line, 0, False)
            evicted = l1d.fill(line, 0, dirty=is_write)
            if evicted is not None and evicted.dirty:
                core.l2.write_back(evicted.address, evicted.kind)
        miss_latency = data_latency - l1d_latency
        # ``MshrModel`` fast path inlined, as in :meth:`access`.
        mshr = core.mshr
        miss_rate = mshr._miss_rate
        if miss_latency > 0:
            miss_rate += mshr.decay * (1.0 - miss_rate)
            mshr._miss_rate = miss_rate
            mlp = 1.0 + (
                min(float(mshr.entries), mshr.workload_mlp) - 1.0
            ) * miss_rate
            stall = round(miss_latency / mlp * _CYCLE_SCALE) / _CYCLE_SCALE
            cycles += stall
            stats.data_stall_cycles += stall
        else:
            mshr._miss_rate = miss_rate + mshr.decay * (0.0 - miss_rate)

        stats.cycles += cycles
        stats.instructions += self._instructions_per_access
        stats.memory_accesses += 1
        self._total_accesses += 1

    # ------------------------------------------------------------------
    # TLB shootdown (page migration / unmap support)
    # ------------------------------------------------------------------
    #: IPI + INVLPG handling cost charged to every core on a shootdown.
    SHOOTDOWN_CYCLES_PER_CORE = 100

    def shootdown_page(self, asid: Asid, virtual_address: int) -> int:
        """Invalidate one page's translation everywhere (inter-core IPI).

        Drops matching entries from every core's L1/L2 TLBs and from the
        POM-TLB, and charges each core the IPI handling cost.  Returns the
        total number of TLB entries dropped.
        """
        dropped = 0
        acct = self.accounting
        for core in self.cores:
            dropped += core.l1_tlb.invalidate_page(asid, virtual_address)
            dropped += core.l2_tlb.invalidate_page(asid, virtual_address)
            core.stats.cycles += self.SHOOTDOWN_CYCLES_PER_CORE
            if acct is not None:
                acct.charge_to(
                    core.core_id,
                    asid.vm_id,
                    "shootdown",
                    self.SHOOTDOWN_CYCLES_PER_CORE,
                )
        if self.pom is not None:
            dropped += self.pom.invalidate(asid, virtual_address)
        if self.telemetry is not None:
            self.telemetry.emit(
                EVENT_SHOOTDOWN,
                self._max_cycles(),
                dropped=dropped,
                vm=asid.vm_id,
                process=asid.process_id,
            )
        return dropped

    def remap_page(self, asid: Asid, virtual_address: int) -> None:
        """Migrate a guest page to a new frame and shoot down stale entries."""
        vm = self.vms[asid.vm_id]
        vm.remap_guest_page(asid.process_id, virtual_address)
        self.shootdown_page(asid, virtual_address)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero all counters, keeping microarchitectural state warm.

        Called at the end of the engine's warmup phase so that measured
        statistics reflect steady state rather than compulsory misses.
        """
        from repro.tlb.pom_tlb import PomTlbStats
        from repro.vm.walker import WalkerStats

        for core in self.cores:
            core.stats = CoreStats()
            core.l1_tlb.tlb_4k.reset_stats()
            core.l1_tlb.tlb_2m.reset_stats()
            core.l2_tlb.reset_stats()
            core.l1d.reset_stats()
            core.l2.reset_stats()
            core.walker.stats = WalkerStats()
        self.l3.reset_stats()
        if self.pom is not None:
            self.pom.stats = PomTlbStats()
        for tsb in chain(self._guest_tsbs.values(), self._host_tsbs.values()):
            tsb.stats = type(tsb.stats)()
        self.ddr.reset_stats()
        self.die_stacked.reset_stats()
        self.occupancy_samples.clear()
        self._total_accesses = 0
        self.tlb_ref_levels = {"l2": 0, "l3": 0, "dram": 0}
        # Warmup boundary: drop warmup-era events so the exported trace
        # covers the measured region with monotone per-core timestamps.
        # Metric counters/histograms are deliberately NOT reset: page
        # walks concentrate in warmup (steady state mostly hits the
        # POM-TLB), and the walk/POM latency distributions are machine
        # properties worth keeping.  Callback gauges read the component
        # stats live, so they reflect the measured region regardless.
        # The host profiler keeps running too — it measures *host*
        # performance, for which warmup work is just as real.
        tel = self.telemetry
        if tel is not None and tel.tracer is not None:
            tel.tracer.clear()
        # The cycle ledger must track the zeroed clocks exactly.
        if self.accounting is not None:
            self.accounting.reset()

    def sample_occupancy(self) -> OccupancySample:
        """Scan L2/L3 contents for the Figure 3 occupancy metric."""
        l2_fraction = sum(
            core.l2.occupancy_by_kind(sample_shift=2)[LineKind.TLB]
            for core in self.cores
        ) / len(self.cores)
        l3_fraction = self.l3.occupancy_by_kind(sample_shift=3)[LineKind.TLB]
        sample = OccupancySample(
            access_count=self._total_accesses,
            l2_tlb_fraction=l2_fraction,
            l3_tlb_fraction=l3_fraction,
        )
        self.occupancy_samples.append(sample)
        return sample

    def result(self, workload_name: str = "") -> SimulationResult:
        """Package the run's statistics.

        All per-core aggregates are computed in one pass over the cores
        rather than one ``sum(...)`` scan per statistic.
        """
        l2_misses = 0
        l2_accesses = 0
        walk_count = 0
        walk_total = 0
        instructions = 0
        translation_stall = 0
        data_stall = 0
        for core in self.cores:
            l2_stats = core.l2.stats
            l2_misses += l2_stats.misses
            l2_accesses += l2_stats.accesses
            walker_stats = core.walker.stats
            walk_count += walker_stats.walks
            walk_total += walker_stats.total_latency
            core_stats = core.stats
            instructions += core_stats.instructions
            translation_stall += core_stats.translation_stall_cycles
            data_stall += core_stats.data_stall_cycles
        l3_stats = self.l3.stats
        data_total = l3_stats.data_hits + l3_stats.data_misses
        l2_timeline = []
        if self.cores[0].l2_controller is not None:
            l2_timeline = self.cores[0].l2_controller.tlb_fraction_timeline()
        l3_timeline = []
        if self.l3_controller is not None:
            l3_timeline = self.l3_controller.tlb_fraction_timeline()
        cpi_stack = None
        if self.accounting is not None and self.accounting.synced:
            cpi_stack = self.accounting.build_stack(
                scheme=self.scheme.value,
                num_cores=len(self.cores),
                instructions=instructions,
            )
        return SimulationResult(
            scheme=self.scheme.value,
            workload=workload_name,
            per_core=[core.stats for core in self.cores],
            l2_cache_misses=l2_misses,
            l2_cache_accesses=l2_accesses,
            l3_cache_misses=l3_stats.misses,
            l3_cache_accesses=l3_stats.accesses,
            l3_data_hit_rate=(
                l3_stats.data_hits / data_total if data_total else 0.0
            ),
            pom_hits=self.pom.stats.hits if self.pom else 0,
            pom_misses=self.pom.stats.misses if self.pom else 0,
            walk_mean_cycles=walk_total / walk_count if walk_count else 0.0,
            walk_count=walk_count,
            occupancy_samples=list(self.occupancy_samples),
            l2_partition_timeline=l2_timeline,
            l3_partition_timeline=l3_timeline,
            cpi_stack=cpi_stack,
            extra={
                "ddr_accesses": float(self.ddr.stats.accesses),
                "ddr_row_hit_rate": self.ddr.stats.row_hit_rate,
                "die_stacked_accesses": float(self.die_stacked.stats.accesses),
                "die_stacked_row_hit_rate": self.die_stacked.stats.row_hit_rate,
                "tlb_refs_l2": float(self.tlb_ref_levels["l2"]),
                "tlb_refs_l3": float(self.tlb_ref_levels["l3"]),
                "tlb_refs_dram": float(self.tlb_ref_levels["dram"]),
                "translation_stall": translation_stall,
                "data_stall": data_stall,
            },
        )

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Plain-data snapshot of every stateful structure in the machine.

        Closures (walker accessors, controller clocks, telemetry hooks)
        are wiring, not state: a restore applies this snapshot to a
        *freshly built* System whose wiring is identical by construction.
        """
        return {
            "vms": [vm.state_dict() for vm in self.vms],
            "ddr": self.ddr.state_dict(),
            "die_stacked": self.die_stacked.state_dict(),
            "l3": self.l3.state_dict(),
            "l3_controller": (
                None if self.l3_controller is None
                else self.l3_controller.state_dict()
            ),
            "pom": None if self.pom is None else self.pom.state_dict(),
            "prefetched": sorted(self._prefetched),
            "tsb_predictor": self._tsb_predictor.state_dict(),
            "guest_tsbs": {
                key: tsb.state_dict() for key, tsb in self._guest_tsbs.items()
            },
            "host_tsbs": {
                vm_id: tsb.state_dict()
                for vm_id, tsb in self._host_tsbs.items()
            },
            "cores": [
                {
                    "stats": replace(core.stats),
                    "l1_tlb": core.l1_tlb.state_dict(),
                    "l2_tlb": core.l2_tlb.state_dict(),
                    "l1d": core.l1d.state_dict(),
                    "l2": core.l2.state_dict(),
                    "walker": core.walker.state_dict(),
                    "mshr": core.mshr.state_dict(),
                    "l2_controller": (
                        None if core.l2_controller is None
                        else core.l2_controller.state_dict()
                    ),
                    "prefetcher": (
                        None if core.prefetcher is None
                        else core.prefetcher.state_dict()
                    ),
                }
                for core in self.cores
            ],
            "occupancy_samples": [
                replace(sample) for sample in self.occupancy_samples
            ],
            "total_accesses": self._total_accesses,
            "last_walk_latency": self._last_walk_latency,
            "tlb_ref_levels": dict(self.tlb_ref_levels),
            "accounting": (
                None if self.accounting is None
                else self.accounting.state_dict()
            ),
        }

    def load_state(self, state: dict) -> None:
        if len(state["vms"]) != len(self.vms):
            raise ValueError(
                f"snapshot has {len(state['vms'])} VMs, this system has "
                f"{len(self.vms)}"
            )
        if len(state["cores"]) != len(self.cores):
            raise ValueError(
                f"snapshot has {len(state['cores'])} cores, this system "
                f"has {len(self.cores)}"
            )
        if (state["pom"] is None) != (self.pom is None):
            raise ValueError(
                "snapshot and system disagree on whether a POM-TLB exists "
                "(different schemes?)"
            )
        if (state["l3_controller"] is None) != (self.l3_controller is None):
            raise ValueError(
                "snapshot and system disagree on L3 partition control "
                "(different schemes?)"
            )
        for vm, vm_state in zip(self.vms, state["vms"]):
            vm.load_state(vm_state)
        self.ddr.load_state(state["ddr"])
        self.die_stacked.load_state(state["die_stacked"])
        self.l3.load_state(state["l3"])
        if self.l3_controller is not None:
            self.l3_controller.load_state(state["l3_controller"])
        if self.pom is not None:
            self.pom.load_state(state["pom"])
        self._prefetched = set(state["prefetched"])
        self._tsb_predictor.load_state(state["tsb_predictor"])
        # TSBs are created lazily (allocating frames as a side effect);
        # the frames are already marked used in the restored allocators,
        # so rebuild the TSB objects directly at their recorded addresses.
        self._guest_tsbs = {
            key: Tsb.from_state(tsb_state)
            for key, tsb_state in state["guest_tsbs"].items()
        }
        self._host_tsbs = {
            vm_id: Tsb.from_state(tsb_state)
            for vm_id, tsb_state in state["host_tsbs"].items()
        }
        for core, core_state in zip(self.cores, state["cores"]):
            if (core_state["l2_controller"] is None) != (
                core.l2_controller is None
            ):
                raise ValueError(
                    f"core {core.core_id}: snapshot and system disagree on "
                    "L2 partition control (different schemes?)"
                )
            if (core_state["prefetcher"] is None) != (core.prefetcher is None):
                raise ValueError(
                    f"core {core.core_id}: snapshot and system disagree on "
                    "TLB prefetching"
                )
            core.stats = replace(core_state["stats"])
            core.l1_tlb.load_state(core_state["l1_tlb"])
            core.l2_tlb.load_state(core_state["l2_tlb"])
            core.l1d.load_state(core_state["l1d"])
            core.l2.load_state(core_state["l2"])
            core.walker.load_state(core_state["walker"])
            core.mshr.load_state(core_state["mshr"])
            if core.l2_controller is not None:
                core.l2_controller.load_state(core_state["l2_controller"])
            if core.prefetcher is not None:
                core.prefetcher.load_state(core_state["prefetcher"])
        self.occupancy_samples = [
            replace(sample) for sample in state["occupancy_samples"]
        ]
        self._total_accesses = state["total_accesses"]
        self._last_walk_latency = state["last_walk_latency"]
        self.tlb_ref_levels = dict(state["tlb_ref_levels"])
        if self.accounting is not None:
            accounting_state = state.get("accounting")
            if accounting_state is not None:
                self.accounting.load_state(accounting_state)
            else:
                # Snapshot predates the ledger: charges since warmup are
                # unknown, so the sum invariant can no longer be audited.
                self.accounting.mark_unsynced()
