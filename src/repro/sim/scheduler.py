"""VM contexts and the round-robin context-switch scheduler.

The paper's setup (Section 4.2): each core runs threads from
``contexts_per_core`` virtual machines and switches between them every
10 ms (40 M cycles at 4 GHz; scaled in simulation).  Context switches do
not flush ASID-tagged TLBs or physically-tagged caches — the damage is
pure capacity competition, which is the effect under study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from repro.mem.address import Asid, PAGE_4K_BITS
from repro.telemetry import Telemetry
from repro.telemetry.events import EVENT_SWITCH
from repro.vm.walker import VirtualMachine


@dataclass
class Context:
    """One schedulable entity: a thread of a workload inside one VM."""

    asid: Asid
    vm: VirtualMachine
    stream: Iterator[Tuple[int, bool]]
    huge_va_limit: int = 0
    native: bool = False
    #: The workload's inherent memory-level parallelism (MSHR model cap).
    mlp: float = 4.0
    #: Accesses drawn from ``stream`` so far.  Streams are deterministic
    #: infinite generators, so this count is all a checkpoint needs: on
    #: restore the rebuilt stream is fast-forwarded by ``consumed``.
    consumed: int = 0
    _mapped: Set[int] = field(default_factory=set)

    def page_bits(self, virtual_address: int) -> int:
        """Page size policy: VAs below ``huge_va_limit`` use 2 MB pages."""
        return 21 if virtual_address < self.huge_va_limit else PAGE_4K_BITS

    def ensure_mapped(self, virtual_address: int) -> None:
        """Demand-map the page on first touch (cheap set check afterwards).

        Runs once per simulated access, so the ``page_bits`` policy is
        inlined rather than called."""
        page_bits = 21 if virtual_address < self.huge_va_limit else PAGE_4K_BITS
        key = (virtual_address >> page_bits) << 1 | (page_bits == 21)
        if key in self._mapped:
            return
        self.vm.ensure_mapped(self.asid.process_id, virtual_address, page_bits)
        self._mapped.add(key)

    def state_dict(self) -> dict:
        return {"consumed": self.consumed, "mapped": set(self._mapped)}

    def load_state(self, state: dict) -> None:
        self.consumed = state["consumed"]
        self._mapped = set(state["mapped"])


class ContextScheduler:
    """Per-core round-robin over contexts with a fixed cycle quantum."""

    def __init__(
        self,
        per_core_contexts: List[List[Context]],
        switch_interval_cycles: int,
        telemetry: Optional[Telemetry] = None,
    ):
        if switch_interval_cycles < 1:
            raise ValueError("switch interval must be positive")
        if not per_core_contexts or not all(per_core_contexts):
            raise ValueError("every core needs at least one context")
        self._contexts = per_core_contexts
        self.switch_interval_cycles = switch_interval_cycles
        self._active = [0] * len(per_core_contexts)
        self._next_switch = [float(switch_interval_cycles)] * len(per_core_contexts)
        self.switches = 0
        self._telemetry = telemetry

    def current(self, core_id: int) -> Context:
        return self._contexts[core_id][self._active[core_id]]

    def maybe_switch(self, core_id: int, core_cycles: float) -> bool:
        """Rotate the core's context if its quantum has elapsed."""
        if core_cycles < self._next_switch[core_id]:
            return False
        contexts = self._contexts[core_id]
        if len(contexts) > 1:
            self._active[core_id] = (self._active[core_id] + 1) % len(contexts)
            self.switches += 1
            if self._telemetry is not None:
                incoming = contexts[self._active[core_id]]
                self._telemetry.emit(
                    EVENT_SWITCH,
                    core_cycles,
                    core_id,
                    context=self._active[core_id],
                    vm=incoming.asid.vm_id,
                )
        self._next_switch[core_id] = core_cycles + self.switch_interval_cycles
        return len(contexts) > 1

    @property
    def num_cores(self) -> int:
        return len(self._contexts)

    def state_dict(self) -> dict:
        """Context contents are snapshotted by the engine (per context);
        this covers only the rotation state."""
        return {
            "active": list(self._active),
            "next_switch": list(self._next_switch),
            "switches": self.switches,
        }

    def load_state(self, state: dict) -> None:
        if len(state["active"]) != len(self._contexts):
            raise ValueError(
                f"scheduler snapshot covers {len(state['active'])} cores, "
                f"this scheduler has {len(self._contexts)}"
            )
        self._active = list(state["active"])
        self._next_switch = list(state["next_switch"])
        self.switches = state["switches"]
