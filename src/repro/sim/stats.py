"""Simulation statistics: per-core counters and whole-run results.

The paper's metrics, and where they come from here:

* **IPC / performance improvement** — geometric mean of per-core IPC
  (paper Section 4.2), compared across schemes;
* **L2 TLB MPKI** — L2 TLB misses per kilo-instruction (Figure 1);
* **page-walk cycles per L2 TLB miss** — walker latency over misses
  (Table 1);
* **fraction of page walks eliminated** — 1 - walks / L2-TLB misses
  (Figure 8);
* **L2/L3 data-cache MPKI** — demand misses per kilo-instruction
  (Figures 10-11);
* **TLB occupancy of the caches** — periodic occupancy scans (Figure 3);
* **partition timeline** — controller decisions over time (Figure 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class CoreStats:
    """One core's execution counters."""

    instructions: int = 0
    cycles: float = 0.0
    memory_accesses: int = 0
    translation_stall_cycles: float = 0.0
    data_stall_cycles: float = 0.0
    l1_tlb_misses: int = 0
    l2_tlb_misses: int = 0
    page_walks: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l2_tlb_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_tlb_misses / self.instructions


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, tolerant of empty input (returns 0)."""
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


@dataclass
class OccupancySample:
    """One periodic scan of cache contents (Figure 3 raw data)."""

    access_count: int
    l2_tlb_fraction: float
    l3_tlb_fraction: float


@dataclass
class SimulationResult:
    """Everything the experiment harness reads out of one run."""

    scheme: str
    workload: str
    per_core: List[CoreStats]
    l2_cache_misses: int
    l2_cache_accesses: int
    l3_cache_misses: int
    l3_cache_accesses: int
    l3_data_hit_rate: float
    pom_hits: int
    pom_misses: int
    walk_mean_cycles: float
    walk_count: int
    occupancy_samples: List[OccupancySample] = field(default_factory=list)
    l2_partition_timeline: List[Tuple[int, float]] = field(default_factory=list)
    l3_partition_timeline: List[Tuple[int, float]] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def instructions(self) -> int:
        return sum(core.instructions for core in self.per_core)

    @property
    def ipc(self) -> float:
        """Paper metric: geometric mean of per-core IPC."""
        return geometric_mean([core.ipc for core in self.per_core])

    @property
    def l2_tlb_misses(self) -> int:
        return sum(core.l2_tlb_misses for core in self.per_core)

    @property
    def l2_tlb_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_tlb_misses / self.instructions

    @property
    def l2_cache_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_cache_misses / self.instructions

    @property
    def l3_cache_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l3_cache_misses / self.instructions

    @property
    def page_walks(self) -> int:
        return sum(core.page_walks for core in self.per_core)

    @property
    def walks_eliminated_fraction(self) -> float:
        """Fraction of would-be page walks absorbed by the L3 TLB (Fig. 8)."""
        misses = self.l2_tlb_misses
        if not misses:
            return 0.0
        return 1.0 - self.page_walks / misses

    @property
    def pom_hit_rate(self) -> float:
        total = self.pom_hits + self.pom_misses
        return self.pom_hits / total if total else 0.0

    @property
    def walk_cycles_per_l2_miss(self) -> float:
        """Table 1 metric: average walk cost charged per L2 TLB miss."""
        if not self.l2_tlb_misses:
            return 0.0
        return self.walk_mean_cycles * self.walk_count / self.l2_tlb_misses

    @property
    def mean_l2_tlb_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return sum(s.l2_tlb_fraction for s in self.occupancy_samples) / len(
            self.occupancy_samples
        )

    @property
    def mean_l3_tlb_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return sum(s.l3_tlb_fraction for s in self.occupancy_samples) / len(
            self.occupancy_samples
        )

    def speedup_over(self, baseline: "SimulationResult") -> float:
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc
