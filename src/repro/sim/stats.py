"""Simulation statistics: per-core counters and whole-run results.

The paper's metrics, and where they come from here:

* **IPC / performance improvement** — geometric mean of per-core IPC
  (paper Section 4.2), compared across schemes;
* **L2 TLB MPKI** — L2 TLB misses per kilo-instruction (Figure 1);
* **page-walk cycles per L2 TLB miss** — walker latency over misses
  (Table 1);
* **fraction of page walks eliminated** — 1 - walks / L2-TLB misses
  (Figure 8);
* **L2/L3 data-cache MPKI** — demand misses per kilo-instruction
  (Figures 10-11);
* **TLB occupancy of the caches** — periodic occupancy scans (Figure 3);
* **partition timeline** — controller decisions over time (Figure 9).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry.accounting import CpiStack


@dataclass
class CoreStats:
    """One core's execution counters."""

    instructions: int = 0
    cycles: float = 0.0
    memory_accesses: int = 0
    translation_stall_cycles: float = 0.0
    data_stall_cycles: float = 0.0
    l1_tlb_misses: int = 0
    l2_tlb_misses: int = 0
    page_walks: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l2_tlb_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_tlb_misses / self.instructions

    def to_dict(self) -> Dict[str, float]:
        """Raw counters plus the derived per-core rates."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "memory_accesses": self.memory_accesses,
            "translation_stall_cycles": self.translation_stall_cycles,
            "data_stall_cycles": self.data_stall_cycles,
            "l1_tlb_misses": self.l1_tlb_misses,
            "l2_tlb_misses": self.l2_tlb_misses,
            "page_walks": self.page_walks,
            "ipc": self.ipc,
            "l2_tlb_mpki": self.l2_tlb_mpki,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "CoreStats":
        """Inverse of :meth:`to_dict`; derived rates are recomputed."""
        return cls(
            instructions=int(data["instructions"]),
            cycles=float(data["cycles"]),
            memory_accesses=int(data["memory_accesses"]),
            translation_stall_cycles=float(data["translation_stall_cycles"]),
            data_stall_cycles=float(data["data_stall_cycles"]),
            l1_tlb_misses=int(data["l1_tlb_misses"]),
            l2_tlb_misses=int(data["l2_tlb_misses"]),
            page_walks=int(data["page_walks"]),
        )


def geometric_mean(values: List[float]) -> float:
    """Geometric mean over the *positive* inputs.

    Zero or negative values have no logarithm, so they are **silently
    excluded from the mean** — the result is the geometric mean of the
    positive subset only, which matches how the paper aggregates per-core
    IPC (a core that executed nothing contributes no IPC sample).  When
    any value is dropped a :class:`RuntimeWarning` is emitted so callers
    aggregating over dead cores notice.  Empty input (or input with no
    positive values) returns 0.
    """
    positive = [v for v in values if v > 0]
    dropped = len(values) - len(positive)
    if dropped:
        warnings.warn(
            f"geometric_mean dropped {dropped} non-positive value(s) "
            f"out of {len(values)}; the mean covers the positive subset only",
            RuntimeWarning,
            stacklevel=2,
        )
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


@dataclass
class OccupancySample:
    """One periodic scan of cache contents (Figure 3 raw data)."""

    access_count: int
    l2_tlb_fraction: float
    l3_tlb_fraction: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "access_count": self.access_count,
            "l2_tlb_fraction": self.l2_tlb_fraction,
            "l3_tlb_fraction": self.l3_tlb_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "OccupancySample":
        return cls(
            access_count=int(data["access_count"]),
            l2_tlb_fraction=float(data["l2_tlb_fraction"]),
            l3_tlb_fraction=float(data["l3_tlb_fraction"]),
        )


@dataclass
class SimulationResult:
    """Everything the experiment harness reads out of one run."""

    scheme: str
    workload: str
    per_core: List[CoreStats]
    l2_cache_misses: int
    l2_cache_accesses: int
    l3_cache_misses: int
    l3_cache_accesses: int
    l3_data_hit_rate: float
    pom_hits: int
    pom_misses: int
    walk_mean_cycles: float
    walk_count: int
    occupancy_samples: List[OccupancySample] = field(default_factory=list)
    l2_partition_timeline: List[Tuple[int, float]] = field(default_factory=list)
    l3_partition_timeline: List[Tuple[int, float]] = field(default_factory=list)
    #: Per-component cycle attribution (present when the run carried a
    #: :class:`~repro.telemetry.accounting.CycleAccountant`); the
    #: components sum bit-exactly to the per-core cycle totals.
    cpi_stack: Optional[CpiStack] = None
    #: Free-form counters; ints stay ints so persisted results round-trip
    #: exactly (``host_seconds`` is the one host-dependent key).
    extra: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def instructions(self) -> int:
        return sum(core.instructions for core in self.per_core)

    @property
    def ipc(self) -> float:
        """Paper metric: geometric mean of per-core IPC."""
        return geometric_mean([core.ipc for core in self.per_core])

    @property
    def l2_tlb_misses(self) -> int:
        return sum(core.l2_tlb_misses for core in self.per_core)

    @property
    def l2_tlb_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_tlb_misses / self.instructions

    @property
    def l2_cache_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_cache_misses / self.instructions

    @property
    def l3_cache_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l3_cache_misses / self.instructions

    @property
    def page_walks(self) -> int:
        return sum(core.page_walks for core in self.per_core)

    @property
    def walks_eliminated_fraction(self) -> float:
        """Fraction of would-be page walks absorbed by the L3 TLB (Fig. 8)."""
        misses = self.l2_tlb_misses
        if not misses:
            return 0.0
        return 1.0 - self.page_walks / misses

    @property
    def pom_hit_rate(self) -> float:
        total = self.pom_hits + self.pom_misses
        return self.pom_hits / total if total else 0.0

    @property
    def walk_cycles_per_l2_miss(self) -> float:
        """Table 1 metric: average walk cost charged per L2 TLB miss."""
        if not self.l2_tlb_misses:
            return 0.0
        return self.walk_mean_cycles * self.walk_count / self.l2_tlb_misses

    @property
    def mean_l2_tlb_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return sum(s.l2_tlb_fraction for s in self.occupancy_samples) / len(
            self.occupancy_samples
        )

    @property
    def mean_l3_tlb_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return sum(s.l3_tlb_fraction for s in self.occupancy_samples) / len(
            self.occupancy_samples
        )

    def speedup_over(self, baseline: "SimulationResult") -> float:
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: the one schema experiments, ``repro run
        --json`` and external tools consume.

        Contains the raw per-core counters, every derived paper metric,
        the occupancy samples and partition timelines, and the ``extra``
        grab-bag — everything needed to rebuild any exhibit offline.
        """
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "l2_tlb_misses": self.l2_tlb_misses,
            "l2_tlb_mpki": self.l2_tlb_mpki,
            "l2_cache_misses": self.l2_cache_misses,
            "l2_cache_accesses": self.l2_cache_accesses,
            "l2_cache_mpki": self.l2_cache_mpki,
            "l3_cache_misses": self.l3_cache_misses,
            "l3_cache_accesses": self.l3_cache_accesses,
            "l3_cache_mpki": self.l3_cache_mpki,
            "l3_data_hit_rate": self.l3_data_hit_rate,
            "pom_hits": self.pom_hits,
            "pom_misses": self.pom_misses,
            "pom_hit_rate": self.pom_hit_rate,
            "page_walks": self.page_walks,
            "walk_count": self.walk_count,
            "walk_mean_cycles": self.walk_mean_cycles,
            "walk_cycles_per_l2_miss": self.walk_cycles_per_l2_miss,
            "walks_eliminated_fraction": self.walks_eliminated_fraction,
            "mean_l2_tlb_occupancy": self.mean_l2_tlb_occupancy,
            "mean_l3_tlb_occupancy": self.mean_l3_tlb_occupancy,
            "per_core": [core.to_dict() for core in self.per_core],
            "occupancy_samples": [
                sample.to_dict() for sample in self.occupancy_samples
            ],
            "l2_partition_timeline": [
                [count, fraction]
                for count, fraction in self.l2_partition_timeline
            ],
            "l3_partition_timeline": [
                [count, fraction]
                for count, fraction in self.l3_partition_timeline
            ],
            "cpi_stack": (
                None if self.cpi_stack is None else self.cpi_stack.to_dict()
            ),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Rebuild a result from a :meth:`to_dict` snapshot.

        Only the raw fields are read back; every derived metric in the
        snapshot (``ipc``, MPKIs, rates) is recomputed by the properties,
        so a round trip is exact and tamper-evident.
        """
        return cls(
            scheme=str(data["scheme"]),
            workload=str(data["workload"]),
            per_core=[CoreStats.from_dict(core) for core in data["per_core"]],
            l2_cache_misses=int(data["l2_cache_misses"]),
            l2_cache_accesses=int(data["l2_cache_accesses"]),
            l3_cache_misses=int(data["l3_cache_misses"]),
            l3_cache_accesses=int(data["l3_cache_accesses"]),
            l3_data_hit_rate=float(data["l3_data_hit_rate"]),
            pom_hits=int(data["pom_hits"]),
            pom_misses=int(data["pom_misses"]),
            walk_mean_cycles=float(data["walk_mean_cycles"]),
            walk_count=int(data["walk_count"]),
            occupancy_samples=[
                OccupancySample.from_dict(sample)
                for sample in data.get("occupancy_samples", [])
            ],
            l2_partition_timeline=[
                (int(count), float(fraction))
                for count, fraction in data.get("l2_partition_timeline", [])
            ],
            l3_partition_timeline=[
                (int(count), float(fraction))
                for count, fraction in data.get("l3_partition_timeline", [])
            ],
            cpi_stack=(
                CpiStack.from_dict(data["cpi_stack"])
                if data.get("cpi_stack") else None
            ),
            extra=dict(data.get("extra", {})),
        )
