"""Simulation driver: wires workloads to a System and runs the clock.

``run_simulation`` is the main entry point of the library: it builds the
machine for a :class:`~repro.sim.config.SystemConfig`, instantiates one
context per (core, VM) from the given workloads, and interleaves the
cores round-robin (a few accesses per core per turn) so that sharing in
the L3, POM-TLB and DRAM is modeled realistically.  Per-core context
switches happen on the configured cycle quantum.

The driver is also where the robustness machinery plugs in:

* ``checkpoint_every``/``checkpoint_dir`` periodically snapshot the whole
  machine (see :mod:`repro.checkpoint`); ``restore`` resumes from a
  snapshot — a restored-and-continued run is bit-identical to an
  uninterrupted one (the determinism oracle CI enforces);
* ``check_invariants`` audits every structure each M accesses (and always
  right after a restore) via :mod:`repro.validate`;
* ``watchdog_timeout`` arms a wall-clock stall detector that snapshots
  the wedged state and raises
  :class:`~repro.checkpoint.SimulationStalled`.
"""

from __future__ import annotations

import gc
import hashlib
import time
from collections import deque
from itertools import islice
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro import budget as budget_mod
from repro import faults
from repro.errors import ConfigError
from repro.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    SimulationStalled,
    StallWatchdog,
    latest_checkpoint,
    read_checkpoint,
)
from repro.mem.address import Asid, PAGE_4K_BITS
from repro.sim.config import SystemConfig
from repro.sim.scheduler import Context, ContextScheduler
from repro.sim.stats import SimulationResult
from repro.sim.system import System
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    EVENT_CHECKPOINT,
    EVENT_INVARIANT_CHECK,
    EVENT_RESTORE,
    EVENT_WATCHDOG_TRIP,
)
from repro.telemetry.profiling import ProgressUpdate
from repro.validate import InvariantChecker
from repro.workloads.base import Workload

#: Accesses each core executes before the round-robin moves on.
_CORE_BATCH = 4

#: Seed-derivation scheme identifier, recorded in ``result.extra`` so a
#: rerun years later can verify it regenerated the same streams.
SEED_DERIVATION_SCHEME = "blake2b8(repro.stream:{seed}:{vm_id})"


def derive_stream_seed(seed: int, vm_id: int) -> int:
    """Collision-resistant per-VM stream seed.

    The old ``seed + 97 * vm_id`` folded distinct (seed, vm_id) pairs
    onto the same stream — e.g. (97, 0) and (0, 1) — so two nominally
    independent experiment points could share identical access patterns.
    Hashing the pair keeps every stream distinct and stable across runs.
    Derivation is per-(seed, VM) only: threads of one VM deliberately
    share the seed, so they sample one shared hot set (``thread_stream``
    differentiates them by core id).
    """
    tag = f"repro.stream:{seed}:{vm_id}".encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(tag, digest_size=8).digest(), "big"
    )


def build_contexts(
    system: System, workloads: List[Workload], seed: int = 0
) -> List[List[Context]]:
    """One context per (core, VM): thread ``core`` of each VM's program."""
    config = system.config
    per_core: List[List[Context]] = []
    for core_id in range(config.cores):
        contexts = []
        for vm_id, workload in enumerate(workloads):
            contexts.append(
                Context(
                    asid=Asid(vm_id=vm_id, process_id=0),
                    vm=system.vms[vm_id],
                    stream=workload.thread_stream(
                        core_id, config.cores, derive_stream_seed(seed, vm_id)
                    ),
                    huge_va_limit=workload.huge_va_limit,
                    native=not config.virtualized,
                    mlp=getattr(workload, "mlp", 4.0),
                )
            )
        per_core.append(contexts)
    return per_core


def _run_identity(
    config: SystemConfig,
    workloads: List[Workload],
    total_accesses: int,
    seed: int,
    warmup_fraction: float,
    occupancy_samples: int,
) -> dict:
    """Best-effort fingerprint of what a checkpoint belongs to.

    Restoring a snapshot into a differently-shaped run would not crash —
    it would *converge to wrong numbers* — so the engine refuses when
    any of these differ.
    """
    return {
        "config": repr(config),
        "workloads": [repr(workload) for workload in workloads],
        "total_accesses": total_accesses,
        "seed": seed,
        "warmup_fraction": warmup_fraction,
        "occupancy_samples": occupancy_samples,
    }


def run_simulation(
    config: SystemConfig,
    workloads: List[Workload],
    total_accesses: int = 160_000,
    seed: int = 0,
    occupancy_samples: int = 8,
    workload_name: Optional[str] = None,
    warmup_fraction: float = 0.25,
    system_setup: Optional[Callable[[System], None]] = None,
    telemetry: Optional[Telemetry] = None,
    progress: Optional[Callable[[ProgressUpdate], None]] = None,
    progress_every: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    restore: Optional[Union[str, Path]] = None,
    checkpoint_keep: int = 3,
    check_invariants: Optional[int] = None,
    watchdog_timeout: Optional[float] = None,
    budget: Optional[budget_mod.Budget] = None,
) -> SimulationResult:
    """Simulate ``total_accesses`` memory references across all cores.

    The first ``warmup_fraction`` of the accesses warms caches, TLBs and
    page tables; statistics are reset afterwards so results reflect steady
    state rather than compulsory misses (the paper amortizes these over
    10 B-instruction runs).

    ``system_setup`` is called on the freshly built :class:`System` before
    any access runs — the hook ablation studies use to disable or alter
    individual structures.

    ``telemetry`` wires a :class:`~repro.telemetry.Telemetry` sink bundle
    through the whole machine (event trace, metrics registry, host
    profiler); ``None`` (the default) leaves every hook a no-op.
    ``progress`` is invoked with a
    :class:`~repro.telemetry.ProgressUpdate` every ``progress_every``
    accesses (default: ~5% of the run) and once more at completion.

    Robustness knobs (all default off; fall back to the config's
    ``checkpoint_every``/``check_invariants`` fields when unset here):

    * ``checkpoint_every`` — snapshot the machine every N executed
      accesses into ``checkpoint_dir`` (required with it), keeping the
      newest ``checkpoint_keep``;
    * ``restore`` — path of a snapshot to resume from, or ``"auto"`` to
      pick the newest in ``checkpoint_dir`` (running fresh if there is
      none yet);
    * ``check_invariants`` — audit every structure each M accesses; a
      corrupted structure raises
      :class:`~repro.validate.InvariantViolation` instead of converging
      to wrong numbers.  The audit also always runs right after a
      restore;
    * ``watchdog_timeout`` — wall-clock seconds without forward progress
      before the run is declared stalled: state is snapshotted (into
      ``checkpoint_dir`` when given) and
      :class:`~repro.checkpoint.SimulationStalled` raised;
    * ``budget`` — a :class:`~repro.budget.Budget` of explicit resource
      limits (deadline, RSS ceiling, disk quota, event budget).  A
      :class:`~repro.budget.BudgetMonitor` samples usage beside the
      watchdog; crossing a soft threshold degrades gracefully
      (telemetry downsampling, doubled checkpoint cadence), crossing a
      hard one snapshots the run (when checkpointing is configured) and
      raises :class:`~repro.errors.BudgetExceededError` — resumable
      exactly like an interrupt, and a resumed run converges to the
      same result bit-for-bit (see ``docs/budgets.md``).
    """
    if len(workloads) != config.num_vms:
        raise ConfigError(
            f"config expects {config.num_vms} VM workloads, got {len(workloads)}"
        )
    if total_accesses < 1:
        raise ConfigError("total_accesses must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError("warmup_fraction must be in [0, 1)")
    if checkpoint_every is None:
        checkpoint_every = config.checkpoint_every
    if check_invariants is None:
        check_invariants = config.check_invariants
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be positive")
        if checkpoint_dir is None:
            raise ConfigError("checkpoint_every requires checkpoint_dir")
    if check_invariants is not None and check_invariants < 1:
        raise ConfigError("check_invariants must be positive")
    if restore == "auto" and checkpoint_dir is None:
        raise ConfigError('restore="auto" requires checkpoint_dir')

    system = System(config, telemetry=telemetry)
    if system_setup is not None:
        system_setup(system)
    per_core = build_contexts(system, workloads, seed)
    scheduler = ContextScheduler(
        per_core,
        config.switch_interval_cycles,
        telemetry=telemetry,
    )
    sample_every = max(_CORE_BATCH * config.cores, total_accesses // max(
        1, occupancy_samples
    ))
    executed = 0
    next_sample = sample_every
    warmup_end = int(total_accesses * warmup_fraction)
    warm = warmup_end > 0
    identity = _run_identity(
        config, workloads, total_accesses, seed, warmup_fraction,
        occupancy_samples,
    )

    writer: Optional[CheckpointWriter] = None
    if checkpoint_dir is not None:
        writer = CheckpointWriter(checkpoint_dir, keep=checkpoint_keep)

    metrics = telemetry.metrics if telemetry is not None else None
    checkpoint_counter = metrics.counter("checkpoint.writes") if metrics else None
    checkpoint_hist = (
        metrics.histogram("checkpoint.write_ms") if metrics else None
    )
    watchdog_counter = metrics.counter("watchdog.trips") if metrics else None

    def snapshot_document() -> dict:
        return {
            "identity": identity,
            "engine": {
                "executed": executed,
                "warm": warm,
                "next_sample": next_sample,
            },
            "scheduler": scheduler.state_dict(),
            "contexts": [
                [context.state_dict() for context in contexts]
                for contexts in per_core
            ],
            "system": system.state_dict(),
        }

    restored_from: Optional[Path] = None
    if restore is not None:
        restore_path: Optional[Path]
        if restore == "auto":
            restore_path = latest_checkpoint(checkpoint_dir)
        else:
            restore_path = Path(restore)
        if restore_path is not None:
            document, _header = read_checkpoint(restore_path)
            if document["identity"] != identity:
                mismatched = [
                    key for key in identity
                    if document["identity"].get(key) != identity[key]
                ]
                raise CheckpointError(
                    f"{restore_path} belongs to a different run "
                    f"(mismatched: {', '.join(mismatched)})"
                )
            system.load_state(document["system"])
            scheduler.load_state(document["scheduler"])
            for contexts, states in zip(per_core, document["contexts"]):
                for context, state in zip(contexts, states):
                    context.load_state(state)
                    # Streams are deterministic: fast-forwarding by the
                    # consumed count puts them exactly where they were.
                    # Batched streams skip whole blocks (O(consumed/BATCH)
                    # list hops); plain generators (e.g. traces) fall back
                    # to item-at-a-time draining.
                    skip = getattr(context.stream, "skip", None)
                    if skip is not None:
                        skip(context.consumed)
                    else:
                        deque(islice(context.stream, context.consumed), maxlen=0)
            executed = document["engine"]["executed"]
            warm = document["engine"]["warm"]
            next_sample = document["engine"]["next_sample"]
            restored_from = restore_path
            if telemetry is not None:
                telemetry.emit(
                    EVENT_RESTORE,
                    float(executed),
                    path=str(restore_path),
                    executed=executed,
                )

    checker: Optional[InvariantChecker] = None
    if check_invariants is not None or restored_from is not None:
        checker = InvariantChecker(system, scheduler, telemetry=telemetry)
    if restored_from is not None and checker is not None:
        # A corrupt snapshot must fail loudly here, not as wrong numbers.
        checker.check(executed=executed)
    next_check = (
        None if check_invariants is None
        else check_invariants * (executed // check_invariants + 1)
    )
    next_checkpoint = (
        None if checkpoint_every is None
        else checkpoint_every * (executed // checkpoint_every + 1)
    )

    watchdog: Optional[StallWatchdog] = None
    if watchdog_timeout is not None:
        watchdog = StallWatchdog(watchdog_timeout)
        watchdog.beat(executed)
        watchdog.start()

    monitor: Optional[budget_mod.BudgetMonitor] = None
    monitor_armed_here = False
    if budget is not None and budget.enabled:
        monitor = budget_mod.BudgetMonitor(budget, telemetry=telemetry)
        if checkpoint_dir is not None:
            monitor.track_directory(checkpoint_dir)
        if budget_mod.ACTIVE is None:
            # Make this monitor the process-wide quota authority so the
            # store/checkpoint writers precheck and charge against it.
            budget_mod.arm(monitor)
            monitor_armed_here = True
        monitor.beat(executed)
        monitor.start()

    run_started = time.perf_counter()
    if progress is not None and progress_every is None:
        progress_every = max(_CORE_BATCH * config.cores, total_accesses // 20)
    next_progress = progress_every if progress is not None else None
    # The hot loop allocates only refcount-collected objects (per-turn
    # slices, eviction records); pausing the cycle detector removes its
    # periodic sweeps from the per-access cost without changing results.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while executed < total_accesses:
            for core_id in range(config.cores):
                context = scheduler.current(core_id)
                core = system.cores[core_id]
                core.mshr.workload_mlp = context.mlp
                stream = context.stream
                access = system.access
                ensure = context.ensure_mapped
                asid = context.asid
                take = getattr(stream, "take", None)
                if take is not None:
                    pairs = take(_CORE_BATCH)
                else:
                    pairs = [next(stream) for _ in range(_CORE_BATCH)]
                mapped = context._mapped
                huge_limit = context.huge_va_limit
                for virtual_address, is_write in pairs:
                    # Inlined ``Context.ensure_mapped`` fast path: the key
                    # math must match it exactly (page number << 1 | huge).
                    if virtual_address < huge_limit:
                        key = (virtual_address >> 21) << 1 | 1
                    else:
                        key = (virtual_address >> PAGE_4K_BITS) << 1
                    if key not in mapped:
                        ensure(virtual_address)
                    access(core_id, asid, virtual_address, is_write)
                context.consumed += _CORE_BATCH
                scheduler.maybe_switch(core_id, core.stats.cycles)
            executed += _CORE_BATCH * config.cores
            if watchdog is not None:
                watchdog.beat(executed)
            if monitor is not None:
                monitor.beat(executed)
            if warm and executed >= warmup_end:
                system.reset_stats()
                warm = False
                if checker is not None:
                    # Counters were legitimately zeroed; re-anchor the
                    # monotonicity baseline.
                    checker.reset_baseline()
            if next_check is not None and executed >= next_check:
                checker.check(executed=executed)
                if telemetry is not None and telemetry.tracer is not None:
                    telemetry.emit(
                        EVENT_INVARIANT_CHECK,
                        float(executed),
                        executed=executed,
                        checks_run=checker.checks_run,
                    )
                next_check += check_invariants
            if executed >= next_sample:
                system.sample_occupancy()
                next_sample += sample_every
            if next_progress is not None and executed >= next_progress:
                progress(ProgressUpdate(
                    executed, total_accesses, time.perf_counter() - run_started
                ))
                next_progress += progress_every
            # The snapshot must be the LAST act of the iteration: it has
            # to capture post-sampling state, or a resume would re-reach
            # ``next_sample`` a batch late and sample different contents.
            if next_checkpoint is not None and executed >= next_checkpoint:
                path = writer.write(executed, snapshot_document())
                if checkpoint_counter is not None:
                    checkpoint_counter.inc()
                if checkpoint_hist is not None:
                    checkpoint_hist.record(
                        int(writer.last_write_seconds * 1000)
                    )
                if telemetry is not None:
                    telemetry.emit(
                        EVENT_CHECKPOINT,
                        float(executed),
                        path=str(path),
                        executed=executed,
                        seconds=writer.last_write_seconds,
                    )
                # Soft budget pressure doubles the checkpoint cadence:
                # the closer the hard stop, the less work a stop loses.
                if monitor is not None and monitor.soft_active:
                    next_checkpoint += max(1, checkpoint_every // 2)
                else:
                    next_checkpoint += checkpoint_every
            # Hard budget breach: checkpoint-then-stop.  Checked at the
            # end of the iteration so the snapshot is a consistent,
            # post-sampling resume point — identical semantics to the
            # periodic checkpoint above, so a resumed run is
            # bit-identical to one that was never stopped.
            if monitor is not None and monitor.hard_breach is not None:
                breach_snapshot: Optional[str] = None
                if writer is not None:
                    # The emergency snapshot must land even when the
                    # breached budget *is* the disk quota.
                    writer.enforce_quota = False
                    breach_snapshot = str(
                        writer.write(
                            executed,
                            snapshot_document(),
                            meta={"budget_breach": True},
                        )
                    )
                error = monitor.build_error(
                    f"budget exceeded at access {executed}/{total_accesses}"
                )
                error.snapshot_path = breach_snapshot
                raise error
    except KeyboardInterrupt:
        if watchdog is None or not watchdog.tripped:
            raise  # a real Ctrl-C, not ours
        watchdog.stop()
        if watchdog_counter is not None:
            watchdog_counter.inc()
        snapshot_path: Optional[str] = None
        if writer is not None:
            # We are back on the sole simulating thread, so the state is
            # consistent *between* accesses at worst mid-batch; the stall
            # header marks it as a post-mortem artifact, not a resume point.
            stall_document = snapshot_document()
            if monitor is not None:
                # Budget pressure is prime stall context: a run wedged at
                # 99% RSS died of thrashing, not of a simulator bug.
                stall_document["budget"] = monitor.to_dict()
            injector = faults.ACTIVE
            if injector is not None:
                # A stall under chaos usually IS the chaos: embed the armed
                # plan and the most recent injections in the post-mortem.
                stall_document["chaos"] = {
                    "fault_plan": injector.plan.to_dict(),
                    "recent_faults": injector.recent(16),
                }
            snapshot_path = str(writer.write_stall(executed, stall_document))
        if telemetry is not None:
            telemetry.emit(
                EVENT_WATCHDOG_TRIP,
                float(executed),
                executed=executed,
                timeout_seconds=watchdog.timeout_seconds,
                snapshot=snapshot_path,
            )
        raise SimulationStalled(
            f"no forward progress for {watchdog.timeout_seconds}s at access "
            f"{executed}/{total_accesses}"
            + (f" (state snapshot: {snapshot_path})" if snapshot_path else ""),
            executed=executed,
            timeout_seconds=watchdog.timeout_seconds,
            snapshot_path=snapshot_path,
        ) from None
    finally:
        if gc_was_enabled:
            gc.enable()
        if watchdog is not None:
            watchdog.stop()
        if monitor is not None:
            monitor.stop()
            if monitor_armed_here and budget_mod.ACTIVE is monitor:
                budget_mod.disarm()
    elapsed = time.perf_counter() - run_started
    if progress is not None:
        progress(ProgressUpdate(executed, total_accesses, elapsed))
    if telemetry is not None and telemetry.profiler is not None:
        telemetry.profiler.add("engine.run", elapsed)
    name = workload_name or "+".join(w.name for w in workloads)
    result = system.result(name)
    result.extra["context_switches"] = scheduler.switches
    result.extra["seed"] = seed
    result.extra["seed_derivation"] = {
        "scheme": SEED_DERIVATION_SCHEME,
        "stream_seeds": {
            str(vm_id): derive_stream_seed(seed, vm_id)
            for vm_id in range(config.num_vms)
        },
    }
    # ``host_``-prefixed extras are host-dependent run-control facts; the
    # result store and the determinism oracle strip them before comparing.
    result.extra["host_seconds"] = elapsed
    # Throughput facts for the ``repro bench`` harness: how fast the host
    # chewed through simulated work this run.
    simulated_cycles = sum(core.cycles for core in result.per_core)
    result.extra["host_accesses_per_second"] = (
        executed / elapsed if elapsed > 0 else 0.0
    )
    result.extra["host_sim_cycles_per_second"] = (
        simulated_cycles / elapsed if elapsed > 0 else 0.0
    )
    if writer is not None:
        result.extra["host_checkpoints_written"] = writer.written
    if restored_from is not None:
        result.extra["host_restored_from"] = str(restored_from)
    if monitor is not None:
        # ``host_``-prefixed so the store strips it: a budgeted and an
        # unbudgeted run of the same point persist byte-identical files.
        result.extra["host_budget"] = monitor.to_dict()
    return result
