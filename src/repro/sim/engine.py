"""Simulation driver: wires workloads to a System and runs the clock.

``run_simulation`` is the main entry point of the library: it builds the
machine for a :class:`~repro.sim.config.SystemConfig`, instantiates one
context per (core, VM) from the given workloads, and interleaves the
cores round-robin (a few accesses per core per turn) so that sharing in
the L3, POM-TLB and DRAM is modeled realistically.  Per-core context
switches happen on the configured cycle quantum.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.mem.address import Asid
from repro.sim.config import SystemConfig
from repro.sim.scheduler import Context, ContextScheduler
from repro.sim.stats import SimulationResult
from repro.sim.system import System
from repro.telemetry import Telemetry
from repro.telemetry.profiling import ProgressUpdate
from repro.workloads.base import Workload

#: Accesses each core executes before the round-robin moves on.
_CORE_BATCH = 4


def build_contexts(
    system: System, workloads: List[Workload], seed: int = 0
) -> List[List[Context]]:
    """One context per (core, VM): thread ``core`` of each VM's program."""
    config = system.config
    per_core: List[List[Context]] = []
    for core_id in range(config.cores):
        contexts = []
        for vm_id, workload in enumerate(workloads):
            contexts.append(
                Context(
                    asid=Asid(vm_id=vm_id, process_id=0),
                    vm=system.vms[vm_id],
                    stream=workload.thread_stream(
                        core_id, config.cores, seed + 97 * vm_id
                    ),
                    huge_va_limit=workload.huge_va_limit,
                    native=not config.virtualized,
                    mlp=getattr(workload, "mlp", 4.0),
                )
            )
        per_core.append(contexts)
    return per_core


def run_simulation(
    config: SystemConfig,
    workloads: List[Workload],
    total_accesses: int = 160_000,
    seed: int = 0,
    occupancy_samples: int = 8,
    workload_name: Optional[str] = None,
    warmup_fraction: float = 0.25,
    system_setup: Optional[Callable[[System], None]] = None,
    telemetry: Optional[Telemetry] = None,
    progress: Optional[Callable[[ProgressUpdate], None]] = None,
    progress_every: Optional[int] = None,
) -> SimulationResult:
    """Simulate ``total_accesses`` memory references across all cores.

    The first ``warmup_fraction`` of the accesses warms caches, TLBs and
    page tables; statistics are reset afterwards so results reflect steady
    state rather than compulsory misses (the paper amortizes these over
    10 B-instruction runs).

    ``system_setup`` is called on the freshly built :class:`System` before
    any access runs — the hook ablation studies use to disable or alter
    individual structures.

    ``telemetry`` wires a :class:`~repro.telemetry.Telemetry` sink bundle
    through the whole machine (event trace, metrics registry, host
    profiler); ``None`` (the default) leaves every hook a no-op.
    ``progress`` is invoked with a
    :class:`~repro.telemetry.ProgressUpdate` every ``progress_every``
    accesses (default: ~5% of the run) and once more at completion.
    """
    if len(workloads) != config.num_vms:
        raise ValueError(
            f"config expects {config.num_vms} VM workloads, got {len(workloads)}"
        )
    if total_accesses < 1:
        raise ValueError("total_accesses must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    system = System(config, telemetry=telemetry)
    if system_setup is not None:
        system_setup(system)
    scheduler = ContextScheduler(
        build_contexts(system, workloads, seed),
        config.switch_interval_cycles,
        telemetry=telemetry,
    )
    sample_every = max(_CORE_BATCH * config.cores, total_accesses // max(
        1, occupancy_samples
    ))
    executed = 0
    next_sample = sample_every
    warmup_end = int(total_accesses * warmup_fraction)
    warm = warmup_end > 0
    run_started = time.perf_counter()
    if progress is not None and progress_every is None:
        progress_every = max(_CORE_BATCH * config.cores, total_accesses // 20)
    next_progress = progress_every if progress is not None else None
    while executed < total_accesses:
        for core_id in range(config.cores):
            context = scheduler.current(core_id)
            core = system.cores[core_id]
            core.mshr.workload_mlp = context.mlp
            stream = context.stream
            access = system.access
            ensure = context.ensure_mapped
            asid = context.asid
            for _ in range(_CORE_BATCH):
                virtual_address, is_write = next(stream)
                ensure(virtual_address)
                access(core_id, asid, virtual_address, is_write)
            scheduler.maybe_switch(core_id, core.stats.cycles)
        executed += _CORE_BATCH * config.cores
        if warm and executed >= warmup_end:
            system.reset_stats()
            warm = False
        if executed >= next_sample:
            system.sample_occupancy()
            next_sample += sample_every
        if next_progress is not None and executed >= next_progress:
            progress(ProgressUpdate(
                executed, total_accesses, time.perf_counter() - run_started
            ))
            next_progress += progress_every
    elapsed = time.perf_counter() - run_started
    if progress is not None:
        progress(ProgressUpdate(executed, total_accesses, elapsed))
    if telemetry is not None and telemetry.profiler is not None:
        telemetry.profiler.add("engine.run", elapsed)
    name = workload_name or "+".join(w.name for w in workloads)
    result = system.result(name)
    result.extra["context_switches"] = scheduler.switches
    result.extra["seed"] = seed
    result.extra["host_seconds"] = elapsed
    return result
