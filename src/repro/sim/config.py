"""System configuration with the paper's Table 2 parameters as defaults.

All latencies are in CPU cycles at 4 GHz.  ``time_scale`` shrinks
wall-clock quantities (the 10 ms context-switch quantum) to keep
pure-Python runs tractable while preserving the ratios that drive the
results — see DESIGN.md Section 5.  At the default scale of 1/400, the
paper's 10 ms quantum (40 M cycles) becomes 100 K cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.partitioning import DEFAULT_EPOCH_ACCESSES, N_MIN
from repro.errors import ConfigError
from repro.core.schemes import PartitionMode, Scheme
from repro.vm.mmu_cache import PscConfig

#: Paper platform frequency: cycles per (unscaled) millisecond.
CYCLES_PER_MS = 4_000_000


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int
    ways: int
    latency: int


@dataclass(frozen=True)
class TlbConfig:
    l1_4k_entries: int = 64
    l1_2m_entries: int = 32
    l1_ways: int = 4
    l1_latency: int = 9
    l2_entries: int = 1536
    l2_ways: int = 12
    l2_latency: int = 17


@dataclass(frozen=True)
class SystemConfig:
    """Everything a :class:`~repro.sim.system.System` needs."""

    scheme: Scheme = Scheme.CSALT_CD
    cores: int = 8
    virtualized: bool = True
    contexts_per_core: int = 2

    l1d: CacheConfig = CacheConfig(32 * 1024, 8, 4)
    l2: CacheConfig = CacheConfig(256 * 1024, 4, 12)
    l3: CacheConfig = CacheConfig(8 * 1024 * 1024, 16, 42)
    tlb: TlbConfig = TlbConfig()
    psc: PscConfig = PscConfig()

    pom_tlb_bytes: int = 16 * 1024 * 1024
    tsb_entries: int = 512 * 1024

    #: Radix page-table depth: 4 (x86-64) or 5 (Intel LA57 — the paper's
    #: "five-level page table will only strengthen the motivation").
    page_table_levels: int = 4

    #: Sequential L2-TLB prefetching (Section 6's orthogonal technique;
    #: only effective with a POM-TLB substrate to prefetch from).
    tlb_prefetch: bool = False

    #: Cache replacement: "lru", "nru" or "plru".
    replacement: str = "lru"
    #: Partition profilers: shadow tags (False) or Section 3.4 estimates.
    estimate_positions: bool = False
    #: Profiler set-sampling: every 2**sample_shift-th set.
    sample_shift: int = 2
    epoch_accesses: int = DEFAULT_EPOCH_ACCESSES
    #: Fixed data-way split for Scheme.CSALT_STATIC.
    static_data_ways: Optional[int] = None

    #: Context-switch quantum in (paper) milliseconds and the scale factor
    #: applied to convert it to simulated cycles.
    switch_interval_ms: float = 10.0
    time_scale: float = 1.0 / 400.0

    #: Timing model knobs.
    base_cpi: float = 0.65
    nonmem_per_mem: int = 2
    mshr_entries: int = 10
    workload_mlp: float = 4.0

    #: Host memory reserved per VM (bounds the frame allocators; pure
    #: bookkeeping — nothing of this size is actually allocated).
    vm_bytes: int = 1 << 33

    #: Default snapshot cadence (accesses) when the engine is not given an
    #: explicit ``checkpoint_every``; ``None`` disables checkpointing.
    checkpoint_every: Optional[int] = None
    #: Default invariant-audit cadence (accesses); ``None`` disables the
    #: periodic audits (the post-restore audit always runs).
    check_invariants: Optional[int] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject configurations that would fail later or mid-run.

        Every error names the offending field so campaign logs pinpoint
        the bad grid axis without a traceback spelunk.
        """
        if self.cores < 1:
            raise ConfigError(f"cores: need at least one core, got {self.cores}")
        if self.contexts_per_core < 1:
            raise ConfigError(
                f"contexts_per_core: need at least one context per core, "
                f"got {self.contexts_per_core}"
            )
        if self.time_scale <= 0:
            raise ConfigError(
                f"time_scale: must be positive, got {self.time_scale}"
            )
        if self.switch_interval_ms <= 0:
            raise ConfigError(
                f"switch_interval_ms: must be positive, got "
                f"{self.switch_interval_ms}"
            )
        if self.page_table_levels not in (4, 5):
            raise ConfigError(
                f"page_table_levels: must be 4 or 5, got "
                f"{self.page_table_levels}"
            )
        if not 0 <= self.nonmem_per_mem:
            raise ConfigError("nonmem_per_mem: cannot be negative")
        if self.base_cpi <= 0:
            raise ConfigError(f"base_cpi: must be positive, got {self.base_cpi}")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ConfigError(
                f"checkpoint_every: interval must be positive, got "
                f"{self.checkpoint_every}"
            )
        if self.check_invariants is not None and self.check_invariants <= 0:
            raise ConfigError(
                f"check_invariants: interval must be positive, got "
                f"{self.check_invariants}"
            )
        if self.replacement == "plru":
            for field_name, cache in (("l2", self.l2), ("l3", self.l3)):
                if cache.ways & (cache.ways - 1):
                    raise ConfigError(
                        f"{field_name}.ways: tree-PLRU needs a power-of-two "
                        f"associativity, got {cache.ways}"
                    )
        if self.scheme.partition_mode is not PartitionMode.NONE:
            # Algorithm 1 searches N in [N_MIN, K - N_MIN]: both streams
            # must be able to hold their minimum simultaneously.
            for field_name, cache in (("l2", self.l2), ("l3", self.l3)):
                if cache.ways < 2 * N_MIN:
                    raise ConfigError(
                        f"{field_name}.ways: partitioning needs at least "
                        f"{2 * N_MIN} ways (N_MIN={N_MIN} per stream), got "
                        f"{cache.ways}"
                    )
            if self.static_data_ways is not None and self.static_data_ways < N_MIN:
                raise ConfigError(
                    f"static_data_ways: must be at least N_MIN={N_MIN}, got "
                    f"{self.static_data_ways}"
                )
        for field_name, entries, ways in (
            ("tlb.l1_4k_entries", self.tlb.l1_4k_entries, self.tlb.l1_ways),
            ("tlb.l1_2m_entries", self.tlb.l1_2m_entries, self.tlb.l1_ways),
            ("tlb.l2_entries", self.tlb.l2_entries, self.tlb.l2_ways),
        ):
            if entries % ways:
                raise ConfigError(
                    f"{field_name}: {entries} entries not divisible into "
                    f"{ways} ways"
                )

    @property
    def switch_interval_cycles(self) -> int:
        return max(1, int(self.switch_interval_ms * CYCLES_PER_MS * self.time_scale))

    @property
    def num_vms(self) -> int:
        return self.contexts_per_core

    def with_scheme(self, scheme: Scheme) -> "SystemConfig":
        return replace(self, scheme=scheme)


def small_config(**overrides) -> SystemConfig:
    """A quarter-scale configuration for fast (seconds-scale) runs.

    Every capacity (caches, TLBs, POM-TLB) is the paper's Table 2 value
    divided by four, latencies and associativities unchanged; workloads
    are scaled by the same factor (``make_mix(..., scale=0.25)``), so all
    the capacity ratios that drive the results are preserved while runs
    of a few hundred thousand accesses reach steady state.  The epoch and
    the context-switch quantum shrink in proportion to run length.
    """
    defaults = dict(
        # The L1D keeps its full 32 KB: it is not a CSALT subject (no TLB
        # entries live there) and shrinking it would only inflate data
        # stalls, diluting the translation effects under study.
        l1d=CacheConfig(32 * 1024, 8, 4),
        l2=CacheConfig(64 * 1024, 4, 12),
        l3=CacheConfig(2 * 1024 * 1024, 16, 42),
        tlb=TlbConfig(
            l1_4k_entries=16,
            l1_2m_entries=8,
            l1_ways=4,
            l1_latency=9,
            l2_entries=384,
            l2_ways=12,
            l2_latency=17,
        ),
        pom_tlb_bytes=4 * 1024 * 1024,
        tsb_entries=128 * 1024,
        epoch_accesses=4_000,
        time_scale=1.0 / 192.0,
        vm_bytes=1 << 32,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


#: The workload scale factor that pairs with :func:`small_config`.
SMALL_WORKLOAD_SCALE = 0.25
