"""Workload registry and the paper's VM pairings (Table 3, Figure 7 x-axis).

Each evaluation point co-schedules two VM contexts per core.  A single
program name means two instances of the same program (paper footnote 7);
the underscored names are the heterogeneous VM1/VM2 mixes of Table 3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.base import Workload
from repro.workloads.programs import (
    Canneal,
    ConnectedComponent,
    Graph500,
    Gups,
    PageRank,
    StreamCluster,
)

#: The six programs of Section 4.1.
PROGRAMS: Dict[str, type] = {
    "canneal": Canneal,
    "ccomp": ConnectedComponent,
    "graph500": Graph500,
    "gups": Gups,
    "pagerank": PageRank,
    "streamcluster": StreamCluster,
}

#: The ten evaluation points, in the order the figures plot them.
MIXES: Dict[str, Tuple[str, str]] = {
    "canneal": ("canneal", "canneal"),
    "can_ccomp": ("canneal", "ccomp"),
    "can_stream": ("canneal", "streamcluster"),
    "ccomp": ("ccomp", "ccomp"),
    "graph500": ("graph500", "graph500"),
    "graph500_gups": ("graph500", "gups"),
    "gups": ("gups", "gups"),
    "pagerank": ("pagerank", "pagerank"),
    "page_stream": ("pagerank", "streamcluster"),
    "streamcluster": ("streamcluster", "streamcluster"),
}

MIX_NAMES: List[str] = list(MIXES)


def make_program(name: str, scale: float = 1.0) -> Workload:
    """Instantiate one program by its Section 4.1 name.

    ``scale`` resizes footprints for a proportionally scaled machine
    (pair with :func:`repro.sim.config.small_config` at 0.25).
    """
    try:
        cls = PROGRAMS[name]
    except KeyError:
        raise ValueError(
            f"unknown program {name!r}; expected one of {sorted(PROGRAMS)}"
        ) from None
    return cls() if scale == 1.0 else cls.scaled(scale)


def make_mix(mix_name: str, contexts: int = 2, scale: float = 1.0) -> List[Workload]:
    """Build the VM workload list for one evaluation point.

    ``contexts`` beyond 2 replicates the pair (the Figure 14 sensitivity
    runs 1, 2 and 4 contexts per core); ``contexts=1`` keeps only VM1.
    """
    if contexts < 1:
        raise ValueError("need at least one context")
    try:
        names = MIXES[mix_name]
    except KeyError:
        raise ValueError(
            f"unknown mix {mix_name!r}; expected one of {MIX_NAMES}"
        ) from None
    return [
        make_program(names[index % 2], scale) for index in range(contexts)
    ]
