"""Trace recording and replay.

The paper drives its simulator from timed Pin traces collected on real
hardware (Section 4.2).  This module provides the equivalent
infrastructure for this simulator:

* :func:`record_trace` — capture any workload's per-thread access streams
  into a compact ``.npz`` file (addresses + write flags);
* :class:`TraceWorkload` — a :class:`~repro.workloads.base.Workload` that
  replays such a file, looping when the trace is shorter than the run;
* :func:`load_trace` / :func:`trace_info` — inspection helpers.

Replaying a trace is deterministic and independent of the generator's
random state, which makes cross-machine comparisons and regression runs
reproducible bit-for-bit.  Real Pin/DynamoRIO traces can be imported by
writing the same npz layout (`thread<N>_addresses`, `thread<N>_writes`).
"""

from __future__ import annotations

import errno
import itertools
import pathlib
from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro import faults
from repro.errors import DataError
from repro.workloads.base import AccessStream, Workload

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


class TraceFormatError(DataError, ValueError):
    """A trace file is structurally invalid (version, keys, lengths).

    A :class:`~repro.errors.DataError` (exit code 2); still a
    ``ValueError`` for pre-taxonomy callers.
    """


def record_trace(
    workload: Workload,
    path: PathLike,
    accesses_per_thread: int = 100_000,
    num_threads: int = 8,
    seed: int = 0,
) -> None:
    """Capture ``workload``'s streams to a compressed ``.npz`` trace."""
    if accesses_per_thread < 1:
        raise ValueError("need at least one access per thread")
    arrays: Dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "num_threads": np.array([num_threads]),
        "huge_va_limit": np.array([workload.huge_va_limit], dtype=np.uint64),
    }
    for thread in range(num_threads):
        stream = workload.thread_stream(thread, num_threads, seed)
        pairs = list(itertools.islice(stream, accesses_per_thread))
        arrays[f"thread{thread}_addresses"] = np.array(
            [address for address, _ in pairs], dtype=np.uint64
        )
        arrays[f"thread{thread}_writes"] = np.packbits(
            np.array([flag for _, flag in pairs], dtype=bool)
        )
        arrays[f"thread{thread}_length"] = np.array([len(pairs)])
    # Chaos hook (no-op unless a FaultPlan is armed): drop the back half
    # of thread 0's address stream without touching its recorded length,
    # producing exactly the inconsistency ``load_trace`` must reject.
    injector = faults.ACTIVE
    if injector is not None and injector.fire(
        "trace.record.truncate_thread", path=str(path)
    ):
        truncated = arrays["thread0_addresses"]
        arrays["thread0_addresses"] = truncated[: max(1, len(truncated) // 2)]
    np.savez_compressed(str(path), **arrays)


@dataclass
class TraceInfo:
    """Summary of a stored trace."""

    num_threads: int
    accesses_per_thread: int
    huge_va_limit: int
    distinct_pages: int


def load_trace(path: PathLike) -> Dict[str, np.ndarray]:
    """Load and validate a trace file's raw arrays.

    Raises :class:`TraceFormatError` on a wrong version, missing arrays,
    or a per-thread length field that disagrees with the stored data —
    the failure modes of a torn or hand-mangled trace file.
    """
    injector = faults.ACTIVE
    if injector is not None and injector.fire(
        "trace.load.io_error", path=str(path)
    ):
        raise OSError(errno.EIO, f"injected I/O error reading {path}")
    data = dict(np.load(str(path)))
    version = int(data.get("version", [0])[0])
    if version != _FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported trace version {version} "
            f"(expected {_FORMAT_VERSION})"
        )
    for key in ("num_threads", "huge_va_limit"):
        if key not in data:
            raise TraceFormatError(f"{path}: missing required array {key!r}")
    num_threads = int(data["num_threads"][0])
    for thread in range(num_threads):
        missing = [
            key
            for key in (
                f"thread{thread}_addresses",
                f"thread{thread}_writes",
                f"thread{thread}_length",
            )
            if key not in data
        ]
        if missing:
            raise TraceFormatError(
                f"{path}: missing arrays for thread {thread}: "
                f"{', '.join(missing)}"
            )
        length = int(data[f"thread{thread}_length"][0])
        stored = len(data[f"thread{thread}_addresses"])
        if stored != length:
            raise TraceFormatError(
                f"{path}: thread {thread} stores {stored} addresses but "
                f"declares length {length} (truncated trace?)"
            )
    return data


def trace_info(path: PathLike) -> TraceInfo:
    """Inspect a trace without building a workload."""
    data = load_trace(path)
    num_threads = int(data["num_threads"][0])
    lengths = [int(data[f"thread{t}_length"][0]) for t in range(num_threads)]
    pages = set()
    for thread in range(num_threads):
        pages.update(
            np.unique(data[f"thread{thread}_addresses"] >> 12).tolist()
        )
    return TraceInfo(
        num_threads=num_threads,
        accesses_per_thread=min(lengths),
        huge_va_limit=int(data["huge_va_limit"][0]),
        distinct_pages=len(pages),
    )


class TraceWorkload(Workload):
    """Replay a recorded trace as a workload (looping past the end)."""

    name = "trace"

    def __init__(self, path: PathLike, name: str | None = None):
        data = load_trace(path)
        self.path = pathlib.Path(path)
        self.name = name or self.path.stem
        self.num_threads = int(data["num_threads"][0])
        self.huge_va_limit = int(data["huge_va_limit"][0])
        self._addresses = {}
        self._writes = {}
        for thread in range(self.num_threads):
            length = int(data[f"thread{thread}_length"][0])
            self._addresses[thread] = data[f"thread{thread}_addresses"]
            self._writes[thread] = np.unpackbits(
                data[f"thread{thread}_writes"]
            )[:length].astype(bool)

    def thread_stream(
        self, thread_id: int, num_threads: int = 8, seed: int = 0
    ) -> AccessStream:
        """Replay thread ``thread_id``'s recording (modulo thread count).

        ``seed`` rotates the starting offset so co-scheduled replicas of
        one trace are not phase-locked.
        """
        source = thread_id % self.num_threads
        addresses = self._addresses[source]
        writes = self._writes[source]
        length = len(addresses)
        offset = (seed * 9973) % length
        while True:
            for index in range(offset, length):
                yield int(addresses[index]), bool(writes[index])
            offset = 0

    def __repr__(self) -> str:
        return f"TraceWorkload({self.path.name}, threads={self.num_threads})"
