"""The six programs of the paper's Section 4.1, as synthetic generators.

Parameter choices place each program in the qualitative regime the paper
measures (Figure 1 MPKI ratios, Table 1 walk costs, Figure 3 occupancy):

* **gups** — uniform random read-modify-writes over a huge-page table
  sized so one instance fits the 1536-entry L2 TLB but two do not;
* **graph500** — BFS: streaming edge scans mixed with Zipf-skewed random
  vertex reads over a huge-page vertex array;
* **pagerank** — edge stream plus skewed random rank *updates*;
* **canneal** — Zipf-distributed random swaps over a 4 KB-page netlist;
* **streamcluster** — sequential point streaming with a small hot
  centroid set (low TLB pressure: hundreds of accesses per page);
* **connectedcomponent (ccomp)** — pointer-chasing over an *active
  window* of pages that is regenerated periodically, alternating a
  process phase (reuse within the window) and a generate phase (scatter
  over the whole region) — the phase behaviour Figure 9 visualizes.

All sizes are scaled with the rest of the simulation (DESIGN.md Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (
    BATCH,
    REGION_4K_BASE,
    AccessStream,
    BatchedStream,
    Workload,
    zipf_page_sampler,
)

#: Shared per-block write-flag constants (every generator yields blocks of
#: plain Python ``bool``/``int`` pairs, bit-identical to the old per-item
#: generators).
_READS = [False] * BATCH
_GUPS_WRITES = [False, True] * BATCH

PAGE = 4096
HUGE = 2 * 1024 * 1024


def round_to_huge(num_bytes: float) -> int:
    """Round a byte count up to a whole number of 2 MB huge pages."""
    pages = max(1, int(num_bytes + HUGE - 1) // HUGE)
    return pages * HUGE


def round_to_pages(num_bytes: float) -> int:
    """Round a byte count up to a whole number of 4 KB pages."""
    pages = max(1, int(num_bytes + PAGE - 1) // PAGE)
    return pages * PAGE


class Gups(Workload):
    """Giant random updates over a huge-page table (HPCC RandomAccess)."""

    name = "gups"
    mlp = 8.0

    def __init__(self, table_bytes: int = 3328 * 1024 * 1024):
        self.table_bytes = table_bytes
        self.huge_va_limit = table_bytes

    def thread_stream(
        self, thread_id: int, num_threads: int = 8, seed: int = 0
    ) -> AccessStream:
        return BatchedStream(self._blocks(thread_id, seed))

    def _blocks(self, thread_id: int, seed: int):
        rng = np.random.default_rng((seed, thread_id, 0xF005))
        slots = self.table_bytes // 8
        while True:
            picks = rng.integers(0, slots, size=BATCH) * 8
            # Each slot is read then modify-written: repeat every address
            # twice and pair with the alternating read/write flags.
            yield list(zip(np.repeat(picks, 2).tolist(), _GUPS_WRITES))

    @classmethod
    def scaled(cls, factor: float) -> "Gups":
        """Resize for a machine whose capacities are scaled by ``factor``."""
        return cls(table_bytes=round_to_huge(3328 * 1024 * 1024 * factor))

    def __repr__(self) -> str:
        return f"Gups(table_bytes={self.table_bytes})"


class Graph500(Workload):
    """BFS over a scale-free graph: edge streaming + random vertex reads."""

    name = "graph500"
    mlp = 6.0

    def __init__(
        self,
        vertex_bytes: int = 1792 * 1024 * 1024,
        edge_bytes: int = 256 * 1024 * 1024,
        vertex_fraction: float = 0.55,
        metadata_fraction: float = 0.2,
        zipf_alpha: float = 0.55,
    ):
        self.vertex_bytes = vertex_bytes
        self.edge_bytes = edge_bytes
        self.vertex_fraction = vertex_fraction
        # The visited/parent metadata array is byte-per-vertex and (unlike
        # the THP-backed vertex array) lives on 4 KB pages, so BFS puts
        # real pressure on the 4 KB TLB path too.
        self.metadata_fraction = metadata_fraction
        self.zipf_alpha = zipf_alpha
        self.huge_va_limit = vertex_bytes

    def thread_stream(
        self, thread_id: int, num_threads: int = 8, seed: int = 0
    ) -> AccessStream:
        return BatchedStream(self._blocks(thread_id, num_threads, seed))

    def _blocks(self, thread_id: int, num_threads: int, seed: int):
        rng = np.random.default_rng((seed, thread_id, 0x6500))
        vertices = self.vertex_bytes // 64
        sample_vertex = zipf_page_sampler(
            rng, vertices, self.zipf_alpha, perm_seed=seed
        )
        # RMAT graphs put the high-degree vertices at low ids, so the
        # visited array's hot bytes cluster into few 4 KB pages.
        sample_meta = zipf_page_sampler(
            rng, vertices, 1.0, perm_seed=seed, permute=False
        )
        edge_span = self.edge_bytes // num_threads
        edge_base = REGION_4K_BASE + thread_id * edge_span
        metadata_base = REGION_4K_BASE + self.edge_bytes
        edge_cursor = 0
        meta_cut = self.vertex_fraction + self.metadata_fraction
        while True:
            rolls = rng.random(BATCH)
            vertex_picks = sample_vertex(BATCH)
            meta_picks = sample_meta(BATCH)
            is_vertex = rolls < self.vertex_fraction
            # Byte-per-vertex visited/parent array on 4 KB pages.
            is_meta = ~is_vertex & (rolls < meta_cut)
            is_edge = ~is_vertex & ~is_meta
            addresses = np.empty(BATCH, dtype=np.int64)
            addresses[is_vertex] = vertex_picks[is_vertex] * 64
            addresses[is_meta] = metadata_base + meta_picks[is_meta]
            edge_count = int(is_edge.sum())
            if edge_count:
                # The edge cursor advances only on edge accesses: its
                # per-item values are the running prefix offsets.
                steps = (
                    edge_cursor + 16 * np.arange(edge_count, dtype=np.int64)
                ) % edge_span
                addresses[is_edge] = edge_base + steps
                edge_cursor = (edge_cursor + 16 * edge_count) % edge_span
            yield list(zip(addresses.tolist(), is_meta.tolist()))


    @classmethod
    def scaled(cls, factor: float) -> "Graph500":
        """Resize for a machine whose capacities are scaled by ``factor``."""
        return cls(
            vertex_bytes=round_to_huge(1792 * 1024 * 1024 * factor),
            edge_bytes=round_to_pages(32 * 1024 * 1024 * factor),
        )


class PageRank(Workload):
    """Rank propagation: sequential edges, skewed random rank updates."""

    name = "pagerank"
    mlp = 6.0

    def __init__(
        self,
        vertex_bytes: int = 1600 * 1024 * 1024,
        edge_bytes: int = 384 * 1024 * 1024,
        vertex_fraction: float = 0.45,
        metadata_fraction: float = 0.18,
        zipf_alpha: float = 0.7,
    ):
        self.vertex_bytes = vertex_bytes
        self.edge_bytes = edge_bytes
        self.vertex_fraction = vertex_fraction
        # Out-degree array: 4-bytes-per-vertex on 4 KB pages (the rank
        # array itself is THP-backed).
        self.metadata_fraction = metadata_fraction
        self.zipf_alpha = zipf_alpha
        self.huge_va_limit = vertex_bytes

    def thread_stream(
        self, thread_id: int, num_threads: int = 8, seed: int = 0
    ) -> AccessStream:
        return BatchedStream(self._blocks(thread_id, num_threads, seed))

    def _blocks(self, thread_id: int, num_threads: int, seed: int):
        rng = np.random.default_rng((seed, thread_id, 0x9A6E))
        vertices = self.vertex_bytes // 64
        sample_vertex = zipf_page_sampler(
            rng, vertices, self.zipf_alpha, perm_seed=seed
        )
        sample_meta = zipf_page_sampler(
            rng, self.vertex_bytes // 64, 1.0, perm_seed=seed, permute=False
        )
        edge_span = self.edge_bytes // num_threads
        edge_base = REGION_4K_BASE + thread_id * edge_span
        metadata_base = REGION_4K_BASE + self.edge_bytes
        edge_cursor = 0
        meta_cut = self.vertex_fraction + self.metadata_fraction
        while True:
            rolls = rng.random(BATCH)
            writes = rng.random(BATCH) < 0.5
            vertex_picks = sample_vertex(BATCH)
            meta_picks = sample_meta(BATCH)
            is_vertex = rolls < self.vertex_fraction
            is_meta = ~is_vertex & (rolls < meta_cut)
            is_edge = ~is_vertex & ~is_meta
            addresses = np.empty(BATCH, dtype=np.int64)
            addresses[is_vertex] = vertex_picks[is_vertex] * 64
            addresses[is_meta] = metadata_base + meta_picks[is_meta] * 4
            edge_count = int(is_edge.sum())
            if edge_count:
                steps = (
                    edge_cursor + 16 * np.arange(edge_count, dtype=np.int64)
                ) % edge_span
                addresses[is_edge] = edge_base + steps
                edge_cursor = (edge_cursor + 16 * edge_count) % edge_span
            # Only vertex updates write; metadata and edge scans read.
            yield list(zip(addresses.tolist(), (is_vertex & writes).tolist()))


    @classmethod
    def scaled(cls, factor: float) -> "PageRank":
        """Resize for a machine whose capacities are scaled by ``factor``."""
        return cls(
            vertex_bytes=round_to_huge(1600 * 1024 * 1024 * factor),
            edge_bytes=round_to_pages(48 * 1024 * 1024 * factor),
        )


class Canneal(Workload):
    """Simulated-annealing netlist swaps: Zipf random over 4 KB pages."""

    name = "canneal"
    mlp = 3.0

    def __init__(
        self,
        netlist_bytes: int = 8 * 1024 * 1024,
        cold_bytes: int = 192 * 1024 * 1024,
        cold_fraction: float = 0.05,
        zipf_alpha: float = 1.0,
        write_fraction: float = 0.3,
    ):
        self.netlist_bytes = netlist_bytes
        self.cold_bytes = cold_bytes
        self.cold_fraction = cold_fraction
        self.zipf_alpha = zipf_alpha
        self.write_fraction = write_fraction

    def thread_stream(
        self, thread_id: int, num_threads: int = 8, seed: int = 0
    ) -> AccessStream:
        return BatchedStream(self._blocks(thread_id, seed))

    def _blocks(self, thread_id: int, seed: int):
        rng = np.random.default_rng((seed, thread_id, 0xCA22))
        hot_pages = self.netlist_bytes // PAGE
        sample_hot = zipf_page_sampler(
            rng, hot_pages, self.zipf_alpha, perm_seed=seed
        )
        cold_pages = self.cold_bytes // PAGE
        while True:
            hot_picks = sample_hot(BATCH)
            cold_picks = rng.integers(0, cold_pages, size=BATCH)
            offsets = rng.integers(0, PAGE // 8, size=BATCH) * 8
            colds = rng.random(BATCH) < self.cold_fraction
            writes = rng.random(BATCH) < self.write_fraction
            # Cold picks index the region above the hot netlist pages.
            pages = np.where(colds, hot_pages + cold_picks, hot_picks)
            addresses = REGION_4K_BASE + pages * PAGE + offsets
            yield list(zip(addresses.tolist(), writes.tolist()))


    @classmethod
    def scaled(cls, factor: float) -> "Canneal":
        """Resize for a machine whose capacities are scaled by ``factor``."""
        return cls(
            netlist_bytes=round_to_pages(8 * 1024 * 1024 * factor),
            cold_bytes=round_to_pages(64 * 1024 * 1024 * factor),
        )


class StreamCluster(Workload):
    """Online clustering: stream the point set, revisit hot centroids."""

    name = "streamcluster"
    mlp = 8.0

    def __init__(
        self,
        points_bytes: int = 56 * 1024 * 1024,
        centroid_bytes: int = 64 * 1024,
        centroid_fraction: float = 0.25,
        stride: int = 64,
    ):
        self.points_bytes = points_bytes
        self.centroid_bytes = centroid_bytes
        self.centroid_fraction = centroid_fraction
        self.stride = stride

    def thread_stream(
        self, thread_id: int, num_threads: int = 8, seed: int = 0
    ) -> AccessStream:
        return BatchedStream(self._blocks(thread_id, num_threads, seed))

    def _blocks(self, thread_id: int, num_threads: int, seed: int):
        rng = np.random.default_rng((seed, thread_id, 0x57C1))
        span = self.points_bytes // num_threads
        base = REGION_4K_BASE + thread_id * span
        centroid_base = REGION_4K_BASE + self.points_bytes + thread_id * (
            self.centroid_bytes
        )
        cursor = 0
        stride = self.stride
        while True:
            centroid_picks = rng.integers(
                0, self.centroid_bytes // 8, size=BATCH
            ) * 8
            use_centroid = rng.random(BATCH) < self.centroid_fraction
            addresses = np.empty(BATCH, dtype=np.int64)
            addresses[use_centroid] = (
                centroid_base + centroid_picks[use_centroid]
            )
            cold = ~use_centroid
            cold_count = int(cold.sum())
            if cold_count:
                # The scan cursor advances only on point-stream accesses,
                # so its per-item values are the running prefix offsets.
                steps = (
                    cursor + stride * np.arange(cold_count, dtype=np.int64)
                ) % span
                addresses[cold] = base + steps
                cursor = (cursor + stride * cold_count) % span
            yield list(zip(addresses.tolist(), _READS))


    @classmethod
    def scaled(cls, factor: float) -> "StreamCluster":
        """Resize for a machine whose capacities are scaled by ``factor``."""
        return cls(
            points_bytes=round_to_pages(56 * 1024 * 1024 * factor),
            centroid_bytes=round_to_pages(64 * 1024 * factor),
        )


class ConnectedComponent(Workload):
    """GraphChi-style union-find: windowed pointer-chase with phases.

    Alternates a *process* phase — dependent random accesses inside the
    current active-vertex window — with a shorter *generate* phase that
    scatters over the whole region to build the next window (the paper's
    Section 5.1 deep-dive describes exactly this alternation).  The window
    hops to a new random position each cycle, so little state survives a
    context switch.
    """

    name = "ccomp"
    # Union-find parent chasing is a dependent chain: misses barely overlap.
    mlp = 1.5

    def __init__(
        self,
        region_bytes: int = 768 * 1024 * 1024,
        window_pages: int = 1400,
        process_accesses: int = 12_000,
        generate_accesses: int = 3_000,
        stray_fraction: float = 0.05,
        stray_zipf_alpha: float = 0.95,
        write_fraction: float = 0.25,
        root_fraction: float = 0.4,
        root_lines: int = 96,
        generate_mode: str = "random",
    ):
        if generate_mode not in ("random", "sequential"):
            raise ValueError(f"unknown generate_mode {generate_mode!r}")
        self.generate_mode = generate_mode
        self.region_bytes = region_bytes
        self.window_pages = window_pages
        self.process_accesses = process_accesses
        self.generate_accesses = generate_accesses
        self.stray_fraction = stray_fraction
        # Stray lookups target *popular* vertices (graph degree skew), so
        # a single context keeps its hot strays TLB-resident while two
        # co-scheduled contexts overflow the TLB - the Figure 1 cliff.
        self.stray_zipf_alpha = stray_zipf_alpha
        self.write_fraction = write_fraction
        # Union-find chains terminate at a few hot roots: a large share of
        # *data* references hit a small set of root cache lines (cache
        # friendly) while the visited *pages* stay scattered (TLB hostile)
        # - the inversion behind the paper's "L2 TLB miss rate is ~10x the
        # L1 data cache miss rate" observation for this workload.
        self.root_fraction = root_fraction
        self.root_lines = root_lines

    def thread_stream(
        self, thread_id: int, num_threads: int = 8, seed: int = 0
    ) -> AccessStream:
        return BatchedStream(self._blocks(thread_id, seed))

    def _blocks(self, thread_id: int, seed: int):
        rng = np.random.default_rng((seed, thread_id, 0xCC02))
        total_pages = self.region_bytes // PAGE
        sample_stray = zipf_page_sampler(
            rng, total_pages, self.stray_zipf_alpha, perm_seed=seed
        )
        # All threads process the same active list: the window schedule is
        # keyed by (seed, phase) only, so per-VM TLB/cache footprint is one
        # window, not one per thread.
        schedule = np.random.default_rng((seed, 0xCC02))
        window_start = int(schedule.integers(0, total_pages - self.window_pages))
        while True:
            # Process phase: chase parents within the active window.  Root
            # references revisit a few hot lines spread over the window.
            root_slots = schedule.integers(
                0, self.window_pages * (PAGE // 64), size=self.root_lines
            )
            remaining = self.process_accesses
            while remaining > 0:
                count = min(BATCH, remaining)
                pages = rng.integers(0, self.window_pages, size=count)
                strays = rng.random(count) < self.stray_fraction
                roots = rng.random(count) < self.root_fraction
                root_picks = root_slots[
                    rng.integers(0, self.root_lines, size=count)
                ]
                stray_pages = sample_stray(count)
                offsets = rng.integers(0, PAGE // 8, size=count) * 8
                writes = rng.random(count) < self.write_fraction
                # Stray lookups take precedence over root hits, matching
                # the branch order of the reference per-item generator.
                chosen = np.where(
                    strays,
                    stray_pages * PAGE + offsets,
                    np.where(
                        roots,
                        window_start * PAGE + root_picks * 64,
                        (window_start + pages) * PAGE + offsets,
                    ),
                )
                yield list(
                    zip((REGION_4K_BASE + chosen).tolist(), writes.tolist())
                )
                remaining -= count
            # Generate phase: build the next active list.  "random" mode
            # scatters over the whole region (maximum TLB pressure — the
            # translation-hungry phase Figure 9 shows); "sequential" mode
            # streams a region slice (cache flood, little TLB pressure).
            remaining = self.generate_accesses
            if self.generate_mode == "sequential":
                scan_base = int(
                    schedule.integers(0, total_pages - self.window_pages)
                ) * PAGE
                cursor = thread_id * 8192
                window_span = self.window_pages * PAGE
                while remaining > 0:
                    count = min(BATCH, remaining)
                    steps = (
                        cursor + 64 * np.arange(count, dtype=np.int64)
                    ) % window_span
                    addresses = REGION_4K_BASE + scan_base + steps
                    yield list(zip(addresses.tolist(), [True] * count))
                    cursor += 64 * count
                    remaining -= count
            else:
                while remaining > 0:
                    count = min(BATCH, remaining)
                    pages = rng.integers(0, total_pages, size=count)
                    offsets = rng.integers(0, PAGE // 8, size=count) * 8
                    addresses = REGION_4K_BASE + pages * PAGE + offsets
                    yield list(zip(addresses.tolist(), [True] * count))
                    remaining -= count
            window_start = int(
                schedule.integers(0, total_pages - self.window_pages)
            )

    @classmethod
    def scaled(cls, factor: float) -> "ConnectedComponent":
        """Resize for a machine whose capacities are scaled by ``factor``."""
        return cls(
            region_bytes=round_to_pages(256 * 1024 * 1024 * factor),
            window_pages=max(64, int(1000 * factor)),
            process_accesses=max(1_000, int(12_000 * factor)),
            generate_accesses=max(250, int(3_600 * factor)),
            stray_fraction=0.06,
            stray_zipf_alpha=0.0,
            root_lines=max(16, int(96 * factor)),
            generate_mode="random",
        )
