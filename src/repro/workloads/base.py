"""Workload abstraction: multi-threaded guest-virtual address streams.

The paper drives its simulator with Pin-collected timed traces of
memory-intensive programs (Section 4.1).  We have no proprietary traces,
so each workload here is a *generator* that emits a guest-virtual access
stream with the same qualitative structure — footprint, page-size mix,
reuse locality, read/write balance and phase behaviour (see DESIGN.md
Section 2 for the substitution argument).

Address-space layout convention shared by all workloads:

* ``[0, huge_va_limit)`` — data the guest OS backs with 2 MB huge pages
  (Transparent Huge Pages picks large, dense allocations);
* ``[REGION_4K_BASE, ...)`` — data backed with 4 KB base pages.

Streams are infinite iterators of ``(virtual_address, is_write)``; the
engine decides how many accesses to consume.  Random numbers are drawn in
numpy batches for speed and full determinism per (workload, thread, seed).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Tuple

import numpy as np

#: Base virtual address of the 4 KB-page region (above any huge region).
REGION_4K_BASE = 1 << 33

#: How many random numbers each generator draws per numpy call.
BATCH = 2048

AccessStream = Iterator[Tuple[int, bool]]


class BatchedStream:
    """An ``(address, is_write)`` iterator backed by block generation.

    Wraps a generator of *blocks* (lists of ``(address, is_write)``
    pairs, one per numpy draw) and exposes the plain iterator protocol
    plus the batched API the engine's hot loop uses:

    * :meth:`take` — the next ``n`` pairs as one list (a single slice in
      the common case, instead of ``n`` generator resumes);
    * :meth:`skip` — advance by ``n`` pairs block-at-a-time, which makes
      a checkpoint restore's stream fast-forward O(consumed / BATCH)
      list hops instead of O(consumed) ``next()`` calls.

    The wrapper never reorders or drops items: consuming it with plain
    ``next()`` yields exactly the flattened block sequence, so streams
    are bit-identical to the pre-batching per-item generators.
    """

    __slots__ = ("_blocks", "_buffer", "_pos")

    def __init__(self, blocks: Iterator[list]):
        self._blocks = blocks
        self._buffer: list = []
        self._pos = 0

    def __iter__(self) -> "BatchedStream":
        return self

    def __next__(self) -> Tuple[int, bool]:
        pos = self._pos
        buffer = self._buffer
        if pos >= len(buffer):
            self._buffer = buffer = next(self._blocks)
            pos = 0
        self._pos = pos + 1
        return buffer[pos]

    def take(self, count: int) -> list:
        """Return the next ``count`` pairs as a list."""
        pos = self._pos
        end = pos + count
        buffer = self._buffer
        if end <= len(buffer):
            self._pos = end
            return buffer[pos:end]
        out = buffer[pos:]
        blocks = self._blocks
        need = count - len(out)
        while need > 0:
            buffer = next(blocks)
            if need < len(buffer):
                out.extend(buffer[:need])
                self._buffer = buffer
                self._pos = need
                return out
            out.extend(buffer)
            need -= len(buffer)
        self._buffer = buffer
        self._pos = len(buffer)
        return out

    def skip(self, count: int) -> None:
        """Advance past the next ``count`` pairs without materializing
        them one at a time (blocks are still generated, so the backing
        RNG state advances exactly as if they had been consumed)."""
        buffer = self._buffer
        pos = self._pos
        available = len(buffer) - pos
        remaining = count
        while remaining > available:
            remaining -= available
            buffer = next(self._blocks)
            pos = 0
            available = len(buffer)
        self._buffer = buffer
        self._pos = pos + remaining


class Workload(ABC):
    """One guest program: a named source of per-thread access streams."""

    #: Figure-label name, e.g. ``"gups"``.
    name: str = "workload"
    #: VAs below this are 2 MB-mapped (0 = everything uses 4 KB pages).
    huge_va_limit: int = 0
    #: Inherent memory-level parallelism: how many of this program's data
    #: misses can overlap.  Independent random updates (gups) overlap
    #: almost fully; dependent pointer chases (ccomp) barely at all.
    mlp: float = 4.0

    @abstractmethod
    def thread_stream(
        self, thread_id: int, num_threads: int = 8, seed: int = 0
    ) -> AccessStream:
        """Infinite access stream for one thread of this program."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


from functools import lru_cache


@lru_cache(maxsize=16)
def _zipf_tables(num_items: int, alpha: float, perm_seed: int):
    """Cumulative Zipf CDF and scatter permutation, cached.

    These arrays reach millions of entries for the graph workloads and
    are identical for every thread (and every simulation run) with the
    same parameters, so they are built once per process.
    """
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cumulative = np.cumsum(weights)
    cumulative /= cumulative[-1]
    permutation = np.random.default_rng((perm_seed, num_items)).permutation(
        num_items
    )
    return cumulative, permutation


def zipf_page_sampler(
    rng: np.random.Generator,
    num_items: int,
    alpha: float,
    perm_seed: int = 0,
    permute: bool = True,
) -> "Callable[[int], np.ndarray]":
    """Return a batch sampler of Zipf(alpha)-distributed indices.

    Popularity rank is shuffled so hot items are scattered across the
    region (a graph's high-degree vertices are not contiguous in memory).
    The shuffle is keyed by ``perm_seed`` alone — *not* by ``rng`` — so
    all threads of one program see the same hot set, as threads of a real
    shared-memory program do.

    With ``permute=False`` the indices *are* the popularity ranks (rank 0
    hottest): use this when hot items cluster at low indices, e.g. the
    low vertex ids of an RMAT graph, so page-level aggregation preserves
    the skew.
    """
    cumulative, permutation = _zipf_tables(num_items, alpha, perm_seed)

    if permute:
        def sample(count: int) -> np.ndarray:
            picks = np.searchsorted(cumulative, rng.random(count))
            return permutation[picks]
    else:
        def sample(count: int) -> np.ndarray:
            return np.searchsorted(cumulative, rng.random(count))

    return sample


def interleave_streams(
    rng: np.random.Generator,
    streams: "list[tuple[float, AccessStream]]",
) -> AccessStream:
    """Mix several streams with the given probabilities (must sum to 1)."""
    probabilities = np.array([p for p, _ in streams], dtype=np.float64)
    if not np.isclose(probabilities.sum(), 1.0):
        raise ValueError(f"stream weights must sum to 1, got {probabilities.sum()}")
    iterators = [iter(s) for _, s in streams]
    num_streams = len(iterators)

    def blocks() -> Iterator[list]:
        while True:
            choices = rng.choice(num_streams, size=BATCH, p=probabilities)
            yield [next(iterators[choice]) for choice in choices]

    return BatchedStream(blocks())
