"""repro.workloads subpackage."""
