"""x86-64 four-level radix page tables, built lazily in simulated memory.

Two instantiations exist:

* a **guest page table** per (VM, process), mapping guest-virtual to
  guest-physical addresses, whose nodes live in guest-physical frames;
* a **host page table** per VM (the extended page table), mapping
  guest-physical to host-physical addresses, whose nodes live in host
  physical frames.

Nodes are real simulated objects with physical addresses, so a page walk
emits the exact memory references the hardware walker would, and those
references contend for data-cache capacity — the effect the paper's
Figure 3 measures.

Both tables support 4 KB leaf pages and 2 MB huge pages (leaf at the PDE
level), reflecting the paper's host and guest running with Transparent
Huge Pages enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.mem.address import (
    MAX_RADIX_LEVELS,
    PAGE_2M_BITS,
    PAGE_4K,
    PAGE_4K_BITS,
    RADIX_LEVELS,
    radix_index,
)
from repro.vm.physical_memory import FrameAllocator


@dataclass
class PageTableNode:
    """One 4 KB radix node with a physical base address."""

    level: int
    base_address: int
    children: Dict[int, "PageTableNode"]
    leaves: Dict[int, int]

    def entry_address(self, index: int) -> int:
        """Physical address of the 8-byte entry at ``index``."""
        return self.base_address + index * 8


@dataclass
class Translation:
    """Result of a table lookup: frame plus page geometry."""

    frame_base: int
    page_bits: int

    def physical_address(self, virtual_address: int) -> int:
        offset = virtual_address & ((1 << self.page_bits) - 1)
        return (self.frame_base << PAGE_4K_BITS) + offset


class PageTable:
    """A lazily-populated radix-4 page table.

    ``frame_allocator`` provides the physical frames backing nodes and (by
    default) the data pages themselves.  ``map_page`` installs a mapping on
    demand; ``walk_addresses`` returns, without side effects, the physical
    addresses of the entries a hardware walker would read.
    """

    def __init__(
        self,
        frame_allocator: FrameAllocator,
        frame_of_page: Optional[Callable[[int, int], int]] = None,
        levels: int = RADIX_LEVELS,
    ):
        if not 2 <= levels <= MAX_RADIX_LEVELS:
            raise ValueError(
                f"page tables support 2..{MAX_RADIX_LEVELS} levels, got {levels}"
            )
        self.levels = levels
        self._allocator = frame_allocator
        self._frame_of_page = frame_of_page or self._default_frame_of_page
        root_frame = frame_allocator.alloc(contiguous=1)
        self.root = PageTableNode(
            level=levels,
            base_address=root_frame << PAGE_4K_BITS,
            children={},
            leaves={},
        )
        self.pages_mapped = 0
        self.nodes_allocated = 1

    def _default_frame_of_page(self, virtual_address: int, page_bits: int) -> int:
        frames_needed = 1 << (page_bits - PAGE_4K_BITS)
        return self._allocator.alloc(contiguous=frames_needed)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def map_page(self, virtual_address: int, page_bits: int = PAGE_4K_BITS) -> Translation:
        """Ensure a mapping exists for the page containing ``virtual_address``."""
        if page_bits not in (PAGE_4K_BITS, PAGE_2M_BITS):
            raise ValueError(f"unsupported page size: 2**{page_bits}")
        leaf_level = 1 if page_bits == PAGE_4K_BITS else 2
        node = self.root
        for level in range(self.levels, leaf_level, -1):
            index = radix_index(virtual_address, level)
            child = node.children.get(index)
            if child is None:
                if index in node.leaves:
                    raise ValueError(
                        "page-size conflict: a huge page already maps this range"
                    )
                frame = self._allocator.alloc(contiguous=1)
                child = PageTableNode(
                    level=level - 1,
                    base_address=frame << PAGE_4K_BITS,
                    children={},
                    leaves={},
                )
                node.children[index] = child
                self.nodes_allocated += 1
            node = child
        index = radix_index(virtual_address, leaf_level)
        frame = node.leaves.get(index)
        if frame is None:
            if index in node.children:
                raise ValueError(
                    "page-size conflict: 4K mappings already occupy this range"
                )
            frame = self._frame_of_page(virtual_address, page_bits)
            node.leaves[index] = frame
            self.pages_mapped += 1
        return Translation(frame_base=frame, page_bits=page_bits)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, virtual_address: int) -> Optional[Translation]:
        """Translate without side effects; None if unmapped.

        Hot path (demand-map checks and walk warm-up): the 9-bit
        ``radix_index`` extraction is inlined — shift amount is
        ``PAGE_4K_BITS + (level - 1) * 9 = 3 + 9 * level``.
        """
        node = self.root
        for level in range(self.levels, 0, -1):
            index = (virtual_address >> (3 + 9 * level)) & 0x1FF
            frame = node.leaves.get(index)
            if frame is not None:
                page_bits = PAGE_4K_BITS + (level - 1) * 9
                return Translation(frame_base=frame, page_bits=page_bits)
            child = node.children.get(index)
            if child is None:
                return None
            node = child
        return None

    def walk_addresses(
        self, virtual_address: int, start_level: Optional[int] = None
    ) -> Tuple[List[int], Optional[Translation]]:
        """Physical addresses of the entries read walking from ``start_level``.

        ``start_level`` below the root models an MMU-cache hit that skips
        the upper levels (default: the full walk from the root).  Returns
        (entry addresses in walk order, translation or None if the address
        is unmapped).
        """
        if start_level is None:
            start_level = self.levels
        addresses: List[int] = []
        node = self.root
        # Descend silently to the node at start_level (radix_index inlined,
        # as in ``lookup``: shift = 3 + 9 * level).
        for level in range(self.levels, start_level, -1):
            index = (virtual_address >> (3 + 9 * level)) & 0x1FF
            if index in node.leaves:
                # Huge-page leaf above the requested start level.
                frame = node.leaves[index]
                page_bits = PAGE_4K_BITS + (level - 1) * 9
                return addresses, Translation(frame, page_bits)
            child = node.children.get(index)
            if child is None:
                return addresses, None
            node = child
        for level in range(start_level, 0, -1):
            index = (virtual_address >> (3 + 9 * level)) & 0x1FF
            addresses.append(node.base_address + index * 8)
            frame = node.leaves.get(index)
            if frame is not None:
                page_bits = PAGE_4K_BITS + (level - 1) * 9
                return addresses, Translation(frame, page_bits)
            child = node.children.get(index)
            if child is None:
                return addresses, None
            node = child
        return addresses, None

    def remap_page(self, virtual_address: int) -> Translation:
        """Move an existing mapping to a fresh physical frame.

        Models the OS migrating/compacting a page (the event that forces a
        TLB shootdown).  The page size is preserved.  Raises ``KeyError``
        for unmapped addresses.
        """
        current = self.lookup(virtual_address)
        if current is None:
            raise KeyError(f"remap of unmapped address {virtual_address:#x}")
        leaf_level = 1 if current.page_bits == PAGE_4K_BITS else 2
        node = self.node_at_level(virtual_address, leaf_level)
        index = radix_index(virtual_address, leaf_level)
        new_frame = self._frame_of_page(virtual_address, current.page_bits)
        node.leaves[index] = new_frame
        return Translation(frame_base=new_frame, page_bits=current.page_bits)

    def node_at_level(
        self, virtual_address: int, level: int
    ) -> Optional[PageTableNode]:
        """Return the node whose entries are indexed at ``level``, if built."""
        node = self.root
        for current in range(self.levels, level, -1):
            child = node.children.get(radix_index(virtual_address, current))
            if child is None:
                return None
            node = child
        return node

    @property
    def table_bytes(self) -> int:
        """Memory consumed by page-table nodes."""
        return self.nodes_allocated * PAGE_4K

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Plain-data snapshot of the radix tree (recursion depth is the
        table's level count, at most :data:`MAX_RADIX_LEVELS`)."""
        return {
            "levels": self.levels,
            "root": _node_state(self.root),
            "pages_mapped": self.pages_mapped,
            "nodes_allocated": self.nodes_allocated,
        }

    def load_state(self, state: dict) -> None:
        """Replace this table's tree with the snapshot's.

        The frames the restored nodes sit in were handed out by the
        allocator whose own state is restored alongside, so no frames are
        (re)allocated here.
        """
        if state["levels"] != self.levels:
            raise ValueError(
                f"snapshot is a {state['levels']}-level table, this table "
                f"has {self.levels} levels"
            )
        self.root = _node_from_state(state["root"])
        self.pages_mapped = state["pages_mapped"]
        self.nodes_allocated = state["nodes_allocated"]

    @classmethod
    def from_state(
        cls,
        frame_allocator: FrameAllocator,
        state: dict,
        frame_of_page: Optional[Callable[[int, int], int]] = None,
    ) -> "PageTable":
        """Rebuild a table from a snapshot without allocating a root frame.

        Used for tables created lazily per (VM, process): the fresh system
        has not built them, and going through ``__init__`` would burn an
        allocator frame the snapshot never spent.
        """
        table = cls.__new__(cls)
        table.levels = state["levels"]
        table._allocator = frame_allocator
        table._frame_of_page = frame_of_page or table._default_frame_of_page
        table.root = _node_from_state(state["root"])
        table.pages_mapped = state["pages_mapped"]
        table.nodes_allocated = state["nodes_allocated"]
        return table


def _node_state(node: PageTableNode) -> dict:
    return {
        "level": node.level,
        "base_address": node.base_address,
        "leaves": dict(node.leaves),
        "children": {
            index: _node_state(child) for index, child in node.children.items()
        },
    }


def _node_from_state(state: dict) -> PageTableNode:
    return PageTableNode(
        level=state["level"],
        base_address=state["base_address"],
        children={
            index: _node_from_state(child)
            for index, child in state["children"].items()
        },
        leaves=dict(state["leaves"]),
    )
