"""Hardware page-table walkers: native 1-D and virtualized 2-D (nested).

The virtualized walk follows the paper's Figure 2b: each guest page-table
level yields a guest-physical pointer which itself needs a host (EPT)
translation, so a cold 4 KB walk touches up to 24 memory locations (4x4
host references for the guest pointers, 4 guest node references, and a
final 4-reference host walk of the resulting guest-physical address).
Warm walks are much cheaper thanks to the paging-structure caches (guest
dimension) and the nested TLB (host dimension) — reproducing the spread
the paper measures in Table 1.

Every memory reference a walk makes is issued through a caller-provided
accessor, so walk traffic competes for L2/L3 data-cache capacity exactly
as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from repro.mem.address import Asid, PAGE_4K_BITS, RADIX_LEVELS
from repro.mem.cache import LineKind
from repro.vm.mmu_cache import NestedTlb, PagingStructureCache, PscConfig
from repro.vm.page_table import PageTable, Translation
from repro.vm.physical_memory import FrameAllocator, HostPhysicalMemory

#: Signature of the memory-access callback: (host physical address, line
#: kind, is_write) -> latency in CPU cycles.
MemoryAccessor = Callable[[int, LineKind, bool], int]

#: Guest-physical address space size per VM (frames are virtual bookkeeping;
#: nothing this large is actually allocated).
_GUEST_PHYS_BYTES = 1 << 40


@dataclass
class WalkResult:
    """Outcome of one page walk."""

    translation: Translation
    latency: int
    memory_refs: int


@dataclass
class WalkerStats:
    walks: int = 0
    total_latency: int = 0
    total_refs: int = 0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.walks if self.walks else 0.0

    @property
    def mean_refs(self) -> float:
        return self.total_refs / self.walks if self.walks else 0.0


def register_walker_metrics(walker: "PageWalker", registry, prefix: str) -> None:
    """Register a walker's counters as callback gauges under ``prefix``.

    Callbacks dereference ``walker.stats`` lazily because the stats
    object is replaced wholesale on ``System.reset_stats``.
    """
    registry.gauge(f"{prefix}.walks", lambda: walker.stats.walks)
    registry.gauge(f"{prefix}.total_refs", lambda: walker.stats.total_refs)
    registry.gauge(
        f"{prefix}.mean_latency_cycles", lambda: walker.stats.mean_latency
    )
    registry.gauge(f"{prefix}.mean_refs", lambda: walker.stats.mean_refs)


class VirtualMachine:
    """Page tables and allocators for one guest VM (or native process group).

    With ``native=True`` there is no host dimension: "guest" tables map
    straight to host frames and are walked with the 1-D walker, modelling
    the paper's native runs (Table 1, Figure 12).
    """

    def __init__(
        self,
        vm_id: int,
        host_memory: HostPhysicalMemory,
        native: bool = False,
        levels: int = RADIX_LEVELS,
    ):
        self.vm_id = vm_id
        self.native = native
        self.levels = levels
        self._host_allocator = host_memory.allocator_for_vm(vm_id)
        if native:
            self._guest_allocator = self._host_allocator
            self.host_table = None
        else:
            # Guest-physical frames are bookkeeping numbers in a private space.
            self._guest_allocator = FrameAllocator(
                base_frame=0, num_frames=_GUEST_PHYS_BYTES // 4096
            )
            # Host (EPT) table: gPA -> hPA.  Its nodes live in host frames.
            self.host_table = PageTable(self._host_allocator, levels=levels)
        # Guest tables per process: gVA -> gPA (or VA -> hPA natively).
        self._guest_tables: Dict[int, PageTable] = {}
        # Host (EPT) mappings only ever grow, so frames proven mapped are
        # memoized and ``ensure_host_mapped`` becomes one set probe after
        # first touch.  Cleared on ``load_state`` (a snapshot may predate
        # mappings the memo has seen).
        self._host_mapped: set = set()

    def guest_table(self, process_id: int) -> PageTable:
        table = self._guest_tables.get(process_id)
        if table is None:
            table = PageTable(self._guest_allocator, levels=self.levels)
            self._guest_tables[process_id] = table
        return table

    def ensure_mapped(
        self, process_id: int, virtual_address: int, page_bits: int = PAGE_4K_BITS
    ) -> None:
        """Demand-map a guest page and (if virtualized) its EPT backing."""
        table = self.guest_table(process_id)
        if table.lookup(virtual_address) is not None:
            return
        guest_translation = table.map_page(virtual_address, page_bits)
        if self.native:
            return
        guest_physical = guest_translation.frame_base << PAGE_4K_BITS
        if self.host_table.lookup(guest_physical) is None:
            self.host_table.map_page(guest_physical, page_bits)

    def remap_guest_page(self, process_id: int, virtual_address: int):
        """Guest OS moves a page to a new guest frame; EPT backs it anew.

        Returns the new guest-side translation.  The caller is responsible
        for the TLB shootdown (see ``System.shootdown_page``).
        """
        table = self.guest_table(process_id)
        translation = table.remap_page(virtual_address)
        if not self.native:
            guest_physical = translation.frame_base << PAGE_4K_BITS
            if self.host_table.lookup(guest_physical) is None:
                self.host_table.map_page(guest_physical, translation.page_bits)
        return translation

    def ensure_host_mapped(self, guest_physical: int) -> None:
        """Ensure an EPT mapping exists for ``guest_physical`` (node frames)."""
        if self.native:
            raise RuntimeError("native contexts have no host (EPT) dimension")
        frame = guest_physical >> PAGE_4K_BITS
        if frame in self._host_mapped:
            return
        if self.host_table.lookup(guest_physical) is None:
            self.host_table.map_page(guest_physical, PAGE_4K_BITS)
        self._host_mapped.add(frame)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot the VM's allocators and tables.

        Natively the guest allocator *is* the host allocator (aliased), so
        only the host side is recorded; restoring keeps the alias intact.
        """
        return {
            "vm_id": self.vm_id,
            "native": self.native,
            "levels": self.levels,
            "host_allocator": self._host_allocator.state_dict(),
            "guest_allocator": (
                None if self.native else self._guest_allocator.state_dict()
            ),
            "host_table": (
                None if self.native else self.host_table.state_dict()
            ),
            "guest_tables": {
                process_id: table.state_dict()
                for process_id, table in self._guest_tables.items()
            },
        }

    def load_state(self, state: dict) -> None:
        for field_name in ("vm_id", "native", "levels"):
            if state[field_name] != getattr(self, field_name):
                raise ValueError(
                    f"vm {self.vm_id}: snapshot {field_name}="
                    f"{state[field_name]!r} does not match this VM's "
                    f"{getattr(self, field_name)!r}"
                )
        self._host_allocator.load_state(state["host_allocator"])
        self._host_mapped.clear()
        if not self.native:
            self._guest_allocator.load_state(state["guest_allocator"])
            self.host_table.load_state(state["host_table"])
        # Guest tables are created lazily, so the snapshot may hold tables
        # the fresh VM has not built; rebuild them without allocating.
        self._guest_tables = {
            process_id: PageTable.from_state(self._guest_allocator, table_state)
            for process_id, table_state in state["guest_tables"].items()
        }


class PageWalker:
    """A per-core walker with PSC and nested TLB, issuing cacheable refs."""

    def __init__(
        self,
        accessor: MemoryAccessor,
        psc_config: Optional[PscConfig] = None,
        nested_tlb_entries: int = 64,
        walk_kind: LineKind = LineKind.TLB,
        levels: int = RADIX_LEVELS,
    ):
        self._access = accessor
        self.levels = levels
        #: Per-level charging-context labels, precomputed so the per-level
        #: loops below do no string formatting (index = level number).
        self._level_labels = tuple(f"walk.l{n}" for n in range(levels + 1))
        self._nested_labels = tuple(
            f"walk.nested.l{n}" for n in range(levels + 1)
        )
        self.psc = PagingStructureCache(psc_config, levels=levels)
        self.nested_tlb = NestedTlb(entries=nested_tlb_entries)
        self.walk_kind = walk_kind
        self.stats = WalkerStats()
        #: Optional :class:`~repro.telemetry.accounting.CycleAccountant`.
        #: The walker *sets* per-level charging contexts (``walk.l{n}``,
        #: ``walk.nested.l{n}``) but never restores them — the System
        #: brackets each walk and puts the caller's context back.
        self.accountant = None

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose walk counters in a telemetry metrics registry."""
        register_walker_metrics(self, registry, prefix)

    def state_dict(self) -> dict:
        """The accessor callback is wiring, not state — only the caches
        and counters are snapshotted."""
        return {
            "psc": self.psc.state_dict(),
            "nested_tlb": self.nested_tlb.state_dict(),
            "stats": replace(self.stats),
        }

    def load_state(self, state: dict) -> None:
        self.psc.load_state(state["psc"])
        self.nested_tlb.load_state(state["nested_tlb"])
        self.stats = replace(state["stats"])

    # ------------------------------------------------------------------
    # Native (1-D) walk
    # ------------------------------------------------------------------
    def walk_native(
        self, asid: Asid, table: PageTable, virtual_address: int
    ) -> WalkResult:
        """Figure 2a: a plain radix walk, shortened by PSC hits."""
        latency = 0
        refs = 0
        acct = self.accountant
        psc_latency = self.psc.config.latency
        hit_level = self.psc.probe_level(asid, virtual_address)
        latency += psc_latency
        if acct is not None:
            current = acct._current
            try:
                current["walk.psc"] += psc_latency
            except KeyError:
                current["walk.psc"] = psc_latency
            acct.charged += psc_latency
        start_level = table.levels if hit_level is None else hit_level
        addresses, translation = table.walk_addresses(virtual_address, start_level)
        if translation is None:
            raise KeyError(
                f"walk of unmapped address {virtual_address:#x} for {asid}"
            )
        access = self._access
        walk_kind = self.walk_kind
        if acct is None:
            for entry_address in addresses:
                latency += access(entry_address, walk_kind, False)
        else:
            # ``acct.context(label)`` inlined: the walker owns the context
            # for the whole walk (the System saved the caller's), so each
            # level is two attribute stores, not a method call.
            labels = self._level_labels
            level = start_level
            acct._split = False
            for entry_address in addresses:
                acct._prefix = labels[level]
                latency += access(entry_address, walk_kind, False)
                level -= 1
        refs += len(addresses)
        deepest = start_level - len(addresses) + 1
        self.psc.install(asid, virtual_address, deepest)
        self.stats.walks += 1
        self.stats.total_latency += latency
        self.stats.total_refs += refs
        return WalkResult(translation, latency, refs)

    # ------------------------------------------------------------------
    # Virtualized (2-D) walk
    # ------------------------------------------------------------------
    def walk_virtualized(
        self, asid: Asid, vm: VirtualMachine, virtual_address: int
    ) -> WalkResult:
        """Figure 2b: nested walk with PSC (guest) and nested-TLB (host)."""
        latency = 0
        refs = 0
        acct = self.accountant
        guest_table = vm.guest_table(asid.process_id)
        psc_latency = self.psc.config.latency
        hit_level = self.psc.probe_level(asid, virtual_address)
        latency += psc_latency
        if acct is not None:
            current = acct._current
            try:
                current["walk.psc"] += psc_latency
            except KeyError:
                current["walk.psc"] = psc_latency
            acct.charged += psc_latency
        start_level = guest_table.levels if hit_level is None else hit_level
        entry_addresses, guest_translation = guest_table.walk_addresses(
            virtual_address, start_level
        )
        if guest_translation is None:
            raise KeyError(
                f"walk of unmapped guest address {virtual_address:#x} for {asid}"
            )
        # Read each guest node entry; its guest-physical address needs a
        # host-side translation first.
        level = start_level
        access = self._access
        walk_kind = self.walk_kind
        translate = self._translate_guest_physical
        if acct is None:
            for guest_entry_address in entry_addresses:
                host_latency, host_refs, host_entry = translate(
                    vm, guest_entry_address
                )
                latency += host_latency
                refs += host_refs
                latency += access(host_entry, walk_kind, False)
            refs += len(entry_addresses)
        else:
            # Context switches inlined, as in :meth:`walk_native`.
            labels = self._level_labels
            nested_labels = self._nested_labels
            acct._split = False
            for guest_entry_address in entry_addresses:
                acct._prefix = nested_labels[level]
                host_latency, host_refs, host_entry = translate(
                    vm, guest_entry_address
                )
                latency += host_latency
                refs += host_refs
                acct._prefix = labels[level]
                latency += access(host_entry, walk_kind, False)
                refs += 1
                level -= 1
        # Final host walk of the translated guest-physical data address.
        if acct is not None:
            acct._prefix = "walk.nested.final"
            acct._split = False
        guest_physical = guest_translation.physical_address(virtual_address)
        host_latency, host_refs, host_physical = self._translate_guest_physical(
            vm, guest_physical
        )
        latency += host_latency
        refs += host_refs
        deepest = start_level - len(entry_addresses) + 1
        self.psc.install(asid, virtual_address, deepest)
        # The effective TLB entry maps the guest page to the host frame of
        # its page base (guest and host page sizes agree by construction).
        page_mask = (1 << guest_translation.page_bits) - 1
        translation = Translation(
            frame_base=(host_physical & ~page_mask) >> PAGE_4K_BITS,
            page_bits=guest_translation.page_bits,
        )
        self.stats.walks += 1
        self.stats.total_latency += latency
        self.stats.total_refs += refs
        return WalkResult(translation, latency, refs)

    def translate_guest_physical(
        self, vm: VirtualMachine, guest_physical: int
    ) -> Tuple[int, int, int]:
        """Public gPA -> hPA translation (used by the TSB trap handler)."""
        return self._translate_guest_physical(vm, guest_physical)

    def _translate_guest_physical(
        self, vm: VirtualMachine, guest_physical: int
    ) -> Tuple[int, int, int]:
        """Translate gPA -> hPA via nested TLB or a host (EPT) walk.

        Returns (latency, memory references, host physical address).
        The nested-TLB hit path — most host references of a warm 2-D
        walk — is inlined down to the backing store (same LRU update and
        hit/miss counts as ``SmallFullyAssocCache.get``).
        """
        guest_frame = guest_physical >> PAGE_4K_BITS
        acct = self.accountant
        nested = self.nested_tlb
        cache = nested._cache
        store = cache._store
        key = (vm.vm_id, guest_frame)
        host_frame = store.get(key)
        if host_frame is not None:
            store.move_to_end(key)
            cache.hits += 1
            ntlb_latency = nested.latency
            if acct is not None:
                prefix = acct._prefix
                if prefix is not None:
                    component = prefix + ".ntlb" if acct._split else prefix
                    current = acct._current
                    try:
                        current[component] += ntlb_latency
                    except KeyError:
                        current[component] = ntlb_latency
                    acct.charged += ntlb_latency
            offset = guest_physical & ((1 << PAGE_4K_BITS) - 1)
            return ntlb_latency, 0, (host_frame << PAGE_4K_BITS) + offset
        cache.misses += 1
        vm.ensure_host_mapped(guest_physical)
        latency = self.nested_tlb.latency
        if acct is not None:
            acct.charge_level(".ntlb", self.nested_tlb.latency)
        refs = 0
        addresses, translation = vm.host_table.walk_addresses(guest_physical)
        for entry_address in addresses:
            latency += self._access(entry_address, self.walk_kind, False)
            refs += 1
        host_physical = translation.physical_address(guest_physical)
        self.nested_tlb.put(vm.vm_id, guest_frame, host_physical >> PAGE_4K_BITS)
        return latency, refs, host_physical
