"""MMU page-structure caches (PSC) and the nested (gPA -> hPA) walk TLB.

Modern walkers keep small caches of partial translations so a walk can
skip upper radix levels (Intel's paging-structure caches, AMD's page walk
cache — paper Section 6).  The paper's platform (Table 2) has:

* PML4 cache — 2 entries, skips level 4 (walk starts at level 3);
* PDP cache — 4 entries, skips levels 4-3 (walk starts at level 2);
* PDE cache — 32 entries, skips levels 4-3-2 (only the leaf PTE is read).

Virtualized walks additionally use a **nested TLB** caching guest-physical
to host-physical translations, so most of the up-to-20 host references of
a 2-D walk are skipped once the guest's page-table pages are warm — this
is what keeps the measured virtualized walk cost near the native cost for
well-behaved workloads (Table 1) while letting it explode for workloads
whose walks miss everywhere.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.mem.address import Asid, PAGE_4K_BITS, RADIX_LEVELS, RADIX_LEVEL_BITS

#: VA shift that yields the PSC tag prefix for a walk resuming at level
#: 1 (PDE), 2 (PDP) and 3 (PML4) — ``_prefix`` precomputed.
_SHIFT_PDE = PAGE_4K_BITS + RADIX_LEVEL_BITS
_SHIFT_PDP = PAGE_4K_BITS + 2 * RADIX_LEVEL_BITS
_SHIFT_PML4 = PAGE_4K_BITS + 3 * RADIX_LEVEL_BITS


class SmallFullyAssocCache:
    """Tiny fully-associative LRU cache used for PSC levels and nested TLB."""

    def __init__(self, entries: int, latency: int = 2):
        if entries < 1:
            raise ValueError("cache needs at least one entry")
        self.entries = entries
        self.latency = latency
        self._store: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[object]:
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = value
        if len(self._store) > self.entries:
            self._store.popitem(last=False)

    def invalidate_all(self) -> None:
        self._store.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def state_dict(self) -> dict:
        # Insertion order of the OrderedDict *is* the LRU order.
        return {
            "store": list(self._store.items()),
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        store = state["store"]
        if len(store) > self.entries:
            raise ValueError(
                f"snapshot holds {len(store)} entries, cache capacity is "
                f"{self.entries}"
            )
        self._store = OrderedDict(store)
        self.hits = state["hits"]
        self.misses = state["misses"]


@dataclass(frozen=True)
class PscConfig:
    """Sizes and latency of the three paging-structure caches (Table 2)."""

    pml4_entries: int = 2
    pdp_entries: int = 4
    pde_entries: int = 32
    latency: int = 2


@dataclass
class PscHit:
    """A successful PSC probe: resume the walk at ``start_level``."""

    start_level: int
    latency: int


class PagingStructureCache:
    """The three-level PSC, probed longest-prefix-first.

    Keys are (asid, virtual-address prefix) where the prefix covers the
    radix indices above the skipped levels.  A PDE hit means only the leaf
    level-1 entry must be read; a PML4 hit skips just the root.
    """

    def __init__(
        self, config: PscConfig | None = None, levels: int = RADIX_LEVELS
    ):
        self.config = config or PscConfig()
        self.levels = levels
        self._pde = SmallFullyAssocCache(self.config.pde_entries, self.config.latency)
        self._pdp = SmallFullyAssocCache(self.config.pdp_entries, self.config.latency)
        self._pml4 = SmallFullyAssocCache(self.config.pml4_entries, self.config.latency)

    def _prefix(self, virtual_address: int, resume_level: int) -> int:
        """VA bits above (and including) the index at ``resume_level + 1``.

        A hit tagged with this prefix lets the walk resume at
        ``resume_level`` — the PDE cache uses ``resume_level=1``, PDP 2,
        PML4 3, regardless of whether the table has 4 or 5 levels.
        """
        shift = PAGE_4K_BITS + resume_level * RADIX_LEVEL_BITS
        return virtual_address >> shift

    def probe(self, asid: Asid, virtual_address: int) -> Optional[PscHit]:
        """Return the deepest partial-translation hit, if any."""
        level = self.probe_level(asid, virtual_address)
        if level is None:
            return None
        return PscHit(start_level=level, latency=self.config.latency)

    def probe_level(self, asid: Asid, virtual_address: int) -> Optional[int]:
        """Hot-path :meth:`probe`: the resume level (or ``None``) with no
        ``PscHit`` allocation and the per-cache ``get`` inlined — same
        longest-prefix order, LRU updates and hit/miss counts."""
        cache = self._pde
        store = cache._store
        key = (asid, virtual_address >> _SHIFT_PDE)
        if store.get(key) is not None:
            store.move_to_end(key)
            cache.hits += 1
            return 1
        cache.misses += 1
        cache = self._pdp
        store = cache._store
        key = (asid, virtual_address >> _SHIFT_PDP)
        if store.get(key) is not None:
            store.move_to_end(key)
            cache.hits += 1
            return 2
        cache.misses += 1
        cache = self._pml4
        store = cache._store
        key = (asid, virtual_address >> _SHIFT_PML4)
        if store.get(key) is not None:
            store.move_to_end(key)
            cache.hits += 1
            return 3
        cache.misses += 1
        return None

    def install(self, asid: Asid, virtual_address: int, deepest_level: int) -> None:
        """Record partial translations learned by a completed walk.

        ``deepest_level`` is the level of the last *interior* node read
        (1 means the walk reached a leaf PTE, so all three prefixes are
        cacheable; a 2 MB walk stops at level 2 so only PML4/PDP apply).
        """
        if deepest_level <= 1:
            self._pde.put((asid, virtual_address >> _SHIFT_PDE), True)
        if deepest_level <= 2:
            self._pdp.put((asid, virtual_address >> _SHIFT_PDP), True)
        if deepest_level <= 3:
            self._pml4.put((asid, virtual_address >> _SHIFT_PML4), True)

    def invalidate_all(self) -> None:
        self._pde.invalidate_all()
        self._pdp.invalidate_all()
        self._pml4.invalidate_all()

    @property
    def hit_rate(self) -> float:
        hits = self._pde.hits + self._pdp.hits + self._pml4.hits
        misses = self._pde.misses  # every probe reaches the PDE cache first
        total = self._pde.hits + self._pde.misses
        return hits / total if total else 0.0

    def state_dict(self) -> dict:
        return {
            "pde": self._pde.state_dict(),
            "pdp": self._pdp.state_dict(),
            "pml4": self._pml4.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._pde.load_state(state["pde"])
        self._pdp.load_state(state["pdp"])
        self._pml4.load_state(state["pml4"])


@dataclass
class NestedTlb:
    """Guest-physical to host-physical translation cache used during walks."""

    entries: int = 64
    latency: int = 1
    _cache: SmallFullyAssocCache = field(init=False)

    def __post_init__(self) -> None:
        self._cache = SmallFullyAssocCache(self.entries, self.latency)

    def get(self, vm_id: int, guest_frame: int) -> Optional[int]:
        return self._cache.get((vm_id, guest_frame))

    def put(self, vm_id: int, guest_frame: int, host_frame: int) -> None:
        self._cache.put((vm_id, guest_frame), host_frame)

    @property
    def hit_rate(self) -> float:
        return self._cache.hit_rate

    def state_dict(self) -> dict:
        return {"cache": self._cache.state_dict()}

    def load_state(self, state: dict) -> None:
        self._cache.load_state(state["cache"])
