"""repro.vm subpackage."""
