"""Host and guest physical memory layout and frame allocation.

Layout of host physical memory (matching the paper's platform):

* ``[0, pom_tlb_bytes)`` — the POM-TLB region, resident in die-stacked
  DRAM (16 MB by default, as in Ryoo et al. and the paper's Section 3);
* everything above — ordinary off-chip DDR4, holding page-table nodes and
  program data.

Each virtual machine receives frames from a disjoint host range, so VM
context switches thrash the physically-tagged caches naturally (no flush
modeling needed).  Frame numbers are scrambled with a multiplicative hash
so that consecutive virtual pages do not map to consecutive physical rows,
mimicking a long-running system's fragmented allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.mem.address import PAGE_4K, PAGE_4K_BITS

DEFAULT_POM_TLB_BYTES = 16 * 1024 * 1024

# Knuth's multiplicative constant, used to scatter frame numbers.
_SCRAMBLE = 2654435761
_SCRAMBLE_MASK = (1 << 32) - 1


@dataclass
class FrameAllocator:
    """Hands out 4 KB frame numbers from a contiguous range, scrambled.

    ``alloc(contiguous=n)`` returns the first of ``n`` physically
    contiguous frames (needed for 2 MB huge pages and page-table nodes).
    Contiguous requests are carved sequentially from the top of the range
    so they never collide with scrambled single-frame allocations, which
    are carved from the bottom.
    """

    base_frame: int
    num_frames: int
    _next_single: int = 0
    _next_contig_end: int = field(default=-1)

    def __post_init__(self) -> None:
        if self._next_contig_end < 0:
            self._next_contig_end = self.num_frames

    def alloc(self, contiguous: int = 1) -> int:
        """Allocate frames; returns the base frame number."""
        if contiguous < 1:
            raise ValueError("must allocate at least one frame")
        if contiguous == 1:
            if self._next_single >= self._next_contig_end:
                raise MemoryError("physical frame range exhausted")
            index = self._next_single
            self._next_single += 1
            # Scramble within the single-allocation subrange.
            span = max(1, self._next_contig_end)
            scrambled = ((index * _SCRAMBLE) & _SCRAMBLE_MASK) % span
            # Linear-probe for an unused slot to keep allocation injective.
            frame = self._probe(scrambled, span)
            return self.base_frame + frame
        start = self._next_contig_end - contiguous
        if start < self._next_single:
            raise MemoryError("physical frame range exhausted")
        self._next_contig_end = start
        return self.base_frame + start

    # A tiny open-addressing table records which scrambled slots were used.
    _used: Dict[int, bool] = field(default_factory=dict)

    def _probe(self, start: int, span: int) -> int:
        slot = start
        while slot in self._used:
            slot = (slot + 1) % span
        self._used[slot] = True
        return slot

    @property
    def frames_allocated(self) -> int:
        return len(self._used) + (self.num_frames - self._next_contig_end)

    def state_dict(self) -> dict:
        return {
            "base_frame": self.base_frame,
            "num_frames": self.num_frames,
            "next_single": self._next_single,
            "next_contig_end": self._next_contig_end,
            "used": dict(self._used),
        }

    def load_state(self, state: dict) -> None:
        for field_name in ("base_frame", "num_frames"):
            if state[field_name] != getattr(self, field_name):
                raise ValueError(
                    f"allocator snapshot {field_name}={state[field_name]} "
                    f"does not match this range's {getattr(self, field_name)}"
                )
        self._next_single = state["next_single"]
        self._next_contig_end = state["next_contig_end"]
        self._used = dict(state["used"])


class HostPhysicalMemory:
    """Carves host physical memory into the POM-TLB region and VM slices."""

    def __init__(
        self,
        num_vms: int,
        vm_bytes: int = 1 << 32,
        pom_tlb_bytes: int = DEFAULT_POM_TLB_BYTES,
    ):
        if num_vms < 1:
            raise ValueError("need at least one virtual machine")
        self.pom_tlb_bytes = pom_tlb_bytes
        self.pom_tlb_base = 0
        vm_frames = vm_bytes // PAGE_4K
        first_frame = pom_tlb_bytes // PAGE_4K
        self._vm_allocators = [
            FrameAllocator(first_frame + vm * vm_frames, vm_frames)
            for vm in range(num_vms)
        ]

    def allocator_for_vm(self, vm_id: int) -> FrameAllocator:
        return self._vm_allocators[vm_id]

    def in_pom_tlb(self, address: int) -> bool:
        """Whether a host physical address falls in the POM-TLB region."""
        return self.pom_tlb_base <= address < self.pom_tlb_base + self.pom_tlb_bytes

    @staticmethod
    def frame_to_address(frame: int) -> int:
        return frame << PAGE_4K_BITS
