"""CSALT: Context Switch Aware Large TLB — a full-system reproduction.

Reproduces Marathe et al., *CSALT: Context Switch Aware Large TLB*
(MICRO-50, 2017): a trace-driven simulator of a virtualized 8-core memory
subsystem with a part-of-memory L3 TLB, plus the CSALT TLB-aware dynamic
cache-partitioning schemes and every baseline the paper compares against.

Quickstart::

    from repro import Scheme, small_config, run_simulation, make_mix

    config = small_config(scheme=Scheme.CSALT_CD)
    result = run_simulation(config, make_mix("gups"), total_accesses=50_000)
    print(result.ipc, result.l2_tlb_mpki)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.core.partitioning import (
    PartitionController,
    best_partition,
    marginal_utility,
)
from repro.core.schemes import PartitionMode, Scheme
from repro.core.stack_distance import StackDistanceProfiler
from repro.mem.cache import Cache, LineKind
from repro.sim.config import CacheConfig, SystemConfig, TlbConfig, small_config
from repro.sim.engine import run_simulation
from repro.sim.stats import SimulationResult, geometric_mean
from repro.sim.system import System
from repro.telemetry import (
    CpiStack,
    CycleAccountant,
    EventTracer,
    HostProfiler,
    MetricsRegistry,
    Telemetry,
    TraceEvent,
)
from repro.tlb.pom_tlb import PomTlb
from repro.tlb.tlb import Tlb, TlbEntry
from repro.workloads.base import Workload
from repro.workloads.mixes import MIX_NAMES, MIXES, make_mix, make_program
from repro.workloads.trace import TraceWorkload, record_trace, trace_info

__version__ = "1.0.0"

__all__ = [
    "Cache",
    "CacheConfig",
    "EventTracer",
    "HostProfiler",
    "LineKind",
    "MetricsRegistry",
    "Telemetry",
    "TraceEvent",
    "MIXES",
    "MIX_NAMES",
    "PartitionController",
    "PartitionMode",
    "PomTlb",
    "Scheme",
    "SimulationResult",
    "StackDistanceProfiler",
    "System",
    "SystemConfig",
    "Tlb",
    "TlbConfig",
    "TlbEntry",
    "TraceWorkload",
    "Workload",
    "best_partition",
    "geometric_mean",
    "make_mix",
    "make_program",
    "marginal_utility",
    "record_trace",
    "run_simulation",
    "small_config",
    "trace_info",
]
