"""Evaluate CSALT on a workload of your own.

The library's schemes are workload-agnostic: anything that implements
:class:`repro.workloads.base.Workload` can be simulated.  This example
defines a synthetic key-value store — hash-table probes over a large
huge-page heap plus a write-ahead log stream — and asks whether such a
service would benefit from a large L3 TLB and TLB-aware partitioning.

Usage::

    python examples/custom_workload.py
"""

import numpy as np

from repro import Scheme, run_simulation, small_config
from repro.workloads.base import BATCH, REGION_4K_BASE, Workload


class KeyValueStore(Workload):
    """GET-heavy KV store: random probes + sequential log appends."""

    name = "kvstore"

    def __init__(
        self,
        heap_bytes: int = 768 * 1024 * 1024,
        log_bytes: int = 8 * 1024 * 1024,
        get_fraction: float = 0.85,
        hot_fraction: float = 0.2,
        hot_bias: float = 0.6,
    ):
        self.heap_bytes = heap_bytes
        self.log_bytes = log_bytes
        self.get_fraction = get_fraction
        self.hot_fraction = hot_fraction
        self.hot_bias = hot_bias
        self.huge_va_limit = heap_bytes  # the heap is THP-backed

    def thread_stream(self, thread_id, num_threads=8, seed=0):
        rng = np.random.default_rng((seed, thread_id, 0x4B56))
        buckets = self.heap_bytes // 64
        hot_buckets = max(1, int(buckets * self.hot_fraction))
        log_span = self.log_bytes // num_threads
        log_base = REGION_4K_BASE + thread_id * log_span
        log_cursor = 0
        while True:
            gets = rng.random(BATCH) < self.get_fraction
            hots = rng.random(BATCH) < self.hot_bias
            hot_picks = rng.integers(0, hot_buckets, size=BATCH)
            cold_picks = rng.integers(0, buckets, size=BATCH)
            for is_get, is_hot, hot, cold in zip(gets, hots, hot_picks, cold_picks):
                bucket = int(hot) if is_hot else int(cold)
                if is_get:
                    yield bucket * 64, False
                else:
                    yield bucket * 64, True          # update the value
                    yield log_base + log_cursor, True  # append to the WAL
                    log_cursor = (log_cursor + 32) % log_span


def main() -> None:
    workload = KeyValueStore()
    print("Custom workload: key-value store, two instances context-switched\n")
    results = {}
    for scheme in (Scheme.CONVENTIONAL, Scheme.POM_TLB, Scheme.CSALT_CD):
        config = small_config(scheme=scheme)
        results[scheme] = run_simulation(
            config, [workload, KeyValueStore()], total_accesses=240_000
        )
    baseline = results[Scheme.POM_TLB]
    print(f"{'scheme':<14}{'IPC':>9}{'vs POM-TLB':>12}{'L2TLB MPKI':>12}")
    for scheme, result in results.items():
        print(f"{scheme.label:<14}{result.ipc:>9.4f}"
              f"{result.speedup_over(baseline):>11.2f}x"
              f"{result.l2_tlb_mpki:>12.1f}")
    print()
    print("A service with a heap far beyond the TLB reach behaves like the")
    print("paper's graph workloads: the large L3 TLB removes the page-walk")
    print("tax, and partitioning keeps its entries from starving the data.")


if __name__ == "__main__":
    main()
