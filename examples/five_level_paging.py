"""Five-level (LA57) paging: the paper's stated future threat, quantified.

The paper's introduction argues that Intel's five-level page tables
"will only strengthen the motivation" for CSALT: a 2-D nested walk grows
from up to 24 to up to 35 memory references.  This example measures the
walk cost and the value of the large L3 TLB at both depths.

Usage::

    python examples/five_level_paging.py
"""

from repro import Scheme, make_mix, run_simulation, small_config

MIX = "ccomp"


def run(scheme: Scheme, levels: int):
    config = small_config(scheme=scheme, page_table_levels=levels)
    return run_simulation(
        config, make_mix(MIX, scale=0.25), total_accesses=160_000
    )


def main() -> None:
    print(f"mix: {MIX}, virtualized, 2 VM contexts per core\n")
    print(f"{'':<30}{'4-level':>12}{'5-level':>12}")
    conventional = {n: run(Scheme.CONVENTIONAL, n) for n in (4, 5)}
    pom = {n: run(Scheme.POM_TLB, n) for n in (4, 5)}
    rows = [
        ("mean 2-D walk cycles",
         f"{conventional[4].walk_mean_cycles:.0f}",
         f"{conventional[5].walk_mean_cycles:.0f}"),
        ("conventional IPC",
         f"{conventional[4].ipc:.4f}", f"{conventional[5].ipc:.4f}"),
        ("POM-TLB IPC", f"{pom[4].ipc:.4f}", f"{pom[5].ipc:.4f}"),
        ("POM-TLB speedup",
         f"{pom[4].ipc / conventional[4].ipc:.2f}x",
         f"{pom[5].ipc / conventional[5].ipc:.2f}x"),
    ]
    for label, four, five in rows:
        print(f"{label:<30}{four:>12}{five:>12}")
    print()
    print("Deeper tables make every surviving walk more expensive, so the")
    print("walk-eliminating large L3 TLB becomes more valuable — exactly")
    print("the paper's argument for why this problem will get worse.")


if __name__ == "__main__":
    main()
