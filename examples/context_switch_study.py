"""Context-switch study: how VM co-scheduling inflates TLB miss rates.

Reproduces the paper's motivation (Figure 1 and Section 2.2) on a few
mixes: L2 TLB MPKI with 1, 2 and 4 VM contexts per core on the
conventional system, plus the average page-walk cost, showing why the
paper calls context-switched translation "expensive".

Usage::

    python examples/context_switch_study.py
"""

from repro import Scheme, make_mix, run_simulation, small_config

MIXES = ("gups", "ccomp", "canneal", "streamcluster")
CONTEXT_COUNTS = (1, 2, 4)


def run(mix_name: str, contexts: int):
    config = small_config(
        scheme=Scheme.CONVENTIONAL, contexts_per_core=contexts
    )
    workloads = make_mix(mix_name, contexts=contexts, scale=0.25)
    return run_simulation(config, workloads, total_accesses=240_000)


def main() -> None:
    print("L2 TLB MPKI and mean 2-D walk cost vs VM contexts per core")
    print("(conventional L1-L2 TLB system, virtualized, 10 ms quanta)\n")
    header = (f"{'mix':<14}" + "".join(
        f"{f'{n} ctx MPKI':>12}" for n in CONTEXT_COUNTS
    ) + f"{'walk cyc (2 ctx)':>18}")
    print(header)
    print("-" * len(header))
    for mix_name in MIXES:
        results = [run(mix_name, n) for n in CONTEXT_COUNTS]
        walk = results[1].walk_mean_cycles
        row = f"{mix_name:<14}" + "".join(
            f"{r.l2_tlb_mpki:>12.1f}" for r in results
        ) + f"{walk:>18.0f}"
        print(row)
    print()
    print("More co-resident contexts -> more TLB capacity pressure; the")
    print("scattered-access mixes degrade the most (paper Figure 1 finds")
    print("a >6x geomean MPKI increase going from 1 to 2 contexts).")


if __name__ == "__main__":
    main()
