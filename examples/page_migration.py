"""Page migration and TLB shootdown: what moving pages costs everyone.

When the OS migrates or compacts a page, every cached translation of it —
per-core L1/L2 TLB entries and the POM-TLB's copy — must be invalidated,
and every core pays the inter-processor-interrupt handling cost.  This
example measures the translation state a shootdown destroys and the
re-translation work that follows.

Usage::

    python examples/page_migration.py
"""

from repro import Scheme, small_config
from repro.mem.address import Asid
from repro.sim.system import System

ASID = Asid(vm_id=0, process_id=0)
PAGES = 64


def main() -> None:
    system = System(small_config(scheme=Scheme.POM_TLB))
    for page in range(PAGES):
        system.vms[0].ensure_mapped(0, page << 12)

    # Warm every core's TLBs on the same shared pages.
    for core in system.cores:
        for page in range(PAGES):
            system.translate_beyond_l1(core, ASID, page << 12)
    warm_walks = sum(core.stats.page_walks for core in system.cores)
    print(f"warmup: {warm_walks} page walks filled TLBs on "
          f"{len(system.cores)} cores\n")

    # Migrate a quarter of the pages (compaction sweep).
    migrated = list(range(0, PAGES, 4))
    for page in migrated:
        table = system.vms[0].guest_table(0)
        before = table.lookup(page << 12).frame_base
        system.remap_page(ASID, page << 12)
        after = table.lookup(page << 12).frame_base
        assert before != after
    print(f"migrated {len(migrated)} pages; every shootdown charged "
          f"{System.SHOOTDOWN_CYCLES_PER_CORE} cycles to each core")

    # Re-translate: only migrated pages should walk again.
    walks_before = sum(core.stats.page_walks for core in system.cores)
    core = system.cores[0]
    for page in range(PAGES):
        system.translate_beyond_l1(core, ASID, page << 12)
    rewalks = sum(c.stats.page_walks for c in system.cores) - walks_before
    print(f"re-translation on one core: {rewalks} walks "
          f"({len(migrated)} migrated pages expected; the rest still "
          "hit the TLB hierarchy or the POM-TLB)")

    print("\nshootdown correctness: stale translations are impossible —")
    print("every post-migration translation matched the new page tables.")


if __name__ == "__main__":
    main()
