"""Quickstart: compare translation schemes on one context-switched mix.

Runs the `gups` pairing (two VMs of random-update workloads, the paper's
most TLB-hostile program) under the conventional L1-L2 TLB system, the
POM-TLB, and CSALT-CD, then prints IPC and the translation statistics
that explain the differences.

Usage::

    python examples/quickstart.py [mix_name]
"""

import sys
import time

from repro import Scheme, make_mix, run_simulation, small_config

SCHEMES = (Scheme.CONVENTIONAL, Scheme.POM_TLB, Scheme.CSALT_D, Scheme.CSALT_CD)


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "gups"
    print(f"mix: {mix_name} (two VM contexts per core, 10 ms quanta, "
          "quarter-scale machine)\n")
    header = (f"{'scheme':<14} {'IPC':>8} {'L2TLB MPKI':>11} "
              f"{'walks':>7} {'walks elim.':>11} {'time':>6}")
    print(header)
    print("-" * len(header))
    baseline_ipc = None
    for scheme in SCHEMES:
        config = small_config(scheme=scheme)
        workloads = make_mix(mix_name, scale=0.25)
        started = time.time()
        result = run_simulation(config, workloads, total_accesses=240_000)
        elapsed = time.time() - started
        if scheme is Scheme.POM_TLB:
            baseline_ipc = result.ipc
        print(f"{scheme.label:<14} {result.ipc:>8.4f} "
              f"{result.l2_tlb_mpki:>11.1f} {result.page_walks:>7d} "
              f"{result.walks_eliminated_fraction:>11.2f} {elapsed:>5.1f}s")
    print()
    if baseline_ipc:
        print("IPC is the geometric mean across the 8 cores; 'walks elim.'")
        print("is the fraction of L2 TLB misses served without a 2-D page")
        print("walk (the POM-TLB's job; CSALT then manages the cache space")
        print("its entries consume).")


if __name__ == "__main__":
    main()
