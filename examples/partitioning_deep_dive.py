"""Deep dive into CSALT's cache partitioning on connected component.

Mirrors the paper's Section 5.1 analysis: runs the `ccomp` pairing under
POM-TLB and CSALT-CD and reports (a) how much cache capacity translation
entries occupy (Figure 3), (b) where TLB references were served from,
and (c) the partition-decision timeline (Figure 9).

Usage::

    python examples/partitioning_deep_dive.py
"""

from repro import Scheme, make_mix, run_simulation, small_config


def run(scheme: Scheme):
    config = small_config(scheme=scheme)
    return run_simulation(
        config, make_mix("ccomp", scale=0.25), total_accesses=240_000
    )


def ref_breakdown(result) -> str:
    extra = result.extra
    total = max(
        1.0,
        extra["tlb_refs_l2"] + extra["tlb_refs_l3"] + extra["tlb_refs_dram"],
    )
    return (f"L2$ {extra['tlb_refs_l2'] / total:.0%}  "
            f"L3$ {extra['tlb_refs_l3'] / total:.0%}  "
            f"DRAM {extra['tlb_refs_dram'] / total:.0%}")


def sparkline(series, buckets=24) -> str:
    """Render a partition timeline as a coarse text sparkline."""
    if not series:
        return "(none)"
    marks = "_▁▂▃▄▅▆▇█"
    step = max(1, len(series) // buckets)
    shares = [share for _, share in series][::step]
    return "".join(marks[min(len(marks) - 1, int(s * len(marks)))] for s in shares)


def main() -> None:
    pom = run(Scheme.POM_TLB)
    csalt = run(Scheme.CSALT_CD)

    print("connected component x2 VMs, context-switched every 10 ms\n")
    print(f"{'':<22}{'POM-TLB':>12}{'CSALT-CD':>12}")
    rows = [
        ("IPC (geomean)", f"{pom.ipc:.4f}", f"{csalt.ipc:.4f}"),
        ("L2 D$ MPKI", f"{pom.l2_cache_mpki:.1f}", f"{csalt.l2_cache_mpki:.1f}"),
        ("L3 D$ MPKI", f"{pom.l3_cache_mpki:.1f}", f"{csalt.l3_cache_mpki:.1f}"),
        ("TLB share of L2 D$", f"{pom.mean_l2_tlb_occupancy:.0%}",
         f"{csalt.mean_l2_tlb_occupancy:.0%}"),
        ("TLB share of L3 D$", f"{pom.mean_l3_tlb_occupancy:.0%}",
         f"{csalt.mean_l3_tlb_occupancy:.0%}"),
    ]
    for label, pom_value, csalt_value in rows:
        print(f"{label:<22}{pom_value:>12}{csalt_value:>12}")
    print(f"\nCSALT-CD speedup over POM-TLB: {csalt.speedup_over(pom):.2f}x")

    print("\nWhere TLB-entry references were served:")
    print(f"  POM-TLB : {ref_breakdown(pom)}")
    print(f"  CSALT-CD: {ref_breakdown(csalt)}")

    print("\nTLB way-share over time (Figure 9; one mark per epoch):")
    print(f"  L2 D$: {sparkline(csalt.l2_partition_timeline)}")
    print(f"  L3 D$: {sparkline(csalt.l3_partition_timeline)}")
    print("\nThe share rises when the workload regenerates its active list")
    print("(translation-hungry phase) and falls while a list is processed.")


if __name__ == "__main__":
    main()
