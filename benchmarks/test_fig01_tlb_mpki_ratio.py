"""Figure 1: increase in L2 TLB MPKI caused by VM context switches.

Paper shape: every mix's ratio exceeds 1, the geomean is well above 1
(paper reports >6x at full scale), and the scattered-access mixes (ccomp)
sit far above the streaming ones (streamcluster).
"""

from repro.experiments import figures


def test_fig01_tlb_mpki_ratio(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure1, rounds=1, iterations=1)
    save_exhibit("figure01", result.format())
    by_mix = {row[0]: row[3] for row in result.rows}
    assert by_mix["geomean"] > 1.2, "context switching must raise TLB MPKI"
    # The big-footprint random-access mixes suffer far more than the
    # streaming one.
    assert max(by_mix["gups"], by_mix["graph500"]) > by_mix["streamcluster"]
    assert all(ratio > 0 for ratio in by_mix.values())
