"""Table 1: average page-walk cycles per L2 TLB miss, native vs virtualized.

Paper shape: virtualized walks are never cheaper than native walks, and
the scattered-access workloads (connected component) blow up by an order
of magnitude while streaming ones stay close to native.
"""

from repro.experiments import figures


def test_tab1_walk_cycles(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_table1, rounds=1, iterations=1)
    save_exhibit("table1", result.format())
    for program, native, virtualized in result.rows:
        assert virtualized >= native, program
    by_program = {row[0]: row for row in result.rows}
    _, ccomp_native, ccomp_virt = by_program["ccomp"]
    assert ccomp_virt / max(1, ccomp_native) > 2, (
        "ccomp virtualized walks should blow up vs native"
    )
