"""Figure 11: relative L3 data-cache MPKI over POM-TLB.

Paper shape: CSALT-CD reduces L3 MPKI on contended mixes (ccomp up to
~26% at full scale) and never inflates the geomean badly.
"""

from repro.experiments import figures


def test_fig11_l3_mpki(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure11, rounds=1, iterations=1)
    save_exhibit("figure11", result.format())
    geomean = result.rows[-1]
    assert geomean[3] < 1.1, "CSALT-CD must not blow up L3 MPKI"
