"""Figure 13: comparison against TSB and DIP (normalized to POM-TLB).

Paper shape: CSALT-CD wins overall; DIP is roughly at POM-TLB parity
(it cannot tell the two streams apart); TSB trails because of its
multi-lookup translation path.
"""

from repro.experiments import figures


def test_fig13_prior_work(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure13, rounds=1, iterations=1)
    save_exhibit("figure13", result.format())
    tsb, dip, csalt_cd = result.rows[-1][1:]
    assert csalt_cd > tsb, "CSALT-CD must beat TSB"
    assert csalt_cd >= dip - 0.05, "CSALT-CD must at least match DIP"
    assert dip > tsb, "even DIP-on-POM beats the multi-lookup TSB"
