"""Figure 14: sensitivity to the number of VM contexts per core.

Paper shape: CSALT-CD's gain over POM-TLB grows with context pressure
(1 context smallest, 4 contexts largest).
"""

from repro.experiments import figures


def test_fig14_contexts(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure14, rounds=1, iterations=1)
    save_exhibit("figure14", result.format())
    one, two, four = result.rows[-1][1:]
    assert four >= one - 0.02, "gain must not shrink with more contexts"
    assert all(v > 0.9 for v in (one, two, four))
