"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper exhibit.  Simulation results are
memoized in ``repro.experiments.runner``, so exhibits that read different
statistics off the same runs (Figures 3/7/8/10/11) only pay once.

Formatted tables are written to ``benchmarks/results/<name>.md`` so the
regenerated rows are inspectable after a quiet pytest run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_exhibit():
    """Return a saver: save_exhibit(name, formatted_text)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.md").write_text(text + "\n")
        print()
        print(text)

    return save
