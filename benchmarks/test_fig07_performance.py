"""Figure 7: the headline comparison, IPC normalized to POM-TLB.

Paper shape: Conventional < POM-TLB <= CSALT-D <= CSALT-CD in geomean;
the large-TLB schemes beat the conventional system on the TLB-bound
mixes; ccomp shows the largest CSALT gain.
"""

from repro.experiments import figures


def test_fig07_performance(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure7, rounds=1, iterations=1)
    save_exhibit("figure07", result.format())
    geomean = result.rows[-1]
    conventional, pom, csalt_d, csalt_cd = geomean[1:]
    assert pom == 1.0 or abs(pom - 1.0) < 1e-9
    assert conventional < 1.0, "conventional must trail POM-TLB"
    assert csalt_d >= 0.99, "CSALT-D must not lose to POM-TLB"
    assert csalt_cd >= csalt_d - 0.02, "criticality weighting must not hurt"
