"""Extension: sequential TLB prefetching on top of CSALT-CD.

Shape: prefetching never hurts meaningfully (the stream detector
suppresses random-access prefetches) and helps streaming mixes.
"""

from repro.experiments import ablations


def test_ext_tlb_prefetch(benchmark, save_exhibit):
    result = benchmark.pedantic(
        ablations.run_tlb_prefetch, rounds=1, iterations=1
    )
    save_exhibit("extension_prefetch", result.format())
    geomean = result.rows[-1][2]
    assert geomean > 0.97, "prefetching must not hurt overall"
