"""Figure 15: sensitivity to the partitioning epoch length.

Paper shape: the default epoch is at or near the best for most mixes;
halving/doubling moves performance only slightly.
"""

from repro.experiments import figures


def test_fig15_epoch(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure15, rounds=1, iterations=1)
    save_exhibit("figure15", result.format())
    short, default, long_ = result.rows[-1][1:]
    assert abs(default - 1.0) < 1e-9
    assert 0.8 < short < 1.2, "epoch sweep must stay in a narrow band"
    assert 0.8 < long_ < 1.2
