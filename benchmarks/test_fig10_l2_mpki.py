"""Figure 10: relative L2 data-cache MPKI over POM-TLB.

Paper shape: CSALT never inflates the geomean L2 MPKI and reduces it on
the contended mixes (ccomp up to ~30% at full scale).
"""

from repro.experiments import figures


def test_fig10_l2_mpki(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure10, rounds=1, iterations=1)
    save_exhibit("figure10", result.format())
    geomean = result.rows[-1]
    assert geomean[1] == 1.0 or abs(geomean[1] - 1.0) < 1e-9
    assert geomean[3] < 1.1, "CSALT-CD must not blow up L2 MPKI"
