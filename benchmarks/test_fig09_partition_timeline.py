"""Figure 9: TLB way-share over time for the connected-component deep dive.

Paper shape: the partition adapts across the workload's process/generate
phases - the TLB share is neither pinned at the floor nor the ceiling,
and decisions exist for both L2 and L3 caches.
"""

from repro.experiments import figures


def test_fig09_partition_timeline(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure9, rounds=1, iterations=1)
    save_exhibit("figure09", result.format())
    assert result.l2_series, "L2 partition decisions must be recorded"
    assert result.l3_series, "L3 partition decisions must be recorded"
    l3_shares = [share for _, share in result.l3_series]
    assert all(0.0 < s < 1.0 for s in l3_shares)
    assert len(result.l3_series) >= 3, "multiple epochs must have elapsed"
