"""Ablation: partition only L2, only L3, or both caches.

Shape: partitioning both levels (the paper's design) must at least match
the best single level in geomean.
"""

from repro.experiments import ablations


def test_abl_partition_levels(benchmark, save_exhibit):
    result = benchmark.pedantic(
        ablations.run_partition_levels, rounds=1, iterations=1
    )
    save_exhibit("ablation_partition_levels", result.format())
    l2_only, l3_only, both = result.rows[-1][1:]
    assert both >= min(l2_only, l3_only) - 0.02
