"""Figure 3: fraction of L2/L3 cache capacity occupied by TLB entries.

Paper shape: a large fraction of both caches holds translation entries
under POM-TLB with context switching (60% average at full scale), with
connected component the most extreme.
"""

from repro.experiments import figures


def test_fig03_occupancy(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure3, rounds=1, iterations=1)
    save_exhibit("figure03", result.format())
    by_program = {row[0]: row for row in result.rows}
    assert by_program["ccomp"][2] > 0.1, "ccomp should flood L3 with TLB lines"
    for program, l2_frac, l3_frac in result.rows:
        assert 0.0 <= l2_frac <= 1.0 and 0.0 <= l3_frac <= 1.0, program
