"""Figure 12: CSALT-CD gain in the native (non-virtualized) context.

Paper shape: gains are positive but much smaller than virtualized (5%
geomean at full scale) because native walks are cheap.
"""

from repro.experiments import figures


def test_fig12_native(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure12, rounds=1, iterations=1)
    save_exhibit("figure12", result.format())
    geomean = result.rows[-1][1]
    assert geomean > 0.95, "CSALT-CD must not lose natively"
