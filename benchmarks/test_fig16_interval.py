"""Figure 16: sensitivity to the context-switch interval.

Paper shape: CSALT-CD holds a steady gain over POM-TLB at 5/10/30 ms,
with the longest quantum slightly lower (fewer switches to mitigate).
"""

from repro.experiments import figures


def test_fig16_interval(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure16, rounds=1, iterations=1)
    save_exhibit("figure16", result.format())
    five, ten, thirty = result.rows[-1][1:]
    assert all(v > 0.95 for v in (five, ten, thirty)), (
        "CSALT-CD must not lose to POM-TLB at any interval"
    )
