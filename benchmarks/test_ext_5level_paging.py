"""Extension: five-level (LA57) paging, the paper's stated future threat.

Shape: virtualized walks get more expensive with a fifth radix level, so
the case for a large L3 TLB (and for managing its cache footprint) only
strengthens - CSALT-CD's gain must not shrink.
"""

from repro.experiments import ablations


def test_ext_5level_paging(benchmark, save_exhibit):
    result = benchmark.pedantic(
        ablations.run_five_level_paging, rounds=1, iterations=1
    )
    save_exhibit("extension_5level", result.format())
    _, walk4, walk5, gain4, gain5 = result.rows[-1]
    assert walk5 > walk4, "five-level walks must cost more"
    assert gain5 >= gain4 - 0.05, "CSALT must stay at least as relevant"
