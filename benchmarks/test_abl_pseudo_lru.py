"""Ablation: pseudo-LRU stack-position estimation (paper Section 3.4).

Shape: NRU and tree-PLRU with Kedzierski-style position estimates stay
within a few percent of true-LRU CSALT-CD.
"""

from repro.experiments import ablations


def test_abl_pseudo_lru(benchmark, save_exhibit):
    result = benchmark.pedantic(
        ablations.run_pseudo_lru, rounds=1, iterations=1
    )
    save_exhibit("ablation_pseudo_lru", result.format())
    true_lru, nru, plru, rrip = result.rows[-1][1:]
    assert abs(true_lru - 1.0) < 1e-9
    assert nru > 0.85, "NRU estimates must only cost a few percent"
    assert plru > 0.85, "BT-PLRU estimates must only cost a few percent"
    assert rrip > 0.80, "SRRIP estimates must stay in the same ballpark"
