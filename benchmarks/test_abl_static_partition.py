"""Ablation: static 50/50 split vs dynamic partitioning (paper footnote 6).

Shape: the dynamic schemes must match or beat the fixed split in geomean
- the whole point of epoch-based repartitioning.
"""

from repro.experiments import ablations


def test_abl_static_partition(benchmark, save_exhibit):
    result = benchmark.pedantic(
        ablations.run_static_vs_dynamic, rounds=1, iterations=1
    )
    save_exhibit("ablation_static", result.format())
    static, dynamic, criticality = result.rows[-1][1:]
    assert max(dynamic, criticality) >= static - 0.04
