"""Figure 8: fraction of page walks eliminated by the POM-TLB.

Paper shape: the vast majority of walks disappear (97% average at full
scale) for every TLB-pressured mix.
"""

from repro.experiments import figures


def test_fig08_walks_eliminated(benchmark, save_exhibit):
    result = benchmark.pedantic(figures.run_figure8, rounds=1, iterations=1)
    save_exhibit("figure08", result.format())
    by_mix = {row[0]: row[1] for row in result.rows}
    for mix in ("gups", "ccomp", "canneal", "pagerank", "graph500"):
        assert by_mix[mix] > 0.5, f"{mix}: POM-TLB should absorb most walks"
    assert all(0.0 <= v <= 1.0 for v in by_mix.values())
