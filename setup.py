"""Setup shim: enables legacy editable installs on offline machines.

The environment has no network and no `wheel` package, so PEP 517
editable installs fail; `pip install -e .` falls back to this shim via
`setup.py develop` when invoked with --no-use-pep517 (see README).
"""

from setuptools import setup

setup()
