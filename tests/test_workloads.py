"""Unit tests for workload generators and the mix registry."""

import itertools

import pytest

from repro.workloads.base import REGION_4K_BASE, zipf_page_sampler
from repro.workloads.mixes import MIXES, MIX_NAMES, make_mix, make_program
from repro.workloads.programs import (
    Canneal,
    ConnectedComponent,
    Graph500,
    Gups,
    PageRank,
    StreamCluster,
)

import numpy as np


def take(stream, count):
    return list(itertools.islice(stream, count))


ALL_PROGRAMS = [Gups, Graph500, PageRank, Canneal, StreamCluster,
                ConnectedComponent]


class TestCommonContract:
    @pytest.mark.parametrize("cls", ALL_PROGRAMS)
    def test_stream_is_deterministic(self, cls):
        workload = cls.scaled(0.25)
        first = take(workload.thread_stream(0, 8, seed=3), 200)
        second = take(workload.thread_stream(0, 8, seed=3), 200)
        assert first == second

    @pytest.mark.parametrize("cls", ALL_PROGRAMS)
    def test_threads_differ(self, cls):
        workload = cls.scaled(0.25)
        a = take(workload.thread_stream(0, 8, seed=3), 200)
        b = take(workload.thread_stream(1, 8, seed=3), 200)
        assert a != b

    @pytest.mark.parametrize("cls", ALL_PROGRAMS)
    def test_addresses_nonnegative_and_flagged(self, cls):
        workload = cls.scaled(0.25)
        for address, is_write in take(workload.thread_stream(0), 500):
            assert address >= 0
            assert isinstance(is_write, bool)

    @pytest.mark.parametrize("cls", ALL_PROGRAMS)
    def test_huge_region_boundary(self, cls):
        workload = cls.scaled(0.25)
        for address, _ in take(workload.thread_stream(0), 500):
            if address < workload.huge_va_limit:
                continue
            assert address >= REGION_4K_BASE or workload.huge_va_limit > 0


class TestGups:
    def test_addresses_inside_table(self):
        workload = Gups(table_bytes=1 << 22)
        for address, _ in take(workload.thread_stream(0), 1000):
            assert 0 <= address < 1 << 22

    def test_read_modify_write_pairs(self):
        workload = Gups(table_bytes=1 << 22)
        accesses = take(workload.thread_stream(0), 100)
        for read, write in zip(accesses[0::2], accesses[1::2]):
            assert read[0] == write[0]
            assert not read[1] and write[1]

    def test_huge_limit_covers_table(self):
        workload = Gups(table_bytes=1 << 22)
        assert workload.huge_va_limit == 1 << 22


class TestStreaming:
    def test_streamcluster_sequential_progress(self):
        workload = StreamCluster.scaled(0.25)
        addresses = [
            a for a, _ in take(workload.thread_stream(0), 2000)
            if a < REGION_4K_BASE + workload.points_bytes
        ]
        deltas = [b - a for a, b in zip(addresses, addresses[1:])]
        assert deltas.count(workload.stride) > len(deltas) // 2

    def test_streamcluster_thread_partitions(self):
        workload = StreamCluster.scaled(0.25)
        span = workload.points_bytes // 8
        for thread in (0, 3):
            base = REGION_4K_BASE + thread * span
            points = [
                a for a, _ in take(workload.thread_stream(thread, 8), 500)
                if a < REGION_4K_BASE + workload.points_bytes
            ]
            assert all(base <= a < base + span for a in points)

    def test_graph500_mixes_vertices_and_edges(self):
        workload = Graph500.scaled(0.25)
        addresses = [a for a, _ in take(workload.thread_stream(0), 2000)]
        vertex = [a for a in addresses if a < workload.vertex_bytes]
        edges = [a for a in addresses if a >= REGION_4K_BASE]
        assert vertex and edges
        assert len(vertex) + len(edges) == len(addresses)


class TestSharedHotSets:
    def test_zipf_permutation_shared_across_threads(self):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(2)
        sampler_a = zipf_page_sampler(rng_a, 1000, 1.0, perm_seed=7)
        sampler_b = zipf_page_sampler(rng_b, 1000, 1.0, perm_seed=7)
        # Different sampling rngs, same hot set: the most frequent items
        # must coincide.
        from collections import Counter
        top_a = {x for x, _ in Counter(sampler_a(4000)).most_common(5)}
        top_b = {x for x, _ in Counter(sampler_b(4000)).most_common(5)}
        assert top_a & top_b

    def test_ccomp_window_shared_across_threads(self):
        workload = ConnectedComponent.scaled(0.25)
        pages_a = {a >> 12 for a, _ in take(workload.thread_stream(0, 8, 5), 500)}
        pages_b = {a >> 12 for a, _ in take(workload.thread_stream(1, 8, 5), 500)}
        overlap = len(pages_a & pages_b) / max(1, min(len(pages_a), len(pages_b)))
        assert overlap > 0.5


class TestCcompPhases:
    def test_window_changes_between_phases(self):
        workload = ConnectedComponent(
            region_bytes=1 << 24, window_pages=16,
            process_accesses=100, generate_accesses=10, stray_fraction=0.0,
            root_fraction=0.0,
        )
        accesses = take(workload.thread_stream(0), 2 * (100 + 10))
        first_phase = {a >> 12 for a, _ in accesses[:100]}
        second_phase = {a >> 12 for a, _ in accesses[110:210]}
        assert first_phase != second_phase

    def test_generate_phase_writes(self):
        workload = ConnectedComponent(
            region_bytes=1 << 24, window_pages=16,
            process_accesses=10, generate_accesses=50, stray_fraction=0.0,
            write_fraction=0.0, root_fraction=0.0,
        )
        accesses = take(workload.thread_stream(0), 60)
        assert all(w for _, w in accesses[10:60])


class TestRegistry:
    def test_mix_names_match_paper_order(self):
        assert MIX_NAMES[0] == "canneal"
        assert "graph500_gups" in MIX_NAMES
        assert len(MIX_NAMES) == 10

    def test_single_name_means_two_instances(self):
        workloads = make_mix("gups")
        assert len(workloads) == 2
        assert all(w.name == "gups" for w in workloads)

    def test_hetero_mix(self):
        vm1, vm2 = make_mix("can_ccomp")
        assert vm1.name == "canneal"
        assert vm2.name == "ccomp"

    def test_contexts_replicate_pair(self):
        workloads = make_mix("can_ccomp", contexts=4)
        assert [w.name for w in workloads] == [
            "canneal", "ccomp", "canneal", "ccomp",
        ]

    def test_one_context(self):
        workloads = make_mix("can_ccomp", contexts=1)
        assert [w.name for w in workloads] == ["canneal"]

    def test_scale_passes_through(self):
        small = make_mix("gups", scale=0.25)[0]
        full = make_mix("gups")[0]
        assert small.table_bytes < full.table_bytes

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            make_program("doom")
        with pytest.raises(ValueError):
            make_mix("doom")
        with pytest.raises(ValueError):
            make_mix("gups", contexts=0)

    def test_all_mixes_buildable(self):
        for name in MIXES:
            workloads = make_mix(name, scale=0.25)
            assert len(workloads) == 2
