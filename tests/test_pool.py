"""Campaign pool: dedup, resume, fault isolation, retry, parallel workers."""

import os

import pytest

from repro.core.schemes import Scheme
from repro.experiments import runner
from repro.experiments.pool import (
    CampaignInterrupted,
    dedupe_signatures,
    run_campaign,
)
from repro.experiments.store import ResultStore

TINY = dict(total_accesses=1_500)


@pytest.fixture(autouse=True)
def fresh_runner():
    runner.clear_cache()
    runner.set_store(None)
    yield
    runner.clear_cache()
    runner.set_store(None)


def tiny_grid(mixes=("gups", "canneal"), schemes=(Scheme.POM_TLB,)):
    return [
        runner.point_signature(mix, scheme, **TINY)
        for mix in mixes
        for scheme in schemes
    ]


class TestDedup:
    def test_duplicates_collapse(self):
        grid = tiny_grid() + tiny_grid()
        assert len(dedupe_signatures(grid)) == len(tiny_grid())

    def test_order_preserved(self):
        grid = tiny_grid()
        assert dedupe_signatures(list(reversed(grid))) == list(reversed(grid))


class TestInlineCampaign:
    def test_simulates_and_seeds_cache(self):
        summary = run_campaign(tiny_grid())
        assert summary.total == 2
        assert summary.simulated == 2
        assert summary.ok
        assert runner.cache_size() == 2

    def test_cached_points_reused(self):
        runner.run_point("gups", Scheme.POM_TLB, **TINY)
        summary = run_campaign(tiny_grid())
        assert summary.reused == 1
        assert summary.simulated == 1

    def test_store_resume_skips_persisted(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        run_campaign(tiny_grid(), store=store)
        assert len(store) == 2
        runner.clear_cache()

        def boom(*args, **kwargs):
            raise AssertionError("resume should not re-simulate")

        monkeypatch.setattr(runner, "run_simulation", boom)
        summary = run_campaign(tiny_grid(), store=store, resume=True)
        assert summary.loaded == 2
        assert summary.simulated == 0

    def test_fault_injection_continues_campaign(self, monkeypatch):
        real = runner.run_simulation

        def flaky(config, workloads, **kwargs):
            if kwargs.get("workload_name") == "canneal":
                raise RuntimeError("injected fault")
            return real(config, workloads, **kwargs)

        monkeypatch.setattr(runner, "run_simulation", flaky)
        summary = run_campaign(tiny_grid())
        assert summary.simulated == 1
        assert len(summary.failures) == 1
        assert "injected fault" in summary.failures[0].error
        # The failed point is poisoned: exhibits fail fast, not slow.
        with pytest.raises(runner.PointFailedError):
            runner.run_point("canneal", Scheme.POM_TLB, **TINY)
        # The healthy point is untouched.
        assert runner.run_point("gups", Scheme.POM_TLB, **TINY)

    def test_progress_messages(self):
        messages = []
        run_campaign(tiny_grid(), progress=messages.append)
        assert any("simulated" in message for message in messages)


class TestParallelCampaign:
    def test_two_workers_complete_grid(self, tmp_path):
        store = ResultStore(tmp_path)
        summary = run_campaign(tiny_grid(), jobs=2, store=store)
        assert summary.simulated == 2
        assert summary.ok
        assert len(store) == 2
        # Parent can now render from memory without touching workers.
        assert runner.cache_size() == 2

    def test_worker_results_equal_inline(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(tiny_grid(mixes=("gups",)), jobs=2, store=store)
        parallel = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        runner.clear_cache()
        runner.set_store(None)
        inline = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        parallel_dict = parallel.to_dict()
        inline_dict = inline.to_dict()
        for extras in (parallel_dict["extra"], inline_dict["extra"]):
            for key in [k for k in extras if k.startswith("host_")]:
                extras.pop(key)
        assert parallel_dict == inline_dict

    def test_worker_exception_fails_point_without_retry(self, monkeypatch):
        real = runner.run_simulation

        def flaky(config, workloads, **kwargs):
            if kwargs.get("workload_name") == "canneal":
                raise RuntimeError("injected fault")
            return real(config, workloads, **kwargs)

        # Workers are forked, so the monkeypatch propagates to them.
        monkeypatch.setattr(runner, "run_simulation", flaky)
        summary = run_campaign(tiny_grid(), jobs=2, backoff=0.0)
        assert summary.simulated == 1
        assert len(summary.failures) == 1
        assert summary.failures[0].attempts == 1
        assert "injected fault" in summary.failures[0].error

    def test_killed_worker_retries_then_fails(self, monkeypatch):
        real = runner.run_simulation

        def crashing(config, workloads, **kwargs):
            if kwargs.get("workload_name") == "canneal":
                os._exit(17)  # simulate an OOM kill: no traceback, no message
            return real(config, workloads, **kwargs)

        monkeypatch.setattr(runner, "run_simulation", crashing)
        summary = run_campaign(tiny_grid(), jobs=2, retries=1, backoff=0.0)
        assert summary.simulated == 1
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert failure.attempts == 2  # first try + one retry
        assert "worker died" in failure.error

    def test_transient_crash_recovers_on_retry(self, tmp_path, monkeypatch):
        marker = tmp_path / "crashed-once"
        real = runner.run_simulation

        def crash_once(config, workloads, **kwargs):
            if kwargs.get("workload_name") == "canneal" and not marker.exists():
                marker.write_text("x")
                os._exit(17)
            return real(config, workloads, **kwargs)

        monkeypatch.setattr(runner, "run_simulation", crash_once)
        summary = run_campaign(tiny_grid(), jobs=2, retries=2, backoff=0.0)
        assert summary.ok
        assert summary.simulated == 2

    def test_timeout_retries_point(self, monkeypatch):
        import time as time_module

        real = runner.run_simulation

        def hanging(config, workloads, **kwargs):
            if kwargs.get("workload_name") == "canneal":
                time_module.sleep(60)
            return real(config, workloads, **kwargs)

        monkeypatch.setattr(runner, "run_simulation", hanging)
        summary = run_campaign(
            tiny_grid(), jobs=2, timeout=1.0, retries=0, backoff=0.0,
        )
        assert summary.simulated == 1
        assert len(summary.failures) == 1
        assert "timed out" in summary.failures[0].error


class TestInterrupt:
    def test_inline_interrupt_persists_completed(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        real = runner.run_simulation
        calls = []

        def interrupt_second(config, workloads, **kwargs):
            calls.append(kwargs.get("workload_name"))
            if len(calls) == 2:
                raise KeyboardInterrupt
            return real(config, workloads, **kwargs)

        monkeypatch.setattr(runner, "run_simulation", interrupt_second)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                tiny_grid(mixes=("gups", "canneal", "pagerank")), store=store
            )
        assert len(store) == 1  # the completed point survived

        # Resume: only the missing points are simulated.
        monkeypatch.setattr(runner, "run_simulation", real)
        runner.clear_cache()
        summary = run_campaign(
            tiny_grid(mixes=("gups", "canneal", "pagerank")),
            store=store, resume=True,
        )
        assert summary.loaded == 1
        assert summary.simulated == 2
        assert summary.ok

    def test_campaign_interrupted_is_keyboard_interrupt(self):
        assert issubclass(CampaignInterrupted, KeyboardInterrupt)


class TestWorkerCheckpoints:
    """checkpoint_every: a killed worker's retry resumes mid-simulation."""

    def test_retry_restores_from_worker_checkpoint(self, tmp_path, monkeypatch):
        from repro.checkpoint import list_checkpoints
        from repro.experiments.pool import _point_checkpoint_dir
        from repro.experiments.store import strip_host_fields

        signature = runner.point_signature(
            "gups", Scheme.POM_TLB, total_accesses=1_500
        )
        clean = runner.run_point(**runner.point_from_signature(signature))
        expected = strip_host_fields(clean.to_dict())
        runner.clear_cache()

        real_run_point = runner.run_point
        died_marker = tmp_path / "died-once"
        restored_marker = tmp_path / "restored-from"

        def dies_after_first_simulation(**kwargs):
            result = real_run_point(**kwargs)
            if kwargs.get("checkpoint_dir") and not died_marker.exists():
                # Simulate a crash after checkpointing but before the
                # result reaches the parent: snapshots stay on disk.
                died_marker.touch()
                os._exit(1)
            restored = result.extra.get("host_restored_from")
            if restored is not None:
                restored_marker.write_text(restored)
            return result

        monkeypatch.setattr(runner, "run_point", dies_after_first_simulation)
        store = ResultStore(tmp_path / "store")
        summary = run_campaign(
            [signature], jobs=2, store=store, resume=False,
            retries=2, backoff=0.01, checkpoint_every=500,
        )
        assert summary.ok
        assert summary.simulated == 1
        stored = store.load(signature)
        assert strip_host_fields(stored.to_dict()) == expected
        # The retry resumed from the dead worker's snapshot (the store
        # strips host_* run-control fields, so the worker recorded it)...
        assert died_marker.exists()
        assert "ckpt-" in restored_marker.read_text()
        # ...and the completed point's snapshots were cleaned up.
        ckpt_dir = _point_checkpoint_dir(store.root, signature)
        assert not list_checkpoints(ckpt_dir)
