"""Unit tests for address arithmetic (repro.mem.address)."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import (
    CACHE_LINE_BYTES,
    PAGE_2M,
    PAGE_2M_BITS,
    PAGE_4K,
    PAGE_4K_BITS,
    Asid,
    KERNEL_ASID,
    line_address,
    line_number,
    page_base,
    page_number,
    page_offset,
    radix_index,
)

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestLineMath:
    def test_line_address_aligns_down(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 64
        assert line_address(130) == 128

    def test_line_number(self):
        assert line_number(0) == 0
        assert line_number(64) == 1
        assert line_number(64 * 10 + 3) == 10

    @given(addresses)
    def test_line_address_idempotent(self, address):
        aligned = line_address(address)
        assert aligned % CACHE_LINE_BYTES == 0
        assert line_address(aligned) == aligned
        assert aligned <= address < aligned + CACHE_LINE_BYTES


class TestPageMath:
    def test_page_number_4k(self):
        assert page_number(0) == 0
        assert page_number(PAGE_4K) == 1
        assert page_number(PAGE_4K - 1) == 0

    def test_page_number_2m(self):
        assert page_number(PAGE_2M, PAGE_2M_BITS) == 1
        assert page_number(PAGE_2M - 1, PAGE_2M_BITS) == 0

    @given(addresses, st.sampled_from([PAGE_4K_BITS, PAGE_2M_BITS]))
    def test_base_plus_offset_reconstructs(self, address, bits):
        assert page_base(address, bits) + page_offset(address, bits) == address

    @given(addresses)
    def test_offset_bounded(self, address):
        assert 0 <= page_offset(address) < PAGE_4K


class TestRadixIndex:
    def test_level_bounds(self):
        with pytest.raises(ValueError):
            radix_index(0, 0)
        with pytest.raises(ValueError):
            radix_index(0, 6)
        # Level 5 is valid (Intel LA57 five-level paging).
        assert radix_index(7 << (12 + 4 * 9), 5) == 7

    def test_level1_is_low_bits(self):
        # Level 1 indexes VA bits 12..20.
        assert radix_index(0x1000, 1) == 1
        assert radix_index(0x200000, 1) == 0
        assert radix_index(0x200000, 2) == 1

    def test_level4_is_top_bits(self):
        virtual = 5 << (PAGE_4K_BITS + 27)
        assert radix_index(virtual, 4) == 5

    @given(addresses)
    def test_indices_reconstruct_page_number(self, address):
        vpn = 0
        for level in (4, 3, 2, 1):
            vpn = (vpn << 9) | radix_index(address, level)
        assert vpn == page_number(address)

    @given(addresses, st.integers(min_value=1, max_value=4))
    def test_index_in_node_range(self, address, level):
        assert 0 <= radix_index(address, level) < 512


class TestAsid:
    def test_equality_and_hash(self):
        assert Asid(1, 2) == Asid(1, 2)
        assert Asid(1, 2) != Asid(2, 1)
        assert len({Asid(0), Asid(0), Asid(1)}) == 2

    def test_default_process(self):
        assert Asid(3).process_id == 0

    def test_str(self):
        assert str(Asid(1, 2)) == "vm1.p2"

    def test_kernel_asid_is_distinct(self):
        assert KERNEL_ASID != Asid(0, 0)

    def test_tuple_behaviour(self):
        vm_id, process_id = Asid(7, 9)
        assert (vm_id, process_id) == (7, 9)
