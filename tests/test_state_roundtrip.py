"""Property: ``load_state(state_dict())`` is the identity for every
registered component — and for a whole freshly-built System.

A fresh instance loaded from a dump must itself dump the same state
(canonical form), otherwise a restore would silently diverge from the
run that produced the checkpoint.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schemes import Scheme
from repro.mem.address import PAGE_4K_BITS, Asid
from repro.mem.cache import Cache, LineKind
from repro.mem.dram import DDR4_2133, DramChannel
from repro.sim.config import small_config
from repro.sim.engine import build_contexts, run_simulation
from repro.sim.scheduler import ContextScheduler
from repro.sim.system import System
from repro.tlb.pom_tlb import PomTlb
from repro.tlb.tlb import Tlb, TlbEntry
from repro.tlb.tsb import Tsb
from repro.vm.mmu_cache import PagingStructureCache, PscConfig
from repro.workloads.mixes import make_mix

addresses = st.integers(min_value=0, max_value=(1 << 36) - 1)
asids = st.builds(Asid, st.integers(0, 3), st.integers(0, 3))

REPLACEMENTS = ["lru", "nru", "plru", "rrip"]


def exercised_system(replacement="lru", accesses=1_200, seed=3):
    """A small system with real traffic through every structure."""
    config = small_config(
        scheme=Scheme.CSALT_CD, cores=2, contexts_per_core=2,
        replacement=replacement,
    )
    system = System(config)
    per_core = build_contexts(
        system, make_mix("gups", config.num_vms, scale=0.25), seed=seed
    )
    scheduler = ContextScheduler(per_core, config.switch_interval_cycles)
    executed = 0
    while executed < accesses:
        for core_id in range(config.cores):
            context = scheduler.current(core_id)
            for _ in range(4):
                va, is_write = next(context.stream)
                context.ensure_mapped(va)
                system.access(core_id, context.asid, va, is_write)
            context.consumed += 4
            scheduler.maybe_switch(
                core_id, system.cores[core_id].stats.cycles
            )
        executed += 4 * config.cores
    return config, system, scheduler


class TestSystemRoundtrip:
    @pytest.mark.parametrize("replacement", REPLACEMENTS)
    def test_fresh_system_reproduces_state(self, replacement):
        config, system, _ = exercised_system(replacement)
        state = system.state_dict()
        clone = System(config)
        clone.load_state(state)
        assert clone.state_dict() == state

    def test_scheduler_roundtrip(self):
        config, _, scheduler = exercised_system()
        state = scheduler.state_dict()
        fresh_system = System(config)
        fresh = ContextScheduler(
            build_contexts(
                fresh_system,
                make_mix("gups", config.num_vms, scale=0.25),
                seed=3,
            ),
            config.switch_interval_cycles,
        )
        fresh.load_state(state)
        assert fresh.state_dict() == state

    def test_load_rejects_wrong_shape(self):
        config, system, _ = exercised_system()
        state = system.state_dict()
        other = System(small_config(
            scheme=Scheme.CSALT_CD, cores=4, contexts_per_core=2
        ))
        with pytest.raises(ValueError):
            other.load_state(state)


class TestComponentRoundtrip:
    """Each structure individually, driven by hypothesis-shaped traffic."""

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(addresses, st.booleans(), st.booleans()),
                    min_size=1, max_size=120))
    def test_cache_roundtrip_all_policies(self, accesses):
        for replacement in REPLACEMENTS:
            cache = Cache("l2", 64 * 1024, 4, latency=12,
                          policy=replacement)
            for address, is_tlb, is_write in accesses:
                kind = LineKind.TLB if is_tlb else LineKind.DATA
                if not cache.lookup(address, kind, is_write=is_write):
                    cache.fill(address, kind, dirty=is_write)
            state = cache.state_dict()
            clone = Cache("l2", 64 * 1024, 4, latency=12,
                          policy=replacement)
            clone.load_state(state)
            assert clone.state_dict() == state

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(asids, addresses), min_size=1, max_size=80))
    def test_tlb_roundtrip(self, inserts):
        tlb = Tlb("l2tlb", 96, 12, 17)
        for asid, va in inserts:
            tlb.insert(asid, va, TlbEntry(va >> 12, PAGE_4K_BITS))
        state = tlb.state_dict()
        clone = Tlb("l2tlb", 96, 12, 17)
        clone.load_state(state)
        assert clone.state_dict() == state

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(asids, addresses), min_size=1, max_size=80))
    def test_pom_tlb_roundtrip(self, inserts):
        pom = PomTlb(size_bytes=1 << 20)
        for asid, va in inserts:
            pom.insert(asid, va, TlbEntry(va >> 12, PAGE_4K_BITS))
        state = pom.state_dict()
        clone = PomTlb(size_bytes=1 << 20)
        clone.load_state(state)
        assert clone.state_dict() == state

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(asids, addresses), min_size=1, max_size=60))
    def test_psc_roundtrip(self, touches):
        psc = PagingStructureCache(PscConfig())
        for asid, va in touches:
            psc.probe(asid, va)
            psc.install(asid, va, 3)
        state = psc.state_dict()
        clone = PagingStructureCache(PscConfig())
        clone.load_state(state)
        assert clone.state_dict() == state

    @settings(max_examples=10, deadline=None)
    @given(st.lists(addresses, min_size=1, max_size=60))
    def test_dram_roundtrip(self, reads):
        channel = DramChannel(DDR4_2133)
        for address in reads:
            channel.access(address)
        state = channel.state_dict()
        clone = DramChannel(DDR4_2133)
        clone.load_state(state)
        assert clone.state_dict() == state

    def test_geometry_mismatch_rejected(self):
        cache = Cache("l2", 64 * 1024, 4, latency=12)
        bigger = Cache("l2", 128 * 1024, 4, latency=12)
        with pytest.raises(ValueError):
            bigger.load_state(cache.state_dict())

    def test_tsb_from_state_skips_allocator(self):
        tsb = Tsb("guest-tsb", base_address=0x7000_0000, num_entries=1024)
        for vpn in range(50):
            tsb.insert(
                Asid(vm_id=0, process_id=0),
                vpn << PAGE_4K_BITS,
                TlbEntry(vpn + 7, PAGE_4K_BITS),
            )
        state = tsb.state_dict()
        clone = Tsb.from_state(state)
        assert clone.base_address == tsb.base_address
        assert clone.state_dict() == state


class TestRestoredRunEquivalence:
    """ISSUE satellite: restored+continued == uninterrupted on a tier-1
    quick config (the heavier two-policy oracle lives in
    test_checkpoint.py)."""

    def test_quick_config(self, tmp_path):
        from repro.checkpoint import list_checkpoints
        from repro.experiments.store import strip_host_fields

        config = small_config(
            scheme=Scheme.POM_TLB, cores=2, contexts_per_core=2
        )
        mix = lambda: make_mix("canneal", config.num_vms, scale=0.25)
        baseline = run_simulation(
            config, mix(), total_accesses=3_000, seed=11
        )
        run_simulation(
            config, mix(), total_accesses=3_000, seed=11,
            checkpoint_every=1_000, checkpoint_dir=tmp_path,
        )
        resumed = run_simulation(
            config, mix(), total_accesses=3_000, seed=11,
            checkpoint_dir=tmp_path,
            restore=list_checkpoints(tmp_path)[0],
        )
        assert strip_host_fields(resumed.to_dict()) == strip_host_fields(
            baseline.to_dict()
        )
