"""Tests for the telemetry subsystem: tracer, metrics, profiler, wiring."""

import json

import pytest

from repro.core.schemes import Scheme
from repro.sim.config import small_config
from repro.sim.engine import run_simulation
from repro.sim.system import System
from repro.telemetry import (
    EVENT_PARTITION,
    HOST_PID,
    EVENT_POM_LOOKUP,
    EVENT_SHOOTDOWN,
    EVENT_SWITCH,
    EVENT_TLB_MISS,
    EVENT_WALK,
    EventTracer,
    HostProfiler,
    MetricsRegistry,
    Telemetry,
    TraceEvent,
    chrome_trace,
    host_spans_to_events,
    read_events,
    summarize_events,
    write_chrome_trace,
)
from repro.workloads.mixes import make_mix


# ----------------------------------------------------------------------
# EventTracer
# ----------------------------------------------------------------------
class TestEventTracer:
    def test_emit_and_iterate(self):
        tracer = EventTracer()
        tracer.emit("walk", 100.0, core=2, duration=50.0, refs=4)
        tracer.emit("tlb.miss", 150.0, core=2, level="l2")
        events = list(tracer)
        assert len(events) == 2
        assert events[0].name == "walk"
        assert events[0].duration == 50.0
        assert events[0].args == {"refs": 4}
        assert events[1].args["level"] == "l2"

    def test_ring_drops_oldest(self):
        tracer = EventTracer(capacity=3)
        for i in range(10):
            tracer.emit("e", float(i))
        assert len(tracer) == 3
        assert tracer.emitted == 10
        assert tracer.dropped == 7
        assert [event.cycles for event in tracer] == [7.0, 8.0, 9.0]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_clear(self):
        tracer = EventTracer()
        tracer.emit("e", 1.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0

    def test_jsonl_round_trip(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("walk", 10.0, core=1, duration=42.0, refs=3,
                    virtualized=True)
        tracer.emit("sched.switch", 20.0, core=0, context=1)
        path = str(tmp_path / "t.jsonl")
        assert tracer.write_jsonl(path) == 2
        events = read_events(path)
        assert len(events) == 2
        assert events[0].name == "walk"
        assert events[0].cycles == 10.0
        assert events[0].duration == 42.0
        assert events[0].args == {"refs": 3, "virtualized": True}
        assert events[1].core == 0

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_events(str(path))

    def test_read_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"cycles": 3}\n')
        with pytest.raises(ValueError, match="missing"):
            read_events(str(path))

    def test_chrome_export(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("walk", 10.0, core=1, duration=42.0)
        tracer.emit("tlb.shootdown", 99.0, dropped=2)
        document = tracer.to_chrome()
        assert "traceEvents" in document
        slices = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        instants = [e for e in document["traceEvents"] if e.get("ph") == "i"]
        names = [e for e in document["traceEvents"] if e.get("ph") == "M"]
        assert len(slices) == 1 and slices[0]["dur"] == 42.0
        assert len(instants) == 1
        assert {m["args"]["name"] for m in names} == {"core 1", "system"}
        path = str(tmp_path / "c.json")
        tracer.write_chrome(path)
        with open(path) as handle:
            assert json.load(handle) == json.loads(json.dumps(document))


class TestEventTracerDropAccounting:
    """Drop accounting under budget downsampling (docs/budgets.md)."""

    def test_downsampling_counts_as_dropped(self):
        tracer = EventTracer()
        tracer.downsample = 8
        for i in range(80):
            tracer.emit("e", float(i))
        assert tracer.emitted == 80
        assert len(tracer) == 10          # every 8th survives
        assert tracer.downsampled == 70
        assert tracer.dropped == 70       # ring never overflowed

    def test_accounting_invariant_with_ring_and_downsampling(self):
        tracer = EventTracer(capacity=4)
        tracer.downsample = 3
        for i in range(60):
            tracer.emit("e", float(i))
        ring_drops = tracer.dropped - tracer.downsampled
        assert ring_drops >= 0
        assert tracer.downsampled + ring_drops + len(tracer) == tracer.emitted

    def test_budget_events_bypass_downsampling(self):
        tracer = EventTracer()
        tracer.downsample = 1000
        for i in range(10):
            tracer.emit("budget.soft", float(i))
            tracer.emit("plain", float(i))
        names = [event.name for event in tracer]
        assert names.count("budget.soft") == 10

    def test_dropped_survives_jsonl_round_trip(self, tmp_path):
        tracer = EventTracer()
        tracer.downsample = 4
        for i in range(40):
            tracer.emit("e", float(i))
        path = str(tmp_path / "t.jsonl")
        written = tracer.write_jsonl(path)
        assert written == len(tracer)
        # `repro stats` summarises exactly what was written; the dropped
        # total lives in the tracer's state, not the file.
        summary = summarize_events(read_events(path))
        assert summary.total_events == written
        state = tracer.state_dict()
        assert state["emitted"] == 40
        assert state["downsampled"] == tracer.downsampled

    def test_counters_never_go_backwards_across_restore(self):
        tracer = EventTracer()
        tracer.downsample = 2
        for i in range(20):
            tracer.emit("e", float(i))
        saved = tracer.state_dict()
        # The live tracer has advanced past the snapshot: load must not
        # rewind it.
        for i in range(10):
            tracer.emit("e", float(i))
        emitted_now, downsampled_now = tracer.emitted, tracer.downsampled
        tracer.load_state(saved)
        assert tracer.emitted == emitted_now
        assert tracer.downsampled == downsampled_now
        # A fresh tracer restoring the snapshot adopts it exactly.
        fresh = EventTracer()
        fresh.load_state(saved)
        assert fresh.emitted == saved["emitted"]
        assert fresh.downsampled == saved["downsampled"]

    def test_clear_resets_downsample_accounting(self):
        tracer = EventTracer()
        tracer.downsample = 2
        for i in range(10):
            tracer.emit("e", float(i))
        tracer.clear()
        assert tracer.emitted == 0
        assert tracer.downsampled == 0
        assert tracer.dropped == 0


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert registry.counter("a.b") is counter
        assert registry.to_dict() == {"a": {"b": 5}}

    def test_gauge_set_and_callback(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3.5)
        backing = {"v": 7}
        registry.gauge("cb", lambda: backing["v"])
        snapshot = registry.to_dict()
        assert snapshot["g"] == 3.5
        assert snapshot["cb"] == 7.0
        backing["v"] = 8
        assert registry.to_dict()["cb"] == 8.0

    def test_callback_gauge_rejects_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("cb", lambda: 1.0)
        with pytest.raises(RuntimeError):
            gauge.set(2.0)

    def test_histogram_log_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for value in (1, 2, 3, 100, 1000):
            hist.record(value)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["min"] == 1
        assert snapshot["max"] == 1000
        assert snapshot["mean"] == pytest.approx(1106 / 5)
        # 1 -> le_1; 2 -> le_2; 3 -> le_4; 100 -> le_128; 1000 -> le_1024
        assert snapshot["buckets"] == {
            "le_1": 1, "le_2": 1, "le_4": 1, "le_128": 1, "le_1024": 1,
        }
        assert hist.percentile(0.5) <= hist.percentile(0.99)

    def test_histogram_empty(self):
        hist = MetricsRegistry().histogram("h")
        snapshot = hist.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p95"] == 0.0

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_prefix_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="collides"):
            registry.counter("a.b.c")

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").record(5)
        registry.gauge("live", lambda: 42)
        registry.reset()
        snapshot = registry.to_dict()
        assert snapshot["c"] == 0
        assert snapshot["h"]["count"] == 0
        assert snapshot["live"] == 42.0  # callback gauges stay live

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        path = str(tmp_path / "m.json")
        registry.write_json(path, extra={"run": {"mix": "gups"}})
        with open(path) as handle:
            document = json.load(handle)
        assert document["runs"] == 1
        assert document["run"]["mix"] == "gups"


# ----------------------------------------------------------------------
# HostProfiler
# ----------------------------------------------------------------------
class TestHostProfiler:
    def test_scopes_accumulate(self):
        profiler = HostProfiler()
        for _ in range(3):
            with profiler.scope("outer"):
                with profiler.scope("inner"):
                    pass
        report = profiler.report()
        assert report["outer"]["calls"] == 3
        assert report["inner"]["calls"] == 3
        assert report["outer"]["seconds"] >= report["inner"]["seconds"]
        assert "outer" in profiler.format()

    def test_add_external(self):
        profiler = HostProfiler()
        profiler.add("engine.run", 1.5)
        assert profiler.report()["engine.run"]["seconds"] == pytest.approx(1.5)

    def test_reset(self):
        profiler = HostProfiler()
        with profiler.scope("s"):
            pass
        profiler.reset()
        assert profiler.report() == {}


# ----------------------------------------------------------------------
# Simulation wiring
# ----------------------------------------------------------------------
def run_traced(scheme=Scheme.CSALT_CD, accesses=12_000, **kwargs):
    telemetry = Telemetry.enabled(profile=True)
    config = small_config(scheme=scheme, **kwargs)
    result = run_simulation(
        config, make_mix("gups"), total_accesses=accesses, telemetry=telemetry,
    )
    return telemetry, result


class TestSimulationTelemetry:
    def test_events_emitted(self):
        telemetry, _ = run_traced()
        counts = telemetry.tracer.counts_by_name()
        assert counts.get(EVENT_TLB_MISS, 0) > 0
        assert counts.get(EVENT_POM_LOOKUP, 0) > 0
        assert counts.get(EVENT_WALK, 0) > 0
        walk = next(e for e in telemetry.tracer if e.name == EVENT_WALK)
        assert walk.duration > 0
        assert walk.args["refs"] >= 1
        assert 0 <= walk.core < 8

    def test_walk_histogram_recorded(self):
        telemetry, result = run_traced()
        hist = telemetry.metrics.get("walker.latency_cycles")
        # Cumulative over the whole run, including warmup-era walks.
        assert hist.count >= result.page_walks
        assert hist.count > 0
        assert hist.buckets()

    def test_pom_metrics_registered(self):
        telemetry, result = run_traced()
        snapshot = telemetry.metrics.to_dict()
        assert snapshot["pom"]["hits"] == result.pom_hits
        assert snapshot["pom"]["hit_latency_cycles"]["count"] >= result.pom_hits
        assert 0.0 <= snapshot["pom"]["occupancy"] <= 1.0

    def test_cache_and_dram_metrics(self):
        telemetry, _ = run_traced()
        snapshot = telemetry.metrics.to_dict()
        assert snapshot["cache"]["l3"]["hits"] >= 0
        assert snapshot["core0"]["l2"]["tlb_occupancy"] >= 0.0
        assert snapshot["dram"]["ddr"]["accesses"] > 0

    def test_partition_decisions_traced(self):
        # Tiny epoch so both L2 and L3 controllers repartition after warmup.
        telemetry, _ = run_traced(epoch_accesses=500)
        partition_events = [
            e for e in telemetry.tracer if e.name == EVENT_PARTITION
        ]
        assert partition_events
        labels = {e.args["label"] for e in partition_events}
        assert "l3" in labels
        event = partition_events[0]
        assert event.args["data_ways"] + event.args["tlb_ways"] > 0
        assert 0.0 <= event.args["tlb_fraction"] <= 1.0
        assert telemetry.metrics.to_dict()["partition"]["decisions"] > 0

    def test_context_switch_events(self):
        telemetry, result = run_traced(
            accesses=20_000, switch_interval_ms=0.05
        )
        switches = [e for e in telemetry.tracer if e.name == EVENT_SWITCH]
        assert switches
        assert result.extra["context_switches"] > 0
        assert all("vm" in e.args for e in switches)

    def test_profiler_covers_components(self):
        telemetry, _ = run_traced()
        report = telemetry.profiler.report()
        for scope in ("engine.run", "walker", "cache", "dram", "pom"):
            assert scope in report, f"missing profiler scope {scope}"

    def test_shootdown_event(self):
        from repro.mem.address import Asid

        telemetry = Telemetry.enabled()
        system = System(small_config(scheme=Scheme.POM_TLB), telemetry=telemetry)
        asid = Asid(0, 0)
        system.vms[0].ensure_mapped(0, 0x1000)
        system.access(0, asid, 0x1000, False)
        system.shootdown_page(asid, 0x1000)
        events = [e for e in telemetry.tracer if e.name == EVENT_SHOOTDOWN]
        assert len(events) == 1
        assert events[0].args["dropped"] >= 1

    def test_warmup_clears_trace_but_not_histograms(self):
        telemetry = Telemetry.enabled()
        config = small_config(scheme=Scheme.CSALT_CD)
        result = run_simulation(
            config, make_mix("gups"), total_accesses=8_000,
            telemetry=telemetry, warmup_fraction=0.5,
        )
        # Trace covers the measured region only...
        walks = [e for e in telemetry.tracer if e.name == EVENT_WALK]
        assert len(walks) == result.page_walks
        # ...but histograms keep the warmup-era walks (steady state may
        # have none at all once the POM-TLB is hot).
        hist = telemetry.metrics.get("walker.latency_cycles")
        assert hist.count >= result.page_walks
        assert hist.count > 0
        assert hist.buckets()

    def test_progress_callback(self):
        updates = []
        config = small_config(scheme=Scheme.POM_TLB)
        run_simulation(
            config, make_mix("gups"), total_accesses=5_000,
            progress=updates.append,
        )
        assert updates
        final = updates[-1]
        assert final.executed >= final.total
        assert final.accesses_per_second > 0
        assert "acc/s" in final.format()

    def test_disabled_telemetry_changes_nothing(self):
        config = small_config(scheme=Scheme.CSALT_CD)
        plain = run_simulation(config, make_mix("gups"), total_accesses=6_000)
        traced_tel = Telemetry.enabled(profile=True)
        traced = run_simulation(
            small_config(scheme=Scheme.CSALT_CD), make_mix("gups"),
            total_accesses=6_000, telemetry=traced_tel,
        )
        assert plain.ipc == pytest.approx(traced.ipc)
        assert plain.l2_tlb_misses == traced.l2_tlb_misses
        assert plain.page_walks == traced.page_walks


# ----------------------------------------------------------------------
# Trace summarization (record -> JSONL -> repro stats round trip)
# ----------------------------------------------------------------------
class TestSummarize:
    def test_round_trip_via_jsonl(self, tmp_path):
        telemetry, result = run_traced(epoch_accesses=500)
        path = str(tmp_path / "run.trace.jsonl")
        telemetry.tracer.write_jsonl(path)
        summary = summarize_events(read_events(path))
        assert summary.total_events == len(telemetry.tracer)
        assert summary.walk_count == result.page_walks
        assert summary.tlb_misses == result.l2_tlb_misses
        assert summary.pom_lookups == result.pom_hits + result.pom_misses
        assert summary.pom_hit_rate == pytest.approx(result.pom_hit_rate)
        assert summary.partition_decisions > 0
        assert "l3" in summary.final_tlb_fraction
        assert summary.walk_p50_cycles <= summary.walk_p95_cycles
        assert summary.walk_p95_cycles <= summary.walk_max_cycles
        document = json.loads(json.dumps(summary.to_dict()))
        assert document["walks"]["count"] == result.page_walks
        assert "page walks" in summary.format()

    def test_summarize_empty(self):
        summary = summarize_events([])
        assert summary.total_events == 0
        assert summary.pom_hit_rate == 0.0
        assert "events" in summary.format()

    def test_chrome_conversion_of_read_events(self, tmp_path):
        events = [
            TraceEvent("walk", 5.0, core=0, duration=10.0),
            TraceEvent("sched.switch", 7.0, core=1),
        ]
        path = str(tmp_path / "c.json")
        write_chrome_trace(events, path)
        with open(path) as handle:
            document = json.load(handle)
        phases = {e["ph"] for e in document["traceEvents"]}
        assert {"X", "i", "M"} <= phases


# ----------------------------------------------------------------------
# Histogram edge cases (empty distributions)
# ----------------------------------------------------------------------
class TestHistogramEmpty:
    def test_mean_of_empty_is_zero(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.mean == 0.0

    def test_percentile_of_empty_is_zero(self):
        hist = MetricsRegistry().histogram("empty")
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert hist.percentile(fraction) == 0.0

    def test_percentile_still_validates_fraction(self):
        hist = MetricsRegistry().histogram("empty")
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)

    def test_reset_restores_empty_behaviour(self):
        hist = MetricsRegistry().histogram("h")
        hist.record(42)
        hist.reset()
        assert hist.mean == 0.0
        assert hist.percentile(0.99) == 0.0


# ----------------------------------------------------------------------
# Profiler span recording + host track in the Chrome trace
# ----------------------------------------------------------------------
class TestProfilerSpans:
    def test_spans_off_by_default(self):
        profiler = HostProfiler()
        with profiler.scope("s"):
            pass
        assert profiler.spans == []
        assert profiler.spans_dropped == 0

    def test_spans_recorded_with_flag(self):
        profiler = HostProfiler(record_spans=True)
        with profiler.scope("outer"):
            with profiler.scope("inner"):
                pass
        spans = profiler.spans
        assert [name for name, _, _ in spans] == ["inner", "outer"]
        for _name, start, duration in spans:
            assert start >= 0.0
            assert duration >= 0.0

    def test_span_capacity_drops_oldest(self):
        profiler = HostProfiler(record_spans=True, span_capacity=2)
        for index in range(5):
            with profiler.scope(f"s{index}"):
                pass
        assert len(profiler.spans) == 2
        assert profiler.spans_dropped == 3
        assert [name for name, _, _ in profiler.spans] == ["s3", "s4"]

    def test_reset_clears_spans(self):
        profiler = HostProfiler(record_spans=True)
        with profiler.scope("s"):
            pass
        profiler.reset()
        assert profiler.spans == []
        assert profiler.spans_dropped == 0


class TestHostTrack:
    def spans(self):
        return [("engine.run", 0.0, 0.5), ("walker", 0.1, 0.2)]

    def test_host_spans_to_events(self):
        events = host_spans_to_events(self.spans())
        assert [e.name for e in events] == ["host.engine.run", "host.walker"]
        assert events[0].duration == pytest.approx(0.5e6)
        assert events[1].cycles == pytest.approx(0.1e6)

    def test_chrome_trace_routes_host_events_to_own_pid(self):
        sim = [TraceEvent("walk", 5.0, core=0, duration=10.0)]
        document = chrome_trace(sim + host_spans_to_events(self.spans()))
        records = document["traceEvents"]
        host = [r for r in records if r.get("pid") == HOST_PID
                and r["ph"] != "M"]
        assert [r["name"] for r in host] == ["engine.run", "walker"]
        assert all(r["cat"] == "host" for r in host)
        names = [r["args"].get("name") for r in records if r["ph"] == "M"]
        assert "host (wall clock)" in names

    def test_write_jsonl_appends_extra_without_evicting(self, tmp_path):
        tracer = EventTracer(capacity=2)
        tracer.emit("walk", 1.0, core=0)
        tracer.emit("walk", 2.0, core=0)
        path = str(tmp_path / "t.jsonl")
        count = tracer.write_jsonl(
            path, extra=host_spans_to_events(self.spans())
        )
        assert count == 4
        events = read_events(path)
        assert [e.name for e in events] == [
            "walk", "walk", "host.engine.run", "host.walker",
        ]

    def test_summary_counts_but_isolates_host_spans(self):
        sim = [TraceEvent("walk", 5.0, core=0, duration=10.0)]
        events = sim + host_spans_to_events(self.spans())
        summary = summarize_events(events)
        assert summary.host_spans == 2
        assert summary.walk_count == 1
        # Wall-clock microsecond timestamps must not stretch cycle spans.
        assert summary.cycle_span[0] == (5.0, 15.0)
        assert "host spans" in summary.format()
        assert ("host_spans", 2) in summary.rows()

    def test_profiled_run_exports_host_track(self, tmp_path):
        telemetry = Telemetry(
            tracer=EventTracer(),
            profiler=HostProfiler(record_spans=True),
        )
        run_simulation(
            small_config(scheme=Scheme.POM_TLB), make_mix("gups"),
            total_accesses=2000, telemetry=telemetry,
        )
        assert telemetry.profiler.spans, "engine scopes must record spans"
        path = str(tmp_path / "run.jsonl")
        telemetry.tracer.write_jsonl(
            path, extra=host_spans_to_events(telemetry.profiler.spans)
        )
        summary = summarize_events(read_events(path))
        assert summary.host_spans == len(telemetry.profiler.spans)


class TestSummaryRows:
    def test_rows_cover_core_metrics(self):
        telemetry, result = run_traced(accesses=4000)
        summary = summarize_events(list(telemetry.tracer))
        rows = dict(summary.rows())
        assert rows["events"] == summary.total_events
        assert rows["l2_tlb_misses"] == summary.tlb_misses
        assert rows["context_switches"] == summary.context_switches
