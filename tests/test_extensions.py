"""Tests for the paper-motivated extensions: LA57 five-level paging and
TLB shootdown / page-migration support."""

import pytest

from repro.core.schemes import Scheme
from repro.mem.address import Asid, PAGE_4K_BITS
from repro.sim.config import small_config
from repro.sim.system import System
from repro.vm.page_table import PageTable
from repro.vm.physical_memory import FrameAllocator, HostPhysicalMemory
from repro.vm.walker import PageWalker, VirtualMachine

A = Asid(0, 0)


def make_table(levels=5):
    return PageTable(
        FrameAllocator(base_frame=0, num_frames=1 << 20), levels=levels
    )


class TestFiveLevelPageTable:
    def test_level_validation(self):
        with pytest.raises(ValueError):
            make_table(levels=1)
        with pytest.raises(ValueError):
            make_table(levels=6)

    def test_five_level_walk_reads_five_entries(self):
        table = make_table(5)
        table.map_page(0x1000)
        addresses, translation = table.walk_addresses(0x1000)
        assert len(addresses) == 5
        assert translation is not None

    def test_57_bit_addresses_disambiguated(self):
        """Two VAs differing only in level-5 bits must map separately."""
        table = make_table(5)
        low = 0x1000
        high = 0x1000 | (3 << (12 + 4 * 9))
        frame_low = table.map_page(low).frame_base
        frame_high = table.map_page(high).frame_base
        assert frame_low != frame_high
        assert table.lookup(low).frame_base == frame_low
        assert table.lookup(high).frame_base == frame_high

    def test_node_count_grows_with_depth(self):
        four = make_table(4)
        five = make_table(5)
        four.map_page(0x1000)
        five.map_page(0x1000)
        assert five.nodes_allocated == four.nodes_allocated + 1


class TestFiveLevelWalker:
    def _setup(self, levels):
        memory = HostPhysicalMemory(num_vms=1, vm_bytes=1 << 28)
        vm = VirtualMachine(0, memory, levels=levels)
        refs = []

        def accessor(address, kind, is_write):
            refs.append(address)
            return 10

        walker = PageWalker(accessor, levels=levels)
        return vm, walker, refs

    def test_cold_2d_walk_deeper_with_five_levels(self):
        vm4, walker4, refs4 = self._setup(4)
        vm5, walker5, refs5 = self._setup(5)
        vm4.ensure_mapped(0, 0x5000)
        vm5.ensure_mapped(0, 0x5000)
        result4 = walker4.walk_virtualized(A, vm4, 0x5000)
        result5 = walker5.walk_virtualized(A, vm5, 0x5000)
        assert result5.memory_refs > result4.memory_refs

    def test_psc_still_cuts_warm_walks(self):
        vm, walker, refs = self._setup(5)
        vm.ensure_mapped(0, 0x5000)
        vm.ensure_mapped(0, 0x6000)
        walker.walk_virtualized(A, vm, 0x5000)
        warm = walker.walk_virtualized(A, vm, 0x6000)
        # PDE hit: one guest leaf read plus its host translation.
        assert warm.memory_refs <= 6

    def test_system_runs_with_five_levels(self):
        config = small_config(
            scheme=Scheme.POM_TLB, cores=1, page_table_levels=5
        )
        system = System(config)
        system.vms[0].ensure_mapped(0, 0x5000)
        system.access(0, A, 0x5123, is_write=False)
        assert system.cores[0].stats.page_walks == 1


class TestShootdown:
    def _system(self, scheme=Scheme.POM_TLB):
        system = System(small_config(scheme=scheme, cores=2))
        system.vms[0].ensure_mapped(0, 0x5000)
        return system

    def test_remap_changes_frame(self):
        system = self._system()
        table = system.vms[0].guest_table(0)
        before = table.lookup(0x5000).frame_base
        system.remap_page(A, 0x5000)
        assert table.lookup(0x5000).frame_base != before

    def test_shootdown_drops_all_tlb_copies(self):
        system = self._system()
        for core in system.cores:
            system.translate_beyond_l1(core, A, 0x5123)
        dropped = system.shootdown_page(A, 0x5123)
        # Each core held L1 and L2 entries; the POM-TLB held one.
        assert dropped >= 2 * len(system.cores) + 1
        for core in system.cores:
            assert core.l2_tlb.lookup(A, 0x5123) is None

    def test_shootdown_charges_every_core(self):
        system = self._system()
        before = [core.stats.cycles for core in system.cores]
        system.shootdown_page(A, 0x5000)
        for core, cycles in zip(system.cores, before):
            assert core.stats.cycles == cycles + System.SHOOTDOWN_CYCLES_PER_CORE

    def test_translation_after_remap_is_fresh(self):
        system = self._system()
        core = system.cores[0]
        _, old_entry = system.translate_beyond_l1(core, A, 0x5123)
        system.remap_page(A, 0x5123)
        _, new_entry = system.translate_beyond_l1(core, A, 0x5123)
        assert new_entry.frame_base != old_entry.frame_base

    def test_shootdown_without_pom(self):
        system = self._system(Scheme.CONVENTIONAL)
        core = system.cores[0]
        system.translate_beyond_l1(core, A, 0x5123)
        assert system.shootdown_page(A, 0x5123) >= 2

    def test_other_pages_unaffected(self):
        system = self._system()
        system.vms[0].ensure_mapped(0, 0x6000)
        core = system.cores[0]
        system.translate_beyond_l1(core, A, 0x5123)
        system.translate_beyond_l1(core, A, 0x6123)
        system.shootdown_page(A, 0x5123)
        assert core.l2_tlb.lookup(A, 0x6123) is not None

    def test_remap_unmapped_raises(self):
        system = self._system()
        with pytest.raises(KeyError):
            system.remap_page(A, 0xDEAD000)
