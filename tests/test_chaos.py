"""``repro chaos``: convergence to the fault-free end state, assertions."""

import json

import pytest

from repro import faults
from repro.cli import main
from repro.core.schemes import Scheme
from repro.errors import EXIT_USAGE, ChaosError
from repro.experiments import runner
from repro.experiments.chaos import run_chaos

TINY = dict(total_accesses=1_500)


@pytest.fixture(autouse=True)
def fresh_state():
    faults.disarm()
    runner.clear_cache()
    runner.set_store(None)
    yield
    faults.disarm()
    runner.clear_cache()
    runner.set_store(None)


def tiny_points():
    return [
        runner.point_signature("gups", Scheme.POM_TLB, **TINY),
        runner.point_signature("canneal", Scheme.POM_TLB, **TINY),
    ]


def smoke_plan():
    return faults.FaultPlan.from_dict({
        "name": "smoke",
        "seed": 7,
        "faults": [
            {"point": "pool.worker.crash",
             "when": {"attempt": 1, "mix_name": "gups"},
             "max_triggers": 1},
            {"point": "store.save.corrupt_byte",
             "when": {"mix_name": "canneal"},
             "max_triggers": 1},
        ],
    })


class TestConvergence:
    def test_crash_and_corruption_converge(self, tmp_path):
        report = run_chaos(
            smoke_plan(), points=tiny_points(), jobs=2, rounds=3,
            out_dir=str(tmp_path / "out"),
        )
        assert report.ok, report.problems
        assert report.injected >= 2        # both specs fired (fault log)
        assert report.store_entries == 2
        assert report.rounds[-1].converged
        assert report.rounds[0].armed and not report.rounds[-1].armed
        # The fault log is the durable cross-process ledger.
        lines = [
            json.loads(line)
            for line in (tmp_path / "out" / "faults.jsonl")
            .read_text().splitlines()
        ]
        assert {line["point"] for line in lines} == {
            "pool.worker.crash", "store.save.corrupt_byte",
        }

    def test_stores_byte_identical_after_convergence(self, tmp_path):
        out = tmp_path / "out"
        report = run_chaos(
            smoke_plan(), points=tiny_points(), jobs=2, rounds=3,
            out_dir=str(out),
        )
        assert report.ok
        baseline = sorted((out / "baseline-store").glob("*.json"))
        chaos = sorted((out / "chaos-store").glob("*.json"))
        assert [p.name for p in baseline] == [p.name for p in chaos]
        for base_path, chaos_path in zip(baseline, chaos):
            assert base_path.read_bytes() == chaos_path.read_bytes()

    def test_format_and_to_dict(self, tmp_path):
        report = run_chaos(
            smoke_plan(), points=tiny_points(), jobs=2, rounds=3,
            out_dir=str(tmp_path / "out"),
        )
        text = report.format()
        assert "converged" in text
        document = report.to_dict()
        assert document["ok"] is True
        assert document["plan"] == "smoke"


class TestAssertions:
    def test_plan_that_never_fires_fails(self, tmp_path):
        plan = faults.FaultPlan.from_dict({
            "name": "dud",
            "faults": [{"point": "pool.worker.crash",
                        "when": {"mix_name": "no-such-mix"}}],
        })
        report = run_chaos(
            plan, points=tiny_points()[:1], jobs=2, rounds=2,
            out_dir=str(tmp_path / "out"),
        )
        assert not report.ok
        assert any("never fired" in problem for problem in report.problems)
        with pytest.raises(ChaosError, match="never fired"):
            report.raise_if_failed()

    def test_unknown_exhibit_rejected(self, tmp_path):
        with pytest.raises(ChaosError, match="unknown exhibits"):
            run_chaos(
                smoke_plan(), exhibits=["figure99"],
                out_dir=str(tmp_path / "out"),
            )

    def test_empty_points_rejected(self, tmp_path):
        with pytest.raises(ChaosError, match="no evaluation points"):
            run_chaos(
                smoke_plan(), points=[], out_dir=str(tmp_path / "out"),
            )

    def test_disarmed_after_run(self, tmp_path):
        run_chaos(
            smoke_plan(), points=tiny_points()[:1], jobs=2, rounds=2,
            out_dir=str(tmp_path / "out"),
        )
        assert faults.ACTIVE is None


class TestChaosCli:
    def test_missing_plan_file_maps_to_usage_exit(self, tmp_path, capsys):
        code = main(["chaos", "--plan", str(tmp_path / "nope.json")])
        assert code == EXIT_USAGE
        assert "ConfigError" in capsys.readouterr().err

    def test_invalid_plan_rejected(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"faults": [{"point": "not.a.point"}]}
        ))
        assert main(["chaos", "--plan", str(path)]) == EXIT_USAGE

    def test_help_mentions_docs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["chaos", "--help"])
        assert excinfo.value.code == 0
        assert "faultplan json file" in capsys.readouterr().out.lower()
