"""Run differencing: input sniffing, delta math, store matching, and
the figure-7 acceptance property (speedup explained by translation CPI).
"""

import json

import pytest

from repro.analysis.diff import (
    DiffError,
    MetricDelta,
    diff_paths,
    diff_results,
    diff_stores,
    load_result_file,
)
from repro.core.schemes import Scheme
from repro.experiments import runner
from repro.experiments.store import ResultStore
from repro.sim.stats import CoreStats, SimulationResult
from repro.telemetry.accounting import CpiStack

#: Component groups that make up address translation overhead.
TRANSLATION_GROUPS = ("tlb", "pom", "tsb", "walk", "translation")


def make_result(scheme="pom-tlb", cycles=2000.0, l2_tlb_misses=100,
                cpi_stack=None):
    return SimulationResult(
        scheme=scheme,
        workload="gups",
        per_core=[CoreStats(instructions=1000, cycles=cycles,
                            memory_accesses=400,
                            l2_tlb_misses=l2_tlb_misses, page_walks=40)],
        l2_cache_misses=50,
        l2_cache_accesses=400,
        l3_cache_misses=30,
        l3_cache_accesses=50,
        l3_data_hit_rate=0.5,
        pom_hits=60,
        pom_misses=40,
        walk_mean_cycles=100.0,
        walk_count=40,
        cpi_stack=cpi_stack,
    )


class TestLoadResultFile:
    def test_raw_result_dict(self, tmp_path):
        path = tmp_path / "raw.json"
        path.write_text(json.dumps(make_result().to_dict()))
        assert load_result_file(str(path)).scheme == "pom-tlb"

    def test_run_json_document(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps(
            {"result": make_result().to_dict(), "elapsed_seconds": 1.0}
        ))
        assert load_result_file(str(path)).workload == "gups"

    def test_store_entry(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        signature = {"mix_name": "gups", "scheme": "pom-tlb"}
        store.save(signature, make_result())
        entry = next((tmp_path / "store").glob("*.json"))
        assert load_result_file(str(entry)).scheme == "pom-tlb"

    def test_rejects_non_result(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(DiffError):
            load_result_file(str(path))

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DiffError):
            load_result_file(str(path))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(DiffError):
            load_result_file(str(tmp_path / "absent.json"))


class TestMetricDelta:
    def test_improvement_on_higher_is_better(self):
        delta = MetricDelta("ipc", a=1.0, b=1.2, direction=+1,
                            tolerance=0.01)
        assert delta.verdict == "better"
        assert not delta.regressed

    def test_regression_on_lower_is_better(self):
        delta = MetricDelta("l2_tlb_mpki", a=10.0, b=12.0, direction=-1,
                            tolerance=0.01)
        assert delta.verdict == "worse"
        assert delta.regressed

    def test_within_tolerance_is_noise(self):
        delta = MetricDelta("ipc", a=1.0, b=0.995, direction=+1,
                            tolerance=0.01)
        assert delta.verdict == "~"
        assert not delta.regressed

    def test_zero_baseline_no_blowup(self):
        delta = MetricDelta("pom_hit_rate", a=0.0, b=0.5, direction=+1,
                            tolerance=0.01)
        assert delta.relative == 0.0


class TestDiffResults:
    def test_speedup_and_regression_flags(self):
        slow = make_result(cycles=4000.0)
        fast = make_result(scheme="csalt-cd", cycles=2000.0)
        diff = diff_results(slow, fast)
        assert diff.speedup == pytest.approx(2.0)
        ipc = next(m for m in diff.metrics if m.name == "ipc")
        assert ipc.verdict == "better"
        reverse = diff_results(fast, slow)
        assert any(m.name == "ipc" for m in reverse.regressions)

    def test_cpi_delta_requires_both_stacks(self):
        stack = CpiStack(scheme="pom-tlb", instructions=1000,
                         total_cycles=2000.0, components={"base": 2000.0})
        with_stack = make_result(cpi_stack=stack)
        without = make_result()
        assert diff_results(with_stack, without).cpi_delta == []
        both = diff_results(with_stack, with_stack)
        assert both.cpi_delta == [("base", 2.0, 2.0, 0.0)]

    def test_format_mentions_regressions(self):
        slow = make_result(cycles=4000.0)
        fast = make_result(scheme="csalt-cd", cycles=2000.0)
        text = diff_results(fast, slow).format()
        assert "regression" in text
        assert "speedup" in text

    def test_to_dict_round_trips_through_json(self):
        diff = diff_results(make_result(), make_result())
        assert json.loads(json.dumps(diff.to_dict()))["speedup"] == 1.0


class TestDiffStores:
    def fill(self, root, scheme, cycles):
        store = ResultStore(root)
        for mix in ("gups", "ccomp"):
            signature = runner.point_signature(
                mix, Scheme(scheme), total_accesses=1000, seed=0
            )
            store.save(signature, make_result(scheme=scheme, cycles=cycles))
        return store

    def test_cross_scheme_matching(self, tmp_path):
        self.fill(tmp_path / "a", "pom-tlb", cycles=4000.0)
        self.fill(tmp_path / "b", "csalt-cd", cycles=2000.0)
        diff = diff_stores(str(tmp_path / "a"), str(tmp_path / "b"))
        assert len(diff.points) == 2
        assert diff.only_in_a == 0 and diff.only_in_b == 0
        for _point, _ipc_a, _ipc_b, speedup in diff.points:
            assert speedup == pytest.approx(2.0)
        assert diff.regressions == []

    def test_regression_flagging(self, tmp_path):
        self.fill(tmp_path / "a", "pom-tlb", cycles=2000.0)
        self.fill(tmp_path / "b", "pom-tlb", cycles=4000.0)
        diff = diff_stores(str(tmp_path / "a"), str(tmp_path / "b"))
        assert len(diff.regressions) == 2

    def test_unmatched_entries_counted(self, tmp_path):
        self.fill(tmp_path / "a", "pom-tlb", cycles=2000.0)
        store_b = ResultStore(tmp_path / "b")
        signature = runner.point_signature(
            "gups", Scheme.CSALT_CD, total_accesses=1000, seed=0
        )
        store_b.save(signature, make_result(scheme="csalt-cd"))
        diff = diff_stores(str(tmp_path / "a"), str(tmp_path / "b"))
        assert len(diff.points) == 1
        assert diff.only_in_a == 1
        assert diff.only_in_b == 0


class TestDiffPaths:
    def test_mixed_file_and_directory_rejected(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(make_result().to_dict()))
        with pytest.raises(DiffError):
            diff_paths(str(path), str(tmp_path))

    def test_two_files_dispatch_to_run_diff(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(make_result().to_dict()))
        diff = diff_paths(str(path), str(path))
        assert diff.speedup == 1.0


class TestFigure7Acceptance:
    """The PR's acceptance property: diffing the two stored headline
    points reproduces the speedup as a CPI-stack delta dominated by the
    translation components."""

    def test_speedup_is_translation_dominated(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner.set_store(store)
        try:
            base = runner.run_point("gups", Scheme.POM_TLB,
                                    total_accesses=60_000)
            csalt = runner.run_point("gups", Scheme.CSALT_CD,
                                     total_accesses=60_000)
        finally:
            runner.set_store(None)
        # Both points persisted with their cycle ledgers...
        assert len(store) == 2
        stored_base = store.load(runner.point_signature(
            "gups", Scheme.POM_TLB, total_accesses=60_000))
        stored_csalt = store.load(runner.point_signature(
            "gups", Scheme.CSALT_CD, total_accesses=60_000))
        assert stored_base.cpi_stack is not None
        assert stored_csalt.cpi_stack is not None
        assert stored_base.cpi_stack == base.cpi_stack

        diff = diff_results(stored_base, stored_csalt)
        assert diff.speedup > 1.02, "CSALT-CD must beat POM-TLB here"
        translation = sum(
            delta for name, _, _, delta in diff.cpi_delta
            if name.partition(".")[0] in TRANSLATION_GROUPS
        )
        other = sum(
            delta for name, _, _, delta in diff.cpi_delta
            if name.partition(".")[0] not in TRANSLATION_GROUPS
        )
        assert translation < 0, "translation CPI must shrink"
        assert abs(translation) > 10 * abs(other), (
            "the speedup must come from translation components, "
            f"got translation={translation:.3f} other={other:.3f}"
        )
