"""Unit tests for the 1-D and 2-D page walkers."""

import pytest

from repro.mem.address import Asid, PAGE_2M_BITS, PAGE_4K_BITS
from repro.mem.cache import LineKind
from repro.vm.physical_memory import HostPhysicalMemory
from repro.vm.walker import PageWalker, VirtualMachine

ASID = Asid(0, 0)


class CountingAccessor:
    """Memory accessor stub that records every reference."""

    def __init__(self, latency=10):
        self.latency = latency
        self.references = []

    def __call__(self, address, kind, is_write):
        self.references.append((address, kind, is_write))
        return self.latency


@pytest.fixture
def native_setup():
    memory = HostPhysicalMemory(num_vms=1, vm_bytes=1 << 28)
    vm = VirtualMachine(0, memory, native=True)
    accessor = CountingAccessor()
    walker = PageWalker(accessor)
    return vm, walker, accessor


@pytest.fixture
def virtual_setup():
    memory = HostPhysicalMemory(num_vms=1, vm_bytes=1 << 28)
    vm = VirtualMachine(0, memory)
    accessor = CountingAccessor()
    walker = PageWalker(accessor)
    return vm, walker, accessor


class TestNativeWalk:
    def test_cold_walk_reads_four_entries(self, native_setup):
        vm, walker, accessor = native_setup
        vm.ensure_mapped(0, 0x5000)
        result = walker.walk_native(ASID, vm.guest_table(0), 0x5000)
        assert result.memory_refs == 4
        assert len(accessor.references) == 4

    def test_warm_walk_uses_psc(self, native_setup):
        vm, walker, accessor = native_setup
        vm.ensure_mapped(0, 0x5000)
        vm.ensure_mapped(0, 0x6000)
        walker.walk_native(ASID, vm.guest_table(0), 0x5000)
        result = walker.walk_native(ASID, vm.guest_table(0), 0x6000)
        assert result.memory_refs == 1  # PDE hit: leaf PTE only

    def test_translation_matches_table(self, native_setup):
        vm, walker, _ = native_setup
        vm.ensure_mapped(0, 0x5000)
        result = walker.walk_native(ASID, vm.guest_table(0), 0x5123)
        expected = vm.guest_table(0).lookup(0x5123)
        assert result.translation.frame_base == expected.frame_base

    def test_unmapped_raises(self, native_setup):
        vm, walker, _ = native_setup
        with pytest.raises(KeyError):
            walker.walk_native(ASID, vm.guest_table(0), 0xBAD000)

    def test_walk_refs_typed_tlb(self, native_setup):
        vm, walker, accessor = native_setup
        vm.ensure_mapped(0, 0x5000)
        walker.walk_native(ASID, vm.guest_table(0), 0x5000)
        assert all(kind is LineKind.TLB for _, kind, _ in accessor.references)

    def test_stats_accumulate(self, native_setup):
        vm, walker, _ = native_setup
        vm.ensure_mapped(0, 0x5000)
        walker.walk_native(ASID, vm.guest_table(0), 0x5000)
        walker.walk_native(ASID, vm.guest_table(0), 0x5000)
        assert walker.stats.walks == 2
        assert walker.stats.mean_latency > 0


class TestVirtualizedWalk:
    def test_cold_walk_reads_24_entries(self, virtual_setup):
        vm, walker, accessor = virtual_setup
        vm.ensure_mapped(0, 0x5000)
        # The very first walk must touch 4 host refs per guest pointer (4
        # guest levels) + 4 guest node reads + a final 4-ref host walk,
        # minus nested-TLB reuse of guest node frames that share a page.
        result = walker.walk_virtualized(ASID, vm, 0x5000)
        assert result.memory_refs <= 24
        assert result.memory_refs >= 8

    def test_warm_walk_much_cheaper(self, virtual_setup):
        vm, walker, _ = virtual_setup
        vm.ensure_mapped(0, 0x5000)
        vm.ensure_mapped(0, 0x6000)
        cold = walker.walk_virtualized(ASID, vm, 0x5000)
        warm = walker.walk_virtualized(ASID, vm, 0x6000)
        assert warm.memory_refs < cold.memory_refs

    def test_final_translation_is_host_frame(self, virtual_setup):
        vm, walker, _ = virtual_setup
        vm.ensure_mapped(0, 0x5000)
        result = walker.walk_virtualized(ASID, vm, 0x5678)
        guest = vm.guest_table(0).lookup(0x5678)
        host = vm.host_table.lookup(guest.frame_base << PAGE_4K_BITS)
        assert result.translation.frame_base == host.frame_base

    def test_huge_page_geometry(self, virtual_setup):
        vm, walker, _ = virtual_setup
        vm.ensure_mapped(0, 0x0, PAGE_2M_BITS)
        result = walker.walk_virtualized(ASID, vm, 0x12345)
        assert result.translation.page_bits == PAGE_2M_BITS
        physical = result.translation.physical_address(0x12345)
        assert physical % 64 == 0x12345 % 64

    def test_nested_tlb_reduces_host_refs(self, virtual_setup):
        vm, walker, accessor = virtual_setup
        vm.ensure_mapped(0, 0x5000)
        walker.walk_virtualized(ASID, vm, 0x5000)
        before = len(accessor.references)
        walker.walk_virtualized(ASID, vm, 0x5000)
        # Second identical walk: PSC cuts guest levels, nested TLB cuts
        # host walks; only a couple of refs remain.
        assert len(accessor.references) - before <= 2

    def test_public_gpa_translation(self, virtual_setup):
        vm, walker, _ = virtual_setup
        vm.ensure_mapped(0, 0x5000)
        guest = vm.guest_table(0).lookup(0x5000)
        guest_physical = guest.frame_base << PAGE_4K_BITS
        latency, refs, host_physical = walker.translate_guest_physical(
            vm, guest_physical
        )
        assert latency > 0
        host = vm.host_table.lookup(guest_physical)
        assert host_physical == host.physical_address(guest_physical)


class TestVirtualMachine:
    def test_native_has_no_host_table(self):
        memory = HostPhysicalMemory(num_vms=1, vm_bytes=1 << 24)
        vm = VirtualMachine(0, memory, native=True)
        assert vm.host_table is None
        with pytest.raises(RuntimeError):
            vm.ensure_host_mapped(0x1000)

    def test_guest_tables_per_process(self):
        memory = HostPhysicalMemory(num_vms=1, vm_bytes=1 << 24)
        vm = VirtualMachine(0, memory)
        assert vm.guest_table(0) is vm.guest_table(0)
        assert vm.guest_table(0) is not vm.guest_table(1)

    def test_ensure_mapped_builds_both_dimensions(self):
        memory = HostPhysicalMemory(num_vms=1, vm_bytes=1 << 24)
        vm = VirtualMachine(0, memory)
        vm.ensure_mapped(0, 0x7000)
        guest = vm.guest_table(0).lookup(0x7000)
        assert guest is not None
        host = vm.host_table.lookup(guest.frame_base << PAGE_4K_BITS)
        assert host is not None
