"""Unit tests for the scheme configuration enum."""

from repro.core.schemes import PartitionMode, Scheme


class TestSchemeProperties:
    def test_pom_backed_schemes(self):
        assert not Scheme.CONVENTIONAL.uses_pom_tlb
        assert not Scheme.TSB.uses_pom_tlb
        for scheme in (
            Scheme.POM_TLB, Scheme.CSALT_D, Scheme.CSALT_CD,
            Scheme.CSALT_STATIC, Scheme.DIP,
        ):
            assert scheme.uses_pom_tlb

    def test_tsb_flag(self):
        assert Scheme.TSB.uses_tsb
        assert not Scheme.POM_TLB.uses_tsb

    def test_partition_modes(self):
        assert Scheme.CSALT_D.partition_mode is PartitionMode.DYNAMIC
        assert Scheme.CSALT_CD.partition_mode is PartitionMode.CRITICALITY
        assert Scheme.CSALT_STATIC.partition_mode is PartitionMode.STATIC
        assert Scheme.POM_TLB.partition_mode is PartitionMode.NONE
        assert Scheme.DIP.partition_mode is PartitionMode.NONE

    def test_dip_flag(self):
        assert Scheme.DIP.uses_dip
        assert not Scheme.CSALT_CD.uses_dip

    def test_labels_unique(self):
        labels = {scheme.label for scheme in Scheme}
        assert len(labels) == len(list(Scheme))

    def test_values_roundtrip(self):
        for scheme in Scheme:
            assert Scheme(scheme.value) is scheme
