"""Unit tests for the part-of-memory L3 TLB."""

import pytest

from repro.mem.address import Asid, PAGE_2M_BITS, PAGE_4K_BITS
from repro.tlb.pom_tlb import PageSizePredictor, PomTlb
from repro.tlb.tlb import TlbEntry

A = Asid(0, 0)
B = Asid(1, 0)


class TestGeometry:
    def test_set_addresses_within_region(self):
        pom = PomTlb(base_address=0, size_bytes=1 << 20)
        for va in (0x0, 0x1234_5000, 0xFFFF_F000):
            for bits in (PAGE_4K_BITS, PAGE_2M_BITS):
                address = pom.set_address(A, va, bits)
                assert pom.contains_address(address)
                assert address % 64 == 0

    def test_size_halves_use_disjoint_sets(self):
        pom = PomTlb(size_bytes=1 << 20)
        small = pom.set_address(A, 0x1000, PAGE_4K_BITS)
        assert small < pom.base_address + pom.size_bytes // 2
        large = pom.set_address(A, 0x1000, PAGE_2M_BITS)
        assert large >= pom.base_address + pom.size_bytes // 2

    def test_contains_address(self):
        pom = PomTlb(base_address=0x1000, size_bytes=1 << 20)
        assert pom.contains_address(0x1000)
        assert not pom.contains_address(0xFFF)
        assert not pom.contains_address(0x1000 + (1 << 20))


class TestContents:
    def test_probe_miss_then_hit(self):
        pom = PomTlb(size_bytes=1 << 20)
        assert pom.probe(A, 0x1000, PAGE_4K_BITS) is None
        pom.insert(A, 0x1000, TlbEntry(42, PAGE_4K_BITS))
        found = pom.probe(A, 0x1000, PAGE_4K_BITS)
        assert found.frame_base == 42

    def test_asid_isolation(self):
        pom = PomTlb(size_bytes=1 << 20)
        pom.insert(A, 0x1000, TlbEntry(42, PAGE_4K_BITS))
        assert pom.probe(B, 0x1000, PAGE_4K_BITS) is None

    def test_set_lru_eviction(self):
        pom = PomTlb(size_bytes=1 << 20, entries_per_set=2)
        # Force all entries into the same set by direct indexing.
        index = pom._set_index(A, 0x1, PAGE_4K_BITS)
        colliding = []
        vpn = 0
        while len(colliding) < 3:
            if pom._set_index(A, vpn, PAGE_4K_BITS) == index:
                colliding.append(vpn)
            vpn += 1
        for i, page in enumerate(colliding):
            pom.insert(A, page << PAGE_4K_BITS, TlbEntry(i, PAGE_4K_BITS))
        assert pom.probe(A, colliding[0] << PAGE_4K_BITS, PAGE_4K_BITS) is None
        assert pom.probe(A, colliding[2] << PAGE_4K_BITS, PAGE_4K_BITS) is not None

    def test_occupancy(self):
        pom = PomTlb(size_bytes=1 << 20)
        assert pom.occupancy() == 0.0
        pom.insert(A, 0x1000, TlbEntry(42, PAGE_4K_BITS))
        assert pom.occupancy() > 0


class TestPredictor:
    def test_learns_huge_pages(self):
        predictor = PageSizePredictor()
        assert predictor.predict(A) == PAGE_4K_BITS
        for _ in range(10):
            predictor.update(A, PAGE_2M_BITS)
        assert predictor.predict(A) == PAGE_2M_BITS

    def test_per_asid(self):
        predictor = PageSizePredictor()
        for _ in range(10):
            predictor.update(A, PAGE_2M_BITS)
        assert predictor.predict(B) == PAGE_4K_BITS

    def test_lookup_order_follows_prediction(self):
        pom = PomTlb(size_bytes=1 << 20)
        assert pom.lookup_order(A) == (PAGE_4K_BITS, PAGE_2M_BITS)
        for _ in range(10):
            pom.predictor.update(A, PAGE_2M_BITS)
        assert pom.lookup_order(A) == (PAGE_2M_BITS, PAGE_4K_BITS)


class TestStats:
    def test_record_outcome(self):
        pom = PomTlb(size_bytes=1 << 20)
        pom.record_outcome(A, True, PAGE_4K_BITS, probes=1)
        pom.record_outcome(A, False, None, probes=2)
        assert pom.stats.hits == 1
        assert pom.stats.misses == 1
        assert pom.stats.first_probe_hits == 1
        assert pom.stats.second_probes == 1
        assert pom.stats.hit_rate == pytest.approx(0.5)

    def test_insert_counts(self):
        pom = PomTlb(size_bytes=1 << 20)
        pom.insert(A, 0x1000, TlbEntry(42, PAGE_4K_BITS))
        assert pom.stats.insertions == 1
