"""Fault injection: plan parsing, determinism, and every hook site."""

import json

import pytest

from repro import faults
from repro.checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.schemes import Scheme
from repro.errors import ConfigError
from repro.experiments import runner
from repro.experiments.pool import run_campaign
from repro.experiments.store import ResultStore
from repro.telemetry import EventTracer, MetricsRegistry, Telemetry
from repro.telemetry.events import EVENT_FAULT
from repro.workloads.mixes import make_program
from repro.workloads.trace import TraceFormatError, load_trace, record_trace

TINY = dict(total_accesses=1_500)


@pytest.fixture(autouse=True)
def fresh_state():
    faults.disarm()
    runner.clear_cache()
    runner.set_store(None)
    yield
    faults.disarm()
    runner.clear_cache()
    runner.set_store(None)


def plan_for(point, **spec_fields):
    return faults.FaultPlan(
        faults=[faults.FaultSpec(point=point, **spec_fields)],
        seed=3, name="test",
    )


# ----------------------------------------------------------------------
class TestPlanParsing:
    def test_round_trip(self):
        plan = plan_for("store.save.torn_write", when={"mix_name": "gups"})
        clone = faults.FaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault point"):
            faults.FaultSpec(point="store.save.nope")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown field"):
            faults.FaultSpec.from_dict({"point": "pool.worker.crash",
                                        "wen": {}})

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigError, match="probability"):
            faults.FaultSpec(point="pool.worker.crash", probability=1.5)

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"seed": 9, "faults": [{"point": "pool.worker.crash"}]}
        ))
        plan = faults.FaultPlan.from_file(path)
        assert plan.seed == 9
        assert plan.faults[0].point == "pool.worker.crash"
        assert plan.name == "plan.json"  # falls back to the filename

    def test_unreadable_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            faults.FaultPlan.from_file(tmp_path / "missing.json")


class TestInjectorSemantics:
    def test_unarmed_is_inert(self):
        assert faults.ACTIVE is None
        assert faults.get_active() is None

    def test_armed_context_manager_restores(self):
        with faults.armed(plan_for("pool.worker.crash")) as injector:
            assert faults.ACTIVE is injector
        assert faults.ACTIVE is None

    def test_max_triggers_bounds_firing(self):
        injector = faults.FaultInjector(
            plan_for("pool.worker.crash", max_triggers=2)
        )
        fired = [injector.fire("pool.worker.crash") for _ in range(5)]
        assert [spec is not None for spec in fired] == [
            True, True, False, False, False
        ]

    def test_after_skips_first_hits(self):
        injector = faults.FaultInjector(
            plan_for("pool.worker.crash", after=2, max_triggers=None)
        )
        fired = [injector.fire("pool.worker.crash") for _ in range(4)]
        assert [spec is not None for spec in fired] == [
            False, False, True, True
        ]

    def test_when_filters_on_context(self):
        injector = faults.FaultInjector(
            plan_for("pool.worker.crash", when={"attempt": 1})
        )
        assert injector.fire("pool.worker.crash", attempt=2) is None
        assert injector.fire("pool.worker.crash", attempt=1) is not None

    def test_probability_stream_is_deterministic(self):
        def pattern():
            injector = faults.FaultInjector(
                plan_for("pool.worker.crash", probability=0.5,
                         max_triggers=None)
            )
            return [
                injector.fire("pool.worker.crash") is not None
                for _ in range(32)
            ]

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)  # actually samples

    def test_fault_log_appends_jsonl(self, tmp_path):
        log = tmp_path / "faults.jsonl"
        injector = faults.FaultInjector(
            plan_for("pool.worker.crash", max_triggers=2), log_path=str(log)
        )
        injector.fire("pool.worker.crash", attempt=1)
        injector.fire("pool.worker.crash", attempt=2)
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["point"] == "pool.worker.crash"
        assert lines[1]["trigger"] == 2
        assert lines[0]["context"]["attempt"] == 1

    def test_telemetry_event_and_counter(self):
        telemetry = Telemetry(tracer=EventTracer(), metrics=MetricsRegistry())
        injector = faults.FaultInjector(
            plan_for("pool.worker.crash"), telemetry=telemetry
        )
        injector.fire("pool.worker.crash", attempt=1)
        events = [e for e in telemetry.tracer if e.name == EVENT_FAULT]
        assert len(events) == 1
        counter = telemetry.metrics.get("faults.pool.worker.crash")
        assert counter is not None and counter.value == 1
        assert injector.injected == 1
        assert injector.recent()[0]["point"] == "pool.worker.crash"

    def test_flip_byte_changes_exactly_one_byte(self):
        data = b"0123456789"
        flipped = faults.flip_byte(data)
        assert len(flipped) == len(data)
        assert sum(a != b for a, b in zip(data, flipped)) == 1

    def test_arm_from_env(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"faults": [{"point": "pool.worker.crash"}]}
        ))
        monkeypatch.setenv(faults.ENV_PLAN, str(path))
        injector = faults.arm_from_env()
        assert injector is not None
        assert faults.ACTIVE is injector


# ----------------------------------------------------------------------
class TestStoreFaultPoints:
    def _saved(self, tmp_path, plan):
        store = ResultStore(tmp_path)
        signature = runner.point_signature("gups", Scheme.POM_TLB, **TINY)
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        with faults.armed(plan):
            path = store.save(signature, result)
        return store, signature, path

    def test_torn_write_loads_as_miss(self, tmp_path):
        store, signature, path = self._saved(
            tmp_path, plan_for("store.save.torn_write")
        )
        assert path.exists()
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert store.load(signature) is None

    def test_corrupt_byte_loads_as_miss(self, tmp_path):
        store, signature, _ = self._saved(
            tmp_path, plan_for("store.save.corrupt_byte")
        )
        with pytest.warns(RuntimeWarning):
            assert store.load(signature) is None

    def test_wrong_signature_loads_as_miss(self, tmp_path):
        store, signature, _ = self._saved(
            tmp_path, plan_for("store.save.wrong_signature")
        )
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert store.load(signature) is None

    def test_save_io_error_raises_oserror(self, tmp_path):
        store = ResultStore(tmp_path)
        signature = runner.point_signature("gups", Scheme.POM_TLB, **TINY)
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        with faults.armed(plan_for("store.save.io_error")):
            with pytest.raises(OSError, match="injected"):
                store.save(signature, result)
        assert not list(tmp_path.glob(".tmp-*"))  # no orphan either way

    def test_load_io_error_degrades_to_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        signature = runner.point_signature("gups", Scheme.POM_TLB, **TINY)
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        store.save(signature, result)
        with faults.armed(plan_for("store.load.io_error")):
            with pytest.warns(RuntimeWarning, match="unreadable"):
                assert store.load(signature) is None
        assert store.load(signature) is not None  # disarmed: entry is fine


class TestCheckpointFaultPoints:
    def test_torn_payload_rejected_on_read(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        with faults.armed(plan_for("checkpoint.write.torn_payload")):
            write_checkpoint(path, {"state": list(range(64))})
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_flipped_checksum_rejected_on_read(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        with faults.armed(plan_for("checkpoint.write.flip_checksum")):
            write_checkpoint(path, {"state": list(range(64))})
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_write_io_error_keeps_previous_and_no_tmp(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        write_checkpoint(path, {"generation": 1})
        with faults.armed(plan_for("checkpoint.write.io_error")):
            with pytest.raises(CheckpointError, match="injected"):
                write_checkpoint(path, {"generation": 2})
        assert not list(tmp_path.glob("*.tmp"))  # single-finally cleanup
        document, _ = read_checkpoint(path)
        assert document == {"generation": 1}  # old snapshot survives

    def test_read_io_error_wrapped(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        write_checkpoint(path, {"generation": 1})
        with faults.armed(plan_for("checkpoint.read.io_error")):
            with pytest.raises(CheckpointError, match="injected"):
                read_checkpoint(path)


class TestTraceFaultPoints:
    def test_truncated_record_rejected_by_loader(self, tmp_path):
        path = tmp_path / "trace.npz"
        workload = make_program("gups", scale=0.25)
        with faults.armed(plan_for("trace.record.truncate_thread")):
            record_trace(workload, path, accesses_per_thread=64,
                         num_threads=2)
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(path)

    def test_load_io_error(self, tmp_path):
        path = tmp_path / "trace.npz"
        record_trace(make_program("gups", scale=0.25), path,
                     accesses_per_thread=64, num_threads=2)
        with faults.armed(plan_for("trace.load.io_error")):
            with pytest.raises(OSError, match="injected"):
                load_trace(path)
        assert load_trace(path)  # disarmed: the file itself is fine


# ----------------------------------------------------------------------
class TestPoolFaultPoints:
    def grid(self):
        return [runner.point_signature("gups", Scheme.POM_TLB, **TINY)]

    def test_worker_crash_retried_to_success(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = plan_for("pool.worker.crash", when={"attempt": 1})
        with faults.armed(plan):
            summary = run_campaign(
                self.grid(), jobs=2, store=store, retries=2,
            )
        assert summary.ok
        assert summary.simulated == 1
        assert len(store) == 1

    def test_worker_lost_result_retried(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = plan_for("pool.worker.lost_result", when={"attempt": 1})
        with faults.armed(plan):
            summary = run_campaign(
                self.grid(), jobs=2, store=store, retries=2,
            )
        assert summary.ok
        # The first worker simulated and persisted before "dying", so the
        # retry restores from the store or re-simulates; either way the
        # point completes.
        assert len(store) == 1

    def test_worker_error_fails_point_without_retry(self, tmp_path):
        store = ResultStore(tmp_path)
        with faults.armed(plan_for("pool.worker.error")):
            summary = run_campaign(
                self.grid(), jobs=2, store=store, retries=2,
            )
        assert not summary.ok
        assert summary.failures[0].attempts == 1  # deterministic: no retry
        assert "InjectedFaultError" in summary.failures[0].error

    def test_worker_hang_killed_by_timeout(self, tmp_path):
        store = ResultStore(tmp_path)
        plan = plan_for(
            "pool.worker.hang", when={"attempt": 1}, args={"seconds": 30},
        )
        with faults.armed(plan):
            summary = run_campaign(
                self.grid(), jobs=2, store=store, retries=2, timeout=1.0,
                backoff=0.05,
            )
        assert summary.ok
        assert summary.simulated == 1
