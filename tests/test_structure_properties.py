"""Cheap property tests on pure data structures (no full-system runs)."""

from hypothesis import given, settings, strategies as st

from repro.mem.address import Asid, PAGE_2M_BITS, PAGE_4K_BITS
from repro.mem.cache import DipDueler
from repro.tlb.pom_tlb import PomTlb
from repro.tlb.tlb import Tlb, TlbEntry
from repro.tlb.tsb import Tsb

addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)
asids = st.builds(Asid, st.integers(0, 3), st.integers(0, 3))
page_bits = st.sampled_from([PAGE_4K_BITS, PAGE_2M_BITS])


class TestPomTlbProperties:
    @given(asids, addresses, page_bits)
    def test_set_address_deterministic_and_in_region(self, asid, va, bits):
        pom = PomTlb(base_address=0x4000, size_bytes=1 << 20)
        first = pom.set_address(asid, va, bits)
        assert first == pom.set_address(asid, va, bits)
        assert pom.contains_address(first)
        assert first % 64 == 0

    @given(asids, addresses, page_bits)
    def test_insert_then_probe_roundtrip(self, asid, va, bits):
        pom = PomTlb(size_bytes=1 << 20)
        pom.insert(asid, va, TlbEntry(1234, bits))
        found = pom.probe(asid, va, bits)
        assert found is not None and found.frame_base == 1234

    @given(st.lists(st.tuples(asids, addresses, page_bits), max_size=60))
    def test_occupancy_bounded(self, inserts):
        pom = PomTlb(size_bytes=1 << 20)
        for asid, va, bits in inserts:
            pom.insert(asid, va, TlbEntry(1, bits))
        assert 0.0 <= pom.occupancy() <= 1.0

    @given(asids, addresses)
    def test_same_page_same_set_line(self, asid, va):
        pom = PomTlb(size_bytes=1 << 20)
        base = pom.set_address(asid, va & ~0xFFF, PAGE_4K_BITS)
        assert pom.set_address(asid, va, PAGE_4K_BITS) == base


class TestTlbProperties:
    @given(st.lists(st.tuples(asids, addresses), min_size=1, max_size=80))
    def test_capacity_never_exceeded(self, inserts):
        tlb = Tlb("t", 16, 4, 1)
        for asid, va in inserts:
            tlb.insert(asid, va, TlbEntry(7, PAGE_4K_BITS))
        held = sum(len(s) for s in tlb._sets)
        assert held <= 16
        assert all(len(s) <= 4 for s in tlb._sets)

    @given(st.lists(st.tuples(asids, addresses), min_size=1, max_size=80))
    def test_most_recent_insert_always_resident(self, inserts):
        tlb = Tlb("t", 16, 4, 1)
        for asid, va in inserts:
            tlb.insert(asid, va, TlbEntry(7, PAGE_4K_BITS))
        last_asid, last_va = inserts[-1]
        assert tlb.probe(last_asid, last_va) is not None

    @given(st.lists(st.tuples(asids, addresses), max_size=60), asids)
    def test_invalidate_asid_complete(self, inserts, victim):
        tlb = Tlb("t", 32, 4, 1)
        for asid, va in inserts:
            tlb.insert(asid, va, TlbEntry(7, PAGE_4K_BITS))
        tlb.invalidate_asid(victim)
        for tlb_set in tlb._sets:
            assert all(key[0] != victim for key in tlb_set)


class TestTsbProperties:
    @given(asids, addresses, page_bits)
    def test_insert_probe_roundtrip(self, asid, va, bits):
        tsb = Tsb("t", 0x1000, num_entries=256)
        tsb.insert(asid, va, TlbEntry(55, bits))
        found = tsb.probe(asid, va, bits)
        assert found is not None and found.frame_base == 55

    @given(asids, addresses, page_bits)
    def test_slot_addresses_stable(self, asid, va, bits):
        tsb = Tsb("t", 0x1000, num_entries=256)
        assert tsb.slot_address(asid, va, bits) == tsb.slot_address(
            asid, va, bits
        )


class TestDipProperties:
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=300))
    def test_psel_stays_in_range(self, misses):
        dueler = DipDueler()
        for set_index in misses:
            dueler.record_miss(set_index)
            dueler.insert_at_mru(set_index)
            assert 0 <= dueler.psel <= dueler.psel_max
