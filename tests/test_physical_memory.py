"""Unit and property tests for frame allocation and memory layout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.physical_memory import (
    DEFAULT_POM_TLB_BYTES,
    FrameAllocator,
    HostPhysicalMemory,
)


class TestFrameAllocator:
    def test_single_allocations_unique(self):
        allocator = FrameAllocator(base_frame=0, num_frames=256)
        frames = [allocator.alloc() for _ in range(256)]
        assert len(set(frames)) == 256
        assert all(0 <= f < 256 for f in frames)

    def test_exhaustion_raises(self):
        allocator = FrameAllocator(base_frame=0, num_frames=4)
        for _ in range(4):
            allocator.alloc()
        with pytest.raises(MemoryError):
            allocator.alloc()

    def test_base_frame_offset(self):
        allocator = FrameAllocator(base_frame=1000, num_frames=16)
        assert all(1000 <= allocator.alloc() < 1016 for _ in range(16))

    def test_contiguous_allocation(self):
        allocator = FrameAllocator(base_frame=0, num_frames=1024)
        base = allocator.alloc(contiguous=512)
        assert base == 512  # carved from the top
        other = allocator.alloc(contiguous=256)
        assert other == 256

    def test_contiguous_never_overlaps_singles(self):
        allocator = FrameAllocator(base_frame=0, num_frames=64)
        contiguous = allocator.alloc(contiguous=32)
        contiguous_range = set(range(contiguous, contiguous + 32))
        singles = {allocator.alloc() for _ in range(32)}
        assert not (singles & contiguous_range)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            FrameAllocator(0, 8).alloc(contiguous=0)

    def test_scrambling_not_sequential(self):
        allocator = FrameAllocator(base_frame=0, num_frames=4096)
        frames = [allocator.alloc() for _ in range(16)]
        deltas = {b - a for a, b in zip(frames, frames[1:])}
        assert deltas != {1}

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20)
    def test_allocation_injective(self, count):
        allocator = FrameAllocator(base_frame=0, num_frames=512)
        frames = [allocator.alloc() for _ in range(count)]
        assert len(set(frames)) == count


class TestHostPhysicalMemory:
    def test_pom_region_at_base(self):
        memory = HostPhysicalMemory(num_vms=2)
        assert memory.in_pom_tlb(0)
        assert memory.in_pom_tlb(DEFAULT_POM_TLB_BYTES - 1)
        assert not memory.in_pom_tlb(DEFAULT_POM_TLB_BYTES)

    def test_vm_slices_disjoint(self):
        memory = HostPhysicalMemory(num_vms=2, vm_bytes=1 << 20)
        frame_a = memory.allocator_for_vm(0).alloc()
        frame_b = memory.allocator_for_vm(1).alloc()
        slice_frames = (1 << 20) // 4096
        assert frame_a // slice_frames != frame_b // slice_frames

    def test_frames_above_pom_region(self):
        memory = HostPhysicalMemory(num_vms=1, vm_bytes=1 << 20)
        frame = memory.allocator_for_vm(0).alloc()
        assert HostPhysicalMemory.frame_to_address(frame) >= (
            memory.pom_tlb_bytes
        )

    def test_needs_a_vm(self):
        with pytest.raises(ValueError):
            HostPhysicalMemory(num_vms=0)

    def test_frame_to_address(self):
        assert HostPhysicalMemory.frame_to_address(3) == 3 * 4096
