"""Unit tests for CSALT-CD criticality weighting."""

import pytest

from repro.core.criticality import (
    CriticalityEstimator,
    CriticalityInputs,
    LatencyBook,
    expected_miss_latency,
)


class TestLatencyBook:
    def test_weights_are_latency_ratios(self):
        book = LatencyBook(
            cache_latency=42,
            next_level_data_latency=168.0,
            tlb_service_latency=210.0,
        )
        s_dat, s_tr = book.weights()
        assert s_dat == pytest.approx(4.0)
        assert s_tr == pytest.approx(5.0)

    def test_weights_floor_at_one(self):
        book = LatencyBook(
            cache_latency=42,
            next_level_data_latency=10.0,
            tlb_service_latency=10.0,
        )
        assert book.weights() == (1.0, 1.0)


class TestEstimator:
    def _estimator(self, inputs):
        return CriticalityEstimator(42, lambda: inputs)

    def test_tlb_weight_grows_with_pom_misses(self):
        low_miss = self._estimator(CriticalityInputs(
            next_data_latency=160.0, tlb_downstream_latency=0.0,
            pom_hit_rate=0.99, pom_latency=60.0, walk_latency=600.0,
        )).weights()
        high_miss = self._estimator(CriticalityInputs(
            next_data_latency=160.0, tlb_downstream_latency=0.0,
            pom_hit_rate=0.50, pom_latency=60.0, walk_latency=600.0,
        )).weights()
        assert high_miss[1] > low_miss[1]
        assert high_miss[0] == low_miss[0]

    def test_paper_formula_shape(self):
        """S_Tr includes the TLB service on top of the DRAM-ish data cost."""
        s_dat, s_tr = self._estimator(CriticalityInputs(
            next_data_latency=160.0, tlb_downstream_latency=0.0,
            pom_hit_rate=1.0, pom_latency=60.0, walk_latency=600.0,
        )).weights()
        assert s_dat == pytest.approx(160.0 / 42)
        assert s_tr == pytest.approx(60.0 / 42)

    def test_cache_latency_positive(self):
        with pytest.raises(ValueError):
            CriticalityEstimator(0, lambda: None)

    def test_inputs_polled_each_time(self):
        values = iter([
            CriticalityInputs(100.0, 0.0, 1.0, 50.0, 0.0),
            CriticalityInputs(400.0, 0.0, 1.0, 50.0, 0.0),
        ])
        estimator = CriticalityEstimator(42, lambda: next(values))
        first = estimator.weights()
        second = estimator.weights()
        assert second[0] > first[0]


class TestExpectedMissLatency:
    def test_interpolates(self):
        assert expected_miss_latency(0.5, 10, 110) == pytest.approx(60)

    def test_extremes(self):
        assert expected_miss_latency(1.0, 10, 110) == 10
        assert expected_miss_latency(0.0, 10, 110) == 110

    def test_hit_rate_validated(self):
        with pytest.raises(ValueError):
            expected_miss_latency(1.5, 10, 100)
