"""Unit tests for contexts and the context-switch scheduler."""

import itertools

import pytest

from repro.mem.address import Asid, PAGE_4K_BITS
from repro.sim.scheduler import Context, ContextScheduler
from repro.vm.physical_memory import HostPhysicalMemory
from repro.vm.walker import VirtualMachine


def make_context(vm_id=0, huge_limit=0, memory=None):
    memory = memory or HostPhysicalMemory(num_vms=max(1, vm_id + 1), vm_bytes=1 << 24)
    vm = VirtualMachine(vm_id, memory)
    stream = iter(itertools.cycle([(0x1000, False)]))
    return Context(
        asid=Asid(vm_id, 0), vm=vm, stream=stream, huge_va_limit=huge_limit
    )


class TestContext:
    def test_page_bits_boundary(self):
        context = make_context(huge_limit=1 << 21)
        assert context.page_bits(0) == 21
        assert context.page_bits((1 << 21) - 1) == 21
        assert context.page_bits(1 << 21) == PAGE_4K_BITS

    def test_ensure_mapped_idempotent(self):
        context = make_context()
        context.ensure_mapped(0x5000)
        pages_before = context.vm.guest_table(0).pages_mapped
        context.ensure_mapped(0x5abc)
        assert context.vm.guest_table(0).pages_mapped == pages_before

    def test_ensure_mapped_huge(self):
        context = make_context(huge_limit=1 << 21)
        context.ensure_mapped(0x1234)
        translation = context.vm.guest_table(0).lookup(0x1234)
        assert translation.page_bits == 21


def make_scheduler(cores=2, contexts_per_core=2, interval=100):
    per_core = [
        [make_context(vm_id=v) for v in range(contexts_per_core)]
        for _ in range(cores)
    ]
    return ContextScheduler(per_core, interval), per_core


class TestScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContextScheduler([[make_context()]], 0)
        with pytest.raises(ValueError):
            ContextScheduler([], 100)
        with pytest.raises(ValueError):
            ContextScheduler([[]], 100)

    def test_initial_context(self):
        scheduler, per_core = make_scheduler()
        assert scheduler.current(0) is per_core[0][0]
        assert scheduler.current(1) is per_core[1][0]

    def test_no_switch_before_quantum(self):
        scheduler, per_core = make_scheduler(interval=100)
        assert not scheduler.maybe_switch(0, 99)
        assert scheduler.current(0) is per_core[0][0]

    def test_switch_at_quantum(self):
        scheduler, per_core = make_scheduler(interval=100)
        assert scheduler.maybe_switch(0, 100)
        assert scheduler.current(0) is per_core[0][1]
        assert scheduler.switches == 1

    def test_round_robin_wraps(self):
        scheduler, per_core = make_scheduler(interval=100)
        scheduler.maybe_switch(0, 100)
        scheduler.maybe_switch(0, 200)
        assert scheduler.current(0) is per_core[0][0]

    def test_quantum_anchored_to_switch_time(self):
        scheduler, _ = make_scheduler(interval=100)
        scheduler.maybe_switch(0, 150)
        assert not scheduler.maybe_switch(0, 249)
        assert scheduler.maybe_switch(0, 250)

    def test_cores_independent(self):
        scheduler, per_core = make_scheduler(interval=100)
        scheduler.maybe_switch(0, 100)
        assert scheduler.current(1) is per_core[1][0]

    def test_single_context_never_switches(self):
        scheduler, per_core = make_scheduler(contexts_per_core=1)
        assert not scheduler.maybe_switch(0, 10_000)
        assert scheduler.switches == 0
        assert scheduler.current(0) is per_core[0][0]

    def test_num_cores(self):
        scheduler, _ = make_scheduler(cores=3)
        assert scheduler.num_cores == 3
