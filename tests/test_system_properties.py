"""Property-based tests of whole-system invariants.

These drive the full System with random access sequences and check the
invariants that hold regardless of scheme or interleaving: translations
agree with the page tables, physical frames never cross VM boundaries,
TLB contents are always consistent with the tables, and statistics add
up.
"""

from hypothesis import given, settings, strategies as st

from repro.core.schemes import Scheme
from repro.mem.address import Asid, PAGE_4K_BITS
from repro.sim.config import small_config
from repro.sim.system import System

SCHEMES = st.sampled_from([
    Scheme.CONVENTIONAL, Scheme.POM_TLB, Scheme.CSALT_CD, Scheme.TSB,
])

#: (core, vm, page, write) tuples over a small page universe.
access_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=24),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


def run_sequence(scheme, accesses, virtualized=True):
    system = System(small_config(
        scheme=scheme, cores=2, contexts_per_core=2, virtualized=virtualized
    ))
    for core, vm, page, is_write in accesses:
        asid = Asid(vm_id=vm, process_id=0)
        virtual_address = (page << PAGE_4K_BITS) | (page * 8 % 4096)
        system.vms[vm].ensure_mapped(0, virtual_address)
        system.access(core, asid, virtual_address, is_write)
    return system


class TestSystemInvariants:
    @given(SCHEMES, access_sequences)
    @settings(max_examples=25, deadline=None)
    def test_tlb_contents_match_page_tables(self, scheme, accesses):
        system = run_sequence(scheme, accesses)
        for core in system.cores:
            for tlb_set in core.l2_tlb._sets:
                for (asid, vpn, page_bits), entry in tlb_set.items():
                    vm = system.vms[asid.vm_id]
                    guest = vm.guest_table(asid.process_id).lookup(
                        vpn << page_bits
                    )
                    assert guest is not None
                    if vm.native:
                        assert entry.frame_base == guest.frame_base
                    else:
                        host = vm.host_table.lookup(
                            guest.frame_base << PAGE_4K_BITS
                        )
                        assert entry.frame_base == host.frame_base

    @given(SCHEMES, access_sequences)
    @settings(max_examples=20, deadline=None)
    def test_cycles_and_instructions_accumulate(self, scheme, accesses):
        system = run_sequence(scheme, accesses)
        per_access = 1 + system.config.nonmem_per_mem
        total_accesses = sum(
            core.stats.memory_accesses for core in system.cores
        )
        assert total_accesses == len(accesses)
        for core in system.cores:
            assert core.stats.instructions == (
                core.stats.memory_accesses * per_access
            )
            if core.stats.memory_accesses:
                assert core.stats.cycles > 0

    @given(access_sequences)
    @settings(max_examples=20, deadline=None)
    def test_frames_never_cross_vm_ranges(self, accesses):
        system = run_sequence(Scheme.POM_TLB, accesses)
        vm_frames = (
            system.config.vm_bytes // 4096
        )
        first_frame = system.config.pom_tlb_bytes // 4096
        for vm_id, vm in enumerate(system.vms):
            low = first_frame + vm_id * vm_frames
            high = low + vm_frames
            table = vm.guest_table(0)
            for virtual_page in range(32):
                guest = table.lookup(virtual_page << PAGE_4K_BITS)
                if guest is None:
                    continue
                host = vm.host_table.lookup(guest.frame_base << PAGE_4K_BITS)
                assert low <= host.frame_base < high

    @given(SCHEMES, access_sequences)
    @settings(max_examples=20, deadline=None)
    def test_walks_never_exceed_l2_tlb_misses(self, scheme, accesses):
        system = run_sequence(scheme, accesses)
        walks = sum(core.stats.page_walks for core in system.cores)
        misses = sum(core.stats.l2_tlb_misses for core in system.cores)
        assert walks <= misses

    @given(access_sequences)
    @settings(max_examples=15, deadline=None)
    def test_pom_contents_resolvable(self, accesses):
        """Every POM-TLB entry must translate to a live host frame."""
        system = run_sequence(Scheme.POM_TLB, accesses)
        for pom_set in system.pom._contents.values():
            for (asid, vpn), entry in pom_set.items():
                vm = system.vms[asid.vm_id]
                guest = vm.guest_table(asid.process_id).lookup(
                    vpn << entry.page_bits
                )
                assert guest is not None

    @given(access_sequences)
    @settings(max_examples=15, deadline=None)
    def test_deterministic_replay(self, accesses):
        first = run_sequence(Scheme.CSALT_CD, accesses)
        second = run_sequence(Scheme.CSALT_CD, accesses)
        for a, b in zip(first.cores, second.cores):
            assert a.stats.cycles == b.stats.cycles
            assert a.stats.l2_tlb_misses == b.stats.l2_tlb_misses
