"""Persistent result store: round trips, atomicity, corruption handling."""

import json

import pytest

from repro.core.schemes import Scheme
from repro.experiments import runner
from repro.experiments.store import (
    ResultStore,
    signature_key,
    strip_host_fields,
)
from repro.sim.stats import SimulationResult
from repro.telemetry import EventTracer, MetricsRegistry, Telemetry
from repro.telemetry.events import EVENT_STORE_SKIP

TINY = dict(total_accesses=1_500)


@pytest.fixture(autouse=True)
def fresh_runner():
    runner.clear_cache()
    runner.set_store(None)
    yield
    runner.clear_cache()
    runner.set_store(None)


def tiny_point():
    signature = runner.point_signature("gups", Scheme.POM_TLB, **TINY)
    result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
    return signature, result


class TestSignatureKey:
    def test_deterministic(self):
        signature = runner.point_signature("gups", Scheme.POM_TLB, **TINY)
        assert signature_key(signature) == signature_key(dict(signature))

    def test_key_order_independent(self):
        signature = runner.point_signature("gups", Scheme.POM_TLB, **TINY)
        shuffled = dict(sorted(signature.items(), reverse=True))
        assert signature_key(signature) == signature_key(shuffled)

    def test_distinct_points_distinct_keys(self):
        a = runner.point_signature("gups", Scheme.POM_TLB, **TINY)
        b = runner.point_signature("gups", Scheme.POM_TLB, contexts=1, **TINY)
        assert signature_key(a) != signature_key(b)


class TestRoundTrip:
    def test_save_load_equal_stats(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        signature, result = tiny_point()
        store.save(signature, result)
        loaded = store.load(signature)
        assert loaded is not None
        assert loaded.to_dict() == strip_host_fields(result.to_dict())
        assert loaded.ipc == pytest.approx(result.ipc)
        assert loaded.l2_tlb_mpki == pytest.approx(result.l2_tlb_mpki)

    def test_ints_survive(self, tmp_path):
        store = ResultStore(tmp_path)
        signature, result = tiny_point()
        store.save(signature, result)
        loaded = store.load(signature)
        assert isinstance(loaded.extra["seed"], int)
        assert isinstance(loaded.extra["context_switches"], int)
        assert isinstance(loaded.per_core[0].instructions, int)

    def test_host_fields_not_persisted(self, tmp_path):
        store = ResultStore(tmp_path)
        signature, result = tiny_point()
        assert "host_seconds" in result.extra
        store.save(signature, result)
        assert "host_seconds" not in store.load(signature).extra

    def test_persisted_payload_deterministic(self, tmp_path):
        """Same point simulated twice -> byte-identical store entries."""
        store = ResultStore(tmp_path)
        signature, result = tiny_point()
        path = store.save(signature, result)
        first = path.read_bytes()
        runner.clear_cache()
        _, rerun = tiny_point()
        store.save(signature, rerun)
        assert path.read_bytes() == first

    def test_missing_entry_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        signature = runner.point_signature("gups", Scheme.POM_TLB, **TINY)
        assert store.load(signature) is None
        assert not store.contains(signature)


class TestRobustness:
    def test_no_temp_files_left(self, tmp_path):
        store = ResultStore(tmp_path)
        signature, result = tiny_point()
        store.save(signature, result)
        assert not list(tmp_path.glob(".tmp-*"))
        assert len(store) == 1

    def test_corrupt_entry_is_warned_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        signature, result = tiny_point()
        path = store.save(signature, result)
        path.write_text("{ truncated")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert store.load(signature) is None

    def test_signature_mismatch_is_warned_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        signature, result = tiny_point()
        path = store.save(signature, result)
        document = json.loads(path.read_text())
        document["signature"]["seed"] = 999
        path.write_text(json.dumps(document))
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert store.load(signature) is None

    def test_schema_version_mismatch_is_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        signature, result = tiny_point()
        path = store.save(signature, result)
        document = json.loads(path.read_text())
        document["schema_version"] = 999
        path.write_text(json.dumps(document))
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert store.load(signature) is None

    def test_signatures_iterates_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        signature, result = tiny_point()
        store.save(signature, result)
        assert list(store.signatures()) == [dict(signature)]


class TestCorruptionClasses:
    """Every corruption class tolerated as a miss, and each skip counted
    in telemetry (``store.corrupt_skipped`` + a ``store.skip`` event)."""

    def _store(self, tmp_path):
        telemetry = Telemetry(tracer=EventTracer(), metrics=MetricsRegistry())
        store = ResultStore(tmp_path, telemetry=telemetry)
        signature, result = tiny_point()
        path = store.save(signature, result)
        return store, signature, path, telemetry

    def _skipped(self, telemetry):
        counter = telemetry.metrics.get("store.corrupt_skipped")
        return counter.value if counter is not None else 0

    def corrupt(self, path, how):
        if how == "truncated-json":
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        elif how == "flipped-byte":
            data = bytearray(path.read_bytes())
            data[len(data) // 2] ^= 0xFF
            path.write_bytes(bytes(data))
        elif how == "empty-file":
            path.write_bytes(b"")
        elif how == "wrong-signature":
            document = json.loads(path.read_text())
            document["signature"]["seed"] = 4242
            path.write_text(json.dumps(document))
        else:  # pragma: no cover - test bug
            raise AssertionError(how)

    @pytest.mark.parametrize(
        "how", ["truncated-json", "flipped-byte", "empty-file",
                "wrong-signature"]
    )
    def test_each_class_is_tolerated_and_counted(self, tmp_path, how):
        store, signature, path, telemetry = self._store(tmp_path)
        assert self._skipped(telemetry) == 0
        self.corrupt(path, how)
        with pytest.warns(RuntimeWarning):
            assert store.load(signature) is None
        assert self._skipped(telemetry) == 1
        skips = [e for e in telemetry.tracer if e.name == EVENT_STORE_SKIP]
        assert len(skips) == 1
        assert skips[0].args["entry"] == path.name

    def test_counter_increments_per_skip(self, tmp_path):
        store, signature, path, telemetry = self._store(tmp_path)
        self.corrupt(path, "flipped-byte")
        with pytest.warns(RuntimeWarning):
            store.load(signature)
        with pytest.warns(RuntimeWarning):
            store.load(signature)
        assert self._skipped(telemetry) == 2

    def test_healthy_load_counts_nothing(self, tmp_path):
        store, signature, _, telemetry = self._store(tmp_path)
        assert store.load(signature) is not None
        assert self._skipped(telemetry) == 0
        assert not [e for e in telemetry.tracer
                    if e.name == EVENT_STORE_SKIP]


class TestRunnerIntegration:
    def test_run_point_writes_through(self, tmp_path):
        store = ResultStore(tmp_path)
        runner.set_store(store)
        runner.run_point("gups", Scheme.POM_TLB, **TINY)
        assert len(store) == 1

    def test_run_point_loads_instead_of_simulating(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        runner.set_store(store)
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        runner.clear_cache()

        def boom(*args, **kwargs):
            raise AssertionError("should have loaded from the store")

        monkeypatch.setattr(runner, "run_simulation", boom)
        loaded = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        assert loaded.to_dict()["ipc"] == pytest.approx(result.ipc)

    def test_write_only_mode_ignores_existing(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        runner.set_store(store)
        runner.run_point("gups", Scheme.POM_TLB, **TINY)
        runner.clear_cache()
        simulated = []
        real = runner.run_simulation

        def counting(*args, **kwargs):
            simulated.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner, "run_simulation", counting)
        runner.set_store(store, consult=False)
        runner.run_point("gups", Scheme.POM_TLB, **TINY)
        assert simulated  # fresh mode re-simulates despite the store entry


class TestFromDict:
    def test_round_trip_exact(self):
        _, result = tiny_point()
        clone = SimulationResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        assert clone.l2_partition_timeline == result.l2_partition_timeline
        assert clone.occupancy_samples == result.occupancy_samples
