"""Unit tests for the sequential TLB prefetcher extension."""

import pytest

from repro.core.schemes import Scheme
from repro.mem.address import Asid
from repro.sim.config import small_config
from repro.sim.system import System
from repro.tlb.prefetch import SequentialTlbPrefetcher

A = Asid(0, 0)


class TestStreamDetector:
    def test_random_misses_suppressed(self):
        prefetcher = SequentialTlbPrefetcher()
        decisions = [prefetcher.observe_miss(A, vpn) for vpn in (5, 90, 2, 44)]
        assert not any(decisions)
        assert prefetcher.stats.suppressed == 4

    def test_stream_gains_confidence(self):
        prefetcher = SequentialTlbPrefetcher(threshold=2)
        decisions = [prefetcher.observe_miss(A, vpn) for vpn in range(6)]
        assert decisions[-1]
        assert not decisions[0]

    def test_confidence_decays_on_breaks(self):
        prefetcher = SequentialTlbPrefetcher(threshold=2)
        for vpn in range(5):
            prefetcher.observe_miss(A, vpn)
        assert prefetcher.observe_miss(A, 500) is False or True  # decayed step
        for vpn in (900, 10, 700, 33, 55):
            prefetcher.observe_miss(A, vpn)
        assert not prefetcher.observe_miss(A, 1000)

    def test_streams_tracked_per_asid(self):
        prefetcher = SequentialTlbPrefetcher(threshold=2)
        other = Asid(1, 0)
        for vpn in range(5):
            prefetcher.observe_miss(A, vpn)
            prefetcher.observe_miss(other, 1000 - vpn * 50)
        assert prefetcher.observe_miss(A, 5)
        assert not prefetcher.observe_miss(other, 0)

    def test_accuracy(self):
        prefetcher = SequentialTlbPrefetcher()
        for vpn in range(10):
            prefetcher.observe_miss(A, vpn)
        prefetcher.credit_hit()
        assert 0 < prefetcher.stats.accuracy <= 1


class TestSystemIntegration:
    def _system(self, prefetch=True):
        config = small_config(
            scheme=Scheme.POM_TLB, cores=1, tlb_prefetch=prefetch
        )
        system = System(config)
        for page in range(64):
            system.vms[0].ensure_mapped(0, page << 12)
        return system

    def _stream_pages(self, system, pages):
        core = system.cores[0]
        for page in pages:
            system.translate_beyond_l1(core, A, page << 12)

    def test_disabled_without_flag(self):
        system = self._system(prefetch=False)
        assert system.cores[0].prefetcher is None

    def test_disabled_without_pom(self):
        config = small_config(
            scheme=Scheme.CONVENTIONAL, cores=1, tlb_prefetch=True
        )
        assert System(config).cores[0].prefetcher is None

    def test_prefetch_hits_after_pom_is_warm(self):
        system = self._system()
        # First pass walks every page (fills the POM-TLB); evict nothing.
        self._stream_pages(system, range(48))
        walks_after_first_pass = system.cores[0].stats.page_walks
        # Drop the on-chip TLB state but keep POM contents: a second
        # sequential pass prefetches successfully.
        system.cores[0].l2_tlb.invalidate_asid(A)
        system.cores[0].l1_tlb.tlb_4k.invalidate_asid(A)
        self._stream_pages(system, range(48))
        prefetcher = system.cores[0].prefetcher
        assert prefetcher.stats.issued > 0
        assert prefetcher.stats.useful > 0
        assert system.cores[0].stats.page_walks == walks_after_first_pass

    def test_unmapped_target_not_prefetched(self):
        system = self._system()
        core = system.cores[0]
        # Stream to the edge of the mapped region.
        self._stream_pages(system, range(60, 64))
        issued_before = core.prefetcher.stats.issued
        self._stream_pages(system, [63])
        # Target page 64 is unmapped: no speculative walk happened.
        assert core.prefetcher.stats.issued >= issued_before

    def test_prefetch_probe_not_counted_as_demand_miss(self):
        system = self._system()
        self._stream_pages(system, range(16))
        demand_misses = system.cores[0].stats.l2_tlb_misses
        assert system.cores[0].l2_tlb.stats.misses == demand_misses
