"""Unified error taxonomy: hierarchy, legacy bases, stable exit codes."""

import pytest

from repro.analysis.diff import DiffError
from repro.checkpoint import CheckpointError, SimulationStalled
from repro.errors import (
    EXIT_CHAOS,
    EXIT_DOCTOR,
    EXIT_FAILURE,
    EXIT_INJECTED,
    EXIT_INTERRUPT,
    EXIT_OK,
    EXIT_SIMULATION,
    EXIT_USAGE,
    CampaignError,
    ChaosError,
    ConfigError,
    DataError,
    DoctorError,
    InjectedFaultError,
    ReproError,
    SimulationError,
    exit_code_for,
)
from repro.experiments.bench import BenchError
from repro.experiments.runner import PointFailedError
from repro.sim.config import small_config
from repro.validate import InvariantViolation
from repro.workloads.trace import TraceFormatError


class TestHierarchy:
    def test_every_family_is_repro_error(self):
        for family in (ConfigError, DataError, SimulationError,
                       CampaignError, ChaosError, DoctorError,
                       InjectedFaultError):
            assert issubclass(family, ReproError)

    def test_legacy_value_error_bases(self):
        """Pre-taxonomy ``except ValueError`` call sites keep working."""
        for cls in (ConfigError, DiffError, TraceFormatError):
            assert issubclass(cls, ValueError)

    def test_legacy_runtime_error_bases(self):
        """Pre-taxonomy ``except RuntimeError`` call sites keep working."""
        for cls in (CheckpointError, SimulationStalled, InvariantViolation,
                    BenchError, PointFailedError):
            assert issubclass(cls, RuntimeError)

    def test_raised_subclasses_map_into_families(self):
        assert issubclass(CheckpointError, SimulationError)
        assert issubclass(SimulationStalled, SimulationError)
        assert issubclass(InvariantViolation, SimulationError)
        assert issubclass(DiffError, DataError)
        assert issubclass(BenchError, DataError)
        assert issubclass(TraceFormatError, DataError)
        assert issubclass(PointFailedError, CampaignError)


class TestExitCodes:
    def test_family_codes_are_stable(self):
        assert ConfigError.exit_code == EXIT_USAGE == 2
        assert DataError.exit_code == EXIT_USAGE == 2
        assert SimulationError.exit_code == EXIT_SIMULATION == 3
        assert CampaignError.exit_code == EXIT_FAILURE == 1
        assert ChaosError.exit_code == EXIT_CHAOS == 4
        assert DoctorError.exit_code == EXIT_DOCTOR == 5
        assert InjectedFaultError.exit_code == EXIT_INJECTED == 6
        assert EXIT_OK == 0

    def test_subclasses_inherit_their_family_code(self):
        assert exit_code_for(CheckpointError("x")) == EXIT_SIMULATION
        assert exit_code_for(TraceFormatError("x")) == EXIT_USAGE
        assert exit_code_for(PointFailedError("x")) == EXIT_FAILURE

    def test_interrupt_maps_to_130(self):
        assert exit_code_for(KeyboardInterrupt()) == EXIT_INTERRUPT == 130

    def test_unknown_exception_is_generic_failure(self):
        assert exit_code_for(RuntimeError("boom")) == EXIT_FAILURE


class TestConfigErrorsInPractice:
    def test_small_config_raises_config_error(self):
        with pytest.raises(ConfigError):
            small_config(contexts_per_core=0)

    def test_still_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            small_config(contexts_per_core=0)
