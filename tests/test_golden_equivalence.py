"""Golden-equivalence suite for the hot-path overhaul (ISSUE 9).

The optimized datapath — flat-array caches, monomorphic replacement fast
paths, bound instrumented/bare method variants, batched stream stepping —
must be *bit-identical* to the generic reference paths through the public
results.  Each test runs the same simulation twice, once per path, and
compares ``SimulationResult.to_dict()`` byte for byte (host-dependent
fields stripped, exactly as the result store does).
"""

from __future__ import annotations

import json

import pytest

from repro.core.schemes import Scheme
from repro.experiments.store import strip_host_fields
from repro.mem.cache import Cache, set_fast_paths
from repro.sim.config import small_config
from repro.sim.engine import run_simulation
from repro.telemetry import CycleAccountant, Telemetry
from repro.workloads.mixes import make_mix
from repro.workloads.programs import ConnectedComponent, Gups

ACCESSES = 1600
SEED = 3


def _run(scheme: str, replacement: str, telemetry=None, workload="gups"):
    config = small_config(scheme=Scheme(scheme), replacement=replacement)
    workloads = make_mix(workload, scale=0.25)
    result = run_simulation(
        config,
        workloads,
        total_accesses=ACCESSES,
        seed=SEED,
        workload_name=workload,
        telemetry=telemetry,
    )
    return strip_host_fields(result.to_dict())


def _canon(result_dict) -> str:
    return json.dumps(result_dict, sort_keys=True, default=repr)


@pytest.mark.parametrize("replacement", ["lru", "nru", "plru", "rrip"])
@pytest.mark.parametrize(
    "scheme", ["conventional", "pom-tlb", "csalt-cd", "csalt-d"]
)
def test_fast_paths_match_generic_reference(scheme, replacement):
    """Scheme x replacement matrix: fast paths == generic oracle."""
    fast = _run(scheme, replacement)
    previous = set_fast_paths(False)
    try:
        generic = _run(scheme, replacement)
    finally:
        set_fast_paths(previous)
    assert _canon(fast) == _canon(generic)


@pytest.mark.parametrize("scheme", ["conventional", "pom-tlb", "csalt-cd", "tsb"])
def test_instrumented_matches_bare(scheme):
    """The accounting-instrumented variants must not perturb results.

    The CPI stack itself only exists on the instrumented run; everything
    else — cycles, hit/miss counts, walk stats — must match exactly.
    """
    bare = _run(scheme, "lru", telemetry=None)
    instrumented = _run(
        scheme, "lru", telemetry=Telemetry(accounting=CycleAccountant())
    )
    assert instrumented.pop("cpi_stack", None) is not None
    bare.pop("cpi_stack", None)
    assert _canon(bare) == _canon(instrumented)


@pytest.mark.parametrize("workload_cls", [Gups, ConnectedComponent])
def test_batched_take_matches_item_iteration(workload_cls):
    """``BatchedStream.take`` flattens to exactly the ``next()`` sequence."""
    reference = workload_cls.scaled(0.25).thread_stream(1, 8, SEED)
    batched = workload_cls.scaled(0.25).thread_stream(1, 8, SEED)
    taken = []
    # Uneven chunk sizes cross block boundaries in every alignment.
    for chunk in (1, 7, 64, 2048, 5000, 3):
        taken.extend(batched.take(chunk))
    expected = [next(reference) for _ in range(len(taken))]
    assert taken == expected


@pytest.mark.parametrize("workload_cls", [Gups, ConnectedComponent])
def test_batched_skip_matches_draining(workload_cls):
    """``skip(n)`` lands on the same stream position as ``n`` draws."""
    reference = workload_cls.scaled(0.25).thread_stream(2, 8, SEED)
    skipped = workload_cls.scaled(0.25).thread_stream(2, 8, SEED)
    for _ in range(4999):
        next(reference)
    skipped.skip(4999)
    assert [next(skipped) for _ in range(100)] == [
        next(reference) for _ in range(100)
    ]


def test_checkpoint_restore_uses_batched_skip(tmp_path):
    """Engine restore fast-forward (now ``skip``-based) is bit-identical."""
    config = small_config(scheme=Scheme.CSALT_CD, replacement="lru")

    def run(**kwargs):
        return run_simulation(
            config,
            make_mix("gups", scale=0.25),
            total_accesses=ACCESSES,
            seed=SEED,
            workload_name="gups",
            **kwargs,
        )

    straight = strip_host_fields(run().to_dict())
    checkpoint_dir = tmp_path / "ckpt"
    run(checkpoint_every=ACCESSES // 2, checkpoint_dir=checkpoint_dir)
    resumed = strip_host_fields(
        run(restore="auto", checkpoint_dir=checkpoint_dir).to_dict()
    )
    assert _canon(straight) == _canon(resumed)


def test_cache_state_roundtrip_mid_stream():
    """Flat-array cache layout: ``state_dict`` -> ``load_state`` resumes
    to identical victims, hits and stats."""
    def drive(cache, start, count):
        log = []
        for i in range(start, start + count):
            address = (i * 2654435761) % (1 << 20) & ~0x3F
            hit = cache.lookup(address, i & 1, is_write=bool(i & 2))
            evicted = None
            if not hit:
                evicted = cache.fill(address, i & 1, dirty=bool(i & 2))
            log.append((hit, evicted))
        return log

    for policy in ("lru", "nru", "plru", "rrip"):
        original = Cache("l2", 1 << 14, ways=4, latency=10, policy=policy)
        drive(original, 0, 500)
        snapshot = original.state_dict()
        clone = Cache("l2", 1 << 14, ways=4, latency=10, policy=policy)
        clone.load_state(snapshot)
        assert drive(original, 500, 300) == drive(clone, 500, 300), policy
        assert vars(original.stats) == vars(clone.stats)
