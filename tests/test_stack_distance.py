"""Unit and property tests for the MSA stack-distance profilers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stack_distance import ProfilerPair, StackDistanceProfiler


def reference_stack_counts(tags, ways):
    """Brute-force MSA counters for a single fully-associative set."""
    counters = [0] * (ways + 1)
    stack = []
    for tag in tags:
        if tag in stack:
            position = stack.index(tag)
            counters[position] += 1
            stack.remove(tag)
        else:
            counters[ways] += 1
        stack.insert(0, tag)
        del stack[ways:]
    return counters


class TestShadowMode:
    def test_first_access_is_miss(self):
        profiler = StackDistanceProfiler(4, sample_shift=0)
        profiler.record(0, 42)
        assert profiler.misses == 1

    def test_immediate_reuse_hits_mru(self):
        profiler = StackDistanceProfiler(4, sample_shift=0)
        profiler.record(0, 42)
        profiler.record(0, 42)
        assert profiler.counters[0] == 1

    def test_distance_two(self):
        profiler = StackDistanceProfiler(4, sample_shift=0)
        for tag in (1, 2, 1):
            profiler.record(0, tag)
        assert profiler.counters[1] == 1

    def test_eviction_beyond_ways(self):
        profiler = StackDistanceProfiler(2, sample_shift=0)
        for tag in (1, 2, 3, 1):
            profiler.record(0, tag)
        # Tag 1 was pushed out by 2, 3 -> second access misses again.
        assert profiler.misses == 4

    def test_unsampled_sets_ignored(self):
        profiler = StackDistanceProfiler(4, sample_shift=2)
        profiler.record(1, 42)
        profiler.record(2, 42)
        profiler.record(3, 42)
        assert profiler.total_accesses == 0
        profiler.record(4, 42)
        assert profiler.total_accesses == 1

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=100))
    @settings(max_examples=60)
    def test_matches_bruteforce_reference(self, tags):
        profiler = StackDistanceProfiler(4, sample_shift=0)
        for tag in tags:
            profiler.record(0, tag)
        assert profiler.counters == reference_stack_counts(tags, 4)

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=100))
    @settings(max_examples=30)
    def test_total_equals_access_count(self, tags):
        profiler = StackDistanceProfiler(4, sample_shift=0)
        for tag in tags:
            profiler.record(0, tag)
        assert profiler.total_accesses == len(tags)


class TestEstimateMode:
    def test_positions_recorded(self):
        profiler = StackDistanceProfiler(4)
        profiler.record_position(0)
        profiler.record_position(2)
        profiler.record_position(None)
        assert profiler.counters == [1, 0, 1, 0, 1]

    def test_position_clamped(self):
        profiler = StackDistanceProfiler(4)
        profiler.record_position(99)
        assert profiler.counters[3] == 1


class TestQueries:
    def test_hits_with_ways_prefix(self):
        profiler = StackDistanceProfiler(4)
        profiler.counters = [5, 3, 2, 1, 10]
        assert profiler.hits_with_ways(0) == 0
        assert profiler.hits_with_ways(2) == 8
        assert profiler.hits_with_ways(4) == 11

    def test_hits_with_ways_bounds(self):
        with pytest.raises(ValueError):
            StackDistanceProfiler(4).hits_with_ways(5)

    def test_decay_halves(self):
        profiler = StackDistanceProfiler(2)
        profiler.counters = [8, 4, 3]
        profiler.decay()
        assert profiler.counters == [4, 2, 1]

    def test_reset(self):
        profiler = StackDistanceProfiler(2, sample_shift=0)
        profiler.record(0, 1)
        profiler.reset()
        assert profiler.counters == [0, 0, 0]
        profiler.record(0, 1)
        assert profiler.misses == 1


class TestProfilerPair:
    def test_for_ways(self):
        pair = ProfilerPair.for_ways(8)
        assert pair.data.ways == 8
        assert pair.tlb.ways == 8

    def test_decay_both(self):
        pair = ProfilerPair.for_ways(2)
        pair.data.counters = [4, 0, 0]
        pair.tlb.counters = [0, 0, 6]
        pair.decay()
        assert pair.data.counters[0] == 2
        assert pair.tlb.counters[2] == 3
