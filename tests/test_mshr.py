"""Unit tests for the MSHR/MLP overlap model."""

import pytest

from repro.mem.mshr import MshrModel


class TestValidation:
    def test_entries_positive(self):
        with pytest.raises(ValueError):
            MshrModel(entries=0)

    def test_mlp_at_least_one(self):
        with pytest.raises(ValueError):
            MshrModel(workload_mlp=0.5)


class TestMlpEstimate:
    def test_starts_at_one(self):
        assert MshrModel().mlp == pytest.approx(1.0)

    def test_all_misses_approach_cap(self):
        model = MshrModel(entries=10, workload_mlp=4.0)
        for _ in range(1000):
            model.observe(True)
        assert model.mlp == pytest.approx(4.0, abs=0.05)

    def test_cap_is_min_of_entries_and_workload(self):
        assert MshrModel(entries=2, workload_mlp=8.0).mlp_cap == 2.0
        assert MshrModel(entries=16, workload_mlp=3.0).mlp_cap == 3.0

    def test_hits_pull_estimate_down(self):
        model = MshrModel()
        for _ in range(500):
            model.observe(True)
        high = model.mlp
        for _ in range(500):
            model.observe(False)
        assert model.mlp < high

    def test_mlp_bounded(self):
        model = MshrModel(entries=10, workload_mlp=6.0)
        for flag in [True, False] * 200:
            model.observe(flag)
            assert 1.0 <= model.mlp <= 6.0


class TestStalls:
    def test_translation_charged_in_full(self):
        model = MshrModel()
        for _ in range(1000):
            model.observe(True)
        assert model.translation_stall(200) == 200

    def test_data_stall_divided_by_mlp(self):
        model = MshrModel(entries=10, workload_mlp=4.0)
        for _ in range(2000):
            model.observe(True)
        assert model.data_stall(400) == pytest.approx(100, rel=0.05)

    def test_isolated_miss_charged_nearly_full(self):
        model = MshrModel()
        for _ in range(1000):
            model.observe(False)
        model.observe(True)
        assert model.data_stall(100) > 90

    def test_reset(self):
        model = MshrModel()
        for _ in range(100):
            model.observe(True)
        model.reset()
        assert model.mlp == pytest.approx(1.0)
