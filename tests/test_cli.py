"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestMixes:
    def test_lists_programs_and_mixes(self, capsys):
        assert main(["mixes"]) == 0
        out = capsys.readouterr().out
        assert "gups" in out
        assert "can_ccomp" in out
        assert "canneal + ccomp" in out


class TestRun:
    def test_run_summary(self, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "pom-tlb",
            "--accesses", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC (geomean)" in out
        assert "walks eliminated" in out

    def test_run_with_baseline(self, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "3000", "--baseline",
        ])
        assert code == 0
        assert "vs POM-TLB" in capsys.readouterr().out

    def test_run_native_five_level(self, capsys):
        code = main([
            "run", "--mix", "streamcluster", "--scheme", "conventional",
            "--accesses", "3000", "--native", "--levels", "5",
        ])
        assert code == 0

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheme", "magic"])

    def test_bad_mix_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--mix", "doom3"])


class TestReport:
    def test_only_subset(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TOTAL_ACCESSES", "1000")
        # Re-resolve the runner default lazily: run_point reads the module
        # constant, so patch it directly for this tiny run.
        import repro.experiments.runner as runner
        monkeypatch.setattr(runner, "DEFAULT_TOTAL_ACCESSES", 1000)
        runner.clear_cache()
        code = main(["report", "--only", "figure8"])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out
        runner.clear_cache()

    def test_unknown_exhibit(self, capsys):
        assert main(["report", "--only", "figure99"]) == 2
        assert "unknown exhibits" in capsys.readouterr().err


class TestTrace:
    def test_record_info_run(self, tmp_path, capsys):
        path = str(tmp_path / "t.npz")
        assert main([
            "trace", "record", "gups", path, "--accesses", "300",
        ]) == 0
        assert main(["trace", "info", path]) == 0
        out = capsys.readouterr().out
        assert "threads" in out
        assert main([
            "trace", "run", path, "--scheme", "pom-tlb",
            "--accesses", "2000",
        ]) == 0
