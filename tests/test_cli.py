"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestMixes:
    def test_lists_programs_and_mixes(self, capsys):
        assert main(["mixes"]) == 0
        out = capsys.readouterr().out
        assert "gups" in out
        assert "can_ccomp" in out
        assert "canneal + ccomp" in out


class TestRun:
    def test_run_summary(self, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "pom-tlb",
            "--accesses", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC (geomean)" in out
        assert "walks eliminated" in out

    def test_run_with_baseline(self, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "3000", "--baseline",
        ])
        assert code == 0
        assert "vs POM-TLB" in capsys.readouterr().out

    def test_run_native_five_level(self, capsys):
        code = main([
            "run", "--mix", "streamcluster", "--scheme", "conventional",
            "--accesses", "3000", "--native", "--levels", "5",
        ])
        assert code == 0

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheme", "magic"])

    def test_bad_mix_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--mix", "doom3"])


class TestRunTelemetry:
    def test_json_output(self, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "pom-tlb",
            "--accesses", "3000", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["result"]["scheme"] == "pom-tlb"
        assert document["result"]["instructions"] > 0
        assert document["elapsed_seconds"] >= 0.0

    def test_json_with_baseline(self, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "3000", "--baseline", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["baseline"]["scheme"] == "pom-tlb"
        assert document["speedup_over_baseline"] > 0.0

    def test_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "6000",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
            "--profile",
        ])
        assert code == 0
        assert trace_path.exists() and metrics_path.exists()
        with open(metrics_path) as handle:
            metrics = json.load(handle)
        assert "buckets" in metrics["walker"]["latency_cycles"]
        assert metrics["run"]["scheme"] == "csalt-cd"
        assert "host_profile" in metrics
        err = capsys.readouterr().err
        assert "us/call" in err

    def test_stats_round_trip(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.jsonl"
        assert main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "6000", "--trace-out", str(trace_path),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "page walks" in out
        assert main(["stats", str(trace_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["walks"]["count"] > 0

    def test_stats_chrome_out(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.jsonl"
        chrome_path = tmp_path / "chrome.json"
        assert main([
            "run", "--mix", "gups", "--scheme", "pom-tlb",
            "--accesses", "3000", "--trace-out", str(trace_path),
        ]) == 0
        assert main([
            "stats", str(trace_path), "--chrome-out", str(chrome_path),
        ]) == 0
        with open(chrome_path) as handle:
            document = json.load(handle)
        assert document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"

    def test_stats_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not json\n")
        assert main(["stats", str(bad)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_progress_flag(self, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "pom-tlb",
            "--accesses", "3000", "--progress",
        ])
        assert code == 0
        assert "acc/s" in capsys.readouterr().err


class TestReport:
    def test_only_subset(self, capsys, monkeypatch):
        # The runner reads REPRO_TOTAL_ACCESSES lazily, per call.
        monkeypatch.setenv("REPRO_TOTAL_ACCESSES", "1000")
        import repro.experiments.runner as runner
        runner.clear_cache()
        code = main(["report", "--only", "figure8"])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out
        runner.clear_cache()

    def test_unknown_exhibit(self, capsys):
        assert main(["report", "--only", "figure99"]) == 2
        assert "unknown exhibits" in capsys.readouterr().err

    def test_resume_requires_store(self, capsys):
        assert main(["report", "--resume"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_store_then_resume(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TOTAL_ACCESSES", "1000")
        import repro.experiments.runner as runner
        runner.clear_cache()
        store_dir = str(tmp_path / "store")
        out1 = str(tmp_path / "r1.md")
        assert main([
            "report", "--only", "figure8", "--store", store_dir,
            "--out", out1,
        ]) == 0
        assert len(list((tmp_path / "store").glob("*.json"))) == 10

        # Resume from a cold cache: nothing is re-simulated.
        runner.clear_cache()

        def boom(*args, **kwargs):
            raise AssertionError("resume should not simulate")

        monkeypatch.setattr(runner, "run_simulation", boom)
        out2 = str(tmp_path / "r2.md")
        assert main([
            "report", "--only", "figure8", "--store", store_dir,
            "--resume", "--out", out2,
        ]) == 0
        with open(out1) as h1, open(out2) as h2:
            assert h1.read() == h2.read()
        runner.clear_cache()
        runner.set_store(None)

    def test_strict_flags_partial_exhibit(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TOTAL_ACCESSES", "1000")
        import repro.experiments.runner as runner
        from repro.sim.engine import run_simulation as real

        def flaky(config, workloads, **kwargs):
            if kwargs.get("workload_name") == "canneal":
                raise RuntimeError("injected fault")
            return real(config, workloads, **kwargs)

        monkeypatch.setattr(runner, "run_simulation", flaky)
        runner.clear_cache()
        store_dir = str(tmp_path / "store")
        code = main([
            "report", "--only", "figure8", "--store", store_dir, "--strict",
            "--out", str(tmp_path / "r.md"),
        ])
        err = capsys.readouterr().err
        assert code == 1
        assert "PARTIAL exhibits: figure8" in err
        # Without --strict the same partial report exits 0.
        runner.clear_cache()
        code = main([
            "report", "--only", "figure8", "--store", store_dir,
            "--out", str(tmp_path / "r2.md"),
        ])
        assert code == 0
        runner.clear_cache()
        runner.set_store(None)


class TestTrace:
    def test_record_info_run(self, tmp_path, capsys):
        path = str(tmp_path / "t.npz")
        assert main([
            "trace", "record", "gups", path, "--accesses", "300",
        ]) == 0
        assert main(["trace", "info", path]) == 0
        out = capsys.readouterr().out
        assert "threads" in out
        assert main([
            "trace", "run", path, "--scheme", "pom-tlb",
            "--accesses", "2000",
        ]) == 0


class TestRunRobustness:
    def test_checkpoint_restore_roundtrip(self, tmp_path, capsys):
        ckpt_dir = str(tmp_path / "ckpts")
        code = main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "3000", "--checkpoint-every", "1000",
            "--checkpoint-dir", ckpt_dir, "--json",
        ])
        assert code == 0
        full = json.loads(capsys.readouterr().out)["result"]
        code = main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "3000", "--checkpoint-dir", ckpt_dir,
            "--restore", "auto", "--json",
        ])
        assert code == 0
        resumed = json.loads(capsys.readouterr().out)["result"]
        assert resumed["extra"]["host_restored_from"].endswith(".ckpt")
        strip = lambda d: {
            k: v for k, v in d["extra"].items() if not k.startswith("host_")
        }
        assert strip(resumed) == strip(full)
        assert resumed["ipc"] == full["ipc"]

    def test_checkpoint_every_requires_dir(self, capsys):
        code = main([
            "run", "--mix", "gups", "--accesses", "2000",
            "--checkpoint-every", "500",
        ])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_restore_auto_requires_dir(self, capsys):
        code = main([
            "run", "--mix", "gups", "--accesses", "2000",
            "--restore", "auto",
        ])
        assert code == 2

    def test_check_invariants_clean_run(self, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "3000", "--check-invariants", "500",
            "--replacement", "nru",
        ])
        assert code == 0
        assert "IPC (geomean)" in capsys.readouterr().out

    def test_replacement_flag_validated(self):
        with pytest.raises(SystemExit):
            main(["run", "--replacement", "fifo"])


class TestCpiAndStatsFormats:
    def run_json(self, tmp_path, scheme="pom-tlb", accesses=3000, capsys=None):
        """Run once with --cpi --json and persist the document to a file."""
        code = main([
            "run", "--mix", "gups", "--scheme", scheme,
            "--accesses", str(accesses), "--cpi", "--json",
        ])
        assert code == 0
        text = capsys.readouterr().out
        path = tmp_path / f"{scheme}.json"
        path.write_text(text)
        return path, json.loads(text)

    def test_run_cpi_waterfall(self, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "3000", "--cpi",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "CPI stack" in out
        assert "base" in out
        assert "total" in out

    def test_run_cpi_json_carries_stack(self, tmp_path, capsys):
        _, document = self.run_json(tmp_path, capsys=capsys)
        stack = document["result"]["cpi_stack"]
        assert stack["scheme"] == "pom-tlb"
        assert sum(stack["components"].values()) == pytest.approx(
            stack["total_cycles"]
        )

    def test_stats_on_result_file(self, tmp_path, capsys):
        path, _ = self.run_json(tmp_path, capsys=capsys)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert main(["stats", str(path), "--cpi"]) == 0
        assert "CPI stack" in capsys.readouterr().out

    def test_stats_result_formats(self, tmp_path, capsys):
        path, _ = self.run_json(tmp_path, capsys=capsys)
        assert main(["stats", str(path), "--format", "csv"]) == 0
        csv_out = capsys.readouterr().out
        assert csv_out.splitlines()[0] == "metric,value"
        assert main(["stats", str(path), "--format", "markdown"]) == 0
        assert "| metric" in capsys.readouterr().out

    def test_stats_result_rejects_chrome_out(self, tmp_path, capsys):
        path, _ = self.run_json(tmp_path, capsys=capsys)
        code = main(["stats", str(path), "--chrome-out", "x.json"])
        assert code == 2
        assert "event trace" in capsys.readouterr().err

    def test_stats_trace_rejects_cpi(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.jsonl"
        main([
            "run", "--mix", "gups", "--scheme", "pom-tlb",
            "--accesses", "2000", "--trace-out", str(trace),
        ])
        capsys.readouterr()
        assert main(["stats", str(trace), "--cpi"]) == 2
        assert "result JSON" in capsys.readouterr().err

    def test_stats_trace_csv_format(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.jsonl"
        main([
            "run", "--mix", "gups", "--scheme", "pom-tlb",
            "--accesses", "2000", "--trace-out", str(trace),
        ])
        capsys.readouterr()
        assert main(["stats", str(trace), "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "metric,value"
        assert any(line.startswith("events,") for line in out.splitlines())


class TestDiffCommand:
    def two_runs(self, tmp_path, capsys):
        paths = {}
        for scheme in ("pom-tlb", "csalt-cd"):
            code = main([
                "run", "--mix", "gups", "--scheme", scheme,
                "--accesses", "3000", "--cpi", "--json",
            ])
            assert code == 0
            path = tmp_path / f"{scheme}.json"
            path.write_text(capsys.readouterr().out)
            paths[scheme] = path
        return paths

    def test_diff_two_result_files(self, tmp_path, capsys):
        paths = self.two_runs(tmp_path, capsys)
        code = main(["diff", str(paths["pom-tlb"]), str(paths["csalt-cd"])])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "ipc" in out
        assert "CPI" in out

    def test_diff_json(self, tmp_path, capsys):
        paths = self.two_runs(tmp_path, capsys)
        code = main([
            "diff", str(paths["pom-tlb"]), str(paths["csalt-cd"]), "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["speedup"] > 0
        assert isinstance(document["metrics"], list)

    def test_diff_fail_on_regression(self, tmp_path, capsys):
        paths = self.two_runs(tmp_path, capsys)
        # Doctor a copy that is unambiguously slower: doubling every
        # core's cycle count halves IPC, a guaranteed regression.
        document = json.loads(paths["pom-tlb"].read_text())
        for core in document["result"]["per_core"]:
            core["cycles"] *= 2
        document["result"].pop("cpi_stack", None)
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(document))
        code = main([
            "diff", str(paths["pom-tlb"]), str(slow),
            "--fail-on-regression",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "<-- regression" in captured.out
        assert "regression(s)" in captured.err

    def test_diff_bad_input(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["diff", str(path), str(path)]) == 2
        assert "diff error" in capsys.readouterr().err


class TestBenchCommand:
    def test_quick_bench_writes_artifact(self, tmp_path, capsys):
        code = main([
            "bench", "--quick", "--accesses", "400",
            "--out-dir", str(tmp_path),
        ])
        assert code == 0
        artifacts = list(tmp_path.glob("BENCH_*.json"))
        assert len(artifacts) == 1
        out = capsys.readouterr().out
        assert "aggregate" in out

    def test_bench_baseline_pass_and_update(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = main([
            "bench", "--quick", "--accesses", "400",
            "--out-dir", str(tmp_path / "out1"),
            "--update-baseline", str(baseline),
        ])
        assert code == 0
        assert baseline.exists()
        capsys.readouterr()
        # Same machine, same workload: well within a 90% tolerance.
        code = main([
            "bench", "--quick", "--accesses", "400",
            "--out-dir", str(tmp_path / "out2"),
            "--baseline", str(baseline), "--tolerance", "0.9",
        ])
        assert code == 0
        assert "within" in capsys.readouterr().err

    def test_bench_baseline_regression_fails(self, tmp_path, capsys):
        baseline = tmp_path / "impossible.json"
        document = {
            "schema_version": 1,
            "quick": True,
            "points": [],
            "aggregate_accesses_per_second": 1e12,
        }
        baseline.write_text(json.dumps(document))
        code = main([
            "bench", "--quick", "--accesses", "400",
            "--out-dir", str(tmp_path / "out"),
            "--baseline", str(baseline),
        ])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err
        # The artifact is still written for CI to upload.
        assert list((tmp_path / "out").glob("BENCH_*.json"))

    def test_bench_json_output(self, tmp_path, capsys):
        code = main([
            "bench", "--quick", "--accesses", "400",
            "--out-dir", str(tmp_path), "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["quick"] is True
        assert len(document["points"]) == 3
