"""Unit tests for system configuration."""

import pytest

from repro.core.schemes import Scheme
from repro.sim.config import (
    CYCLES_PER_MS,
    CacheConfig,
    SystemConfig,
    TlbConfig,
    small_config,
)


class TestDefaults:
    def test_table2_processor(self):
        config = SystemConfig()
        assert config.cores == 8
        assert config.l1d == CacheConfig(32 * 1024, 8, 4)
        assert config.l2 == CacheConfig(256 * 1024, 4, 12)
        assert config.l3 == CacheConfig(8 * 1024 * 1024, 16, 42)

    def test_table2_mmu(self):
        tlb = SystemConfig().tlb
        assert (tlb.l1_4k_entries, tlb.l1_2m_entries) == (64, 32)
        assert tlb.l1_latency == 9
        assert (tlb.l2_entries, tlb.l2_ways, tlb.l2_latency) == (1536, 12, 17)

    def test_table2_psc(self):
        psc = SystemConfig().psc
        assert (psc.pml4_entries, psc.pdp_entries, psc.pde_entries) == (2, 4, 32)
        assert psc.latency == 2

    def test_pom_is_16mb(self):
        assert SystemConfig().pom_tlb_bytes == 16 * 1024 * 1024


class TestDerived:
    def test_switch_interval_cycles(self):
        config = SystemConfig(switch_interval_ms=10.0, time_scale=1.0)
        assert config.switch_interval_cycles == 10 * CYCLES_PER_MS
        scaled = SystemConfig(switch_interval_ms=10.0, time_scale=1 / 400)
        assert scaled.switch_interval_cycles == 100_000

    def test_num_vms_tracks_contexts(self):
        assert SystemConfig(contexts_per_core=4).num_vms == 4

    def test_with_scheme(self):
        config = SystemConfig(scheme=Scheme.POM_TLB)
        other = config.with_scheme(Scheme.CSALT_CD)
        assert other.scheme is Scheme.CSALT_CD
        assert other.l3 == config.l3
        assert config.scheme is Scheme.POM_TLB  # frozen original untouched


class TestSmallConfig:
    def test_quarter_scale_capacities(self):
        config = small_config()
        assert config.l3.size_bytes == SystemConfig().l3.size_bytes // 4
        assert config.pom_tlb_bytes == SystemConfig().pom_tlb_bytes // 4
        assert config.tlb.l2_entries == SystemConfig().tlb.l2_entries // 4

    def test_latencies_unchanged(self):
        config = small_config()
        assert config.l3.latency == 42
        assert config.tlb.l2_latency == 17

    def test_overrides_pass_through(self):
        config = small_config(scheme=Scheme.TSB, cores=2)
        assert config.scheme is Scheme.TSB
        assert config.cores == 2


class TestValidation:
    def test_cores_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=0)

    def test_contexts_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(contexts_per_core=0)

    def test_time_scale_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(time_scale=0.0)

    def test_switch_interval_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(switch_interval_ms=-1.0)

    def test_page_table_levels_restricted(self):
        with pytest.raises(ValueError):
            SystemConfig(page_table_levels=3)
        assert SystemConfig(page_table_levels=5).page_table_levels == 5

    def test_base_cpi_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(base_cpi=0.0)


class TestRobustnessValidation:
    """New checks: checkpoint cadences, PLRU geometry, partition minima."""

    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            SystemConfig(checkpoint_every=0)
        assert SystemConfig(checkpoint_every=1_000).checkpoint_every == 1_000

    def test_check_invariants_must_be_positive(self):
        with pytest.raises(ValueError, match="check_invariants"):
            SystemConfig(check_invariants=-5)

    def test_plru_requires_power_of_two_ways(self):
        with pytest.raises(ValueError, match="l3.ways"):
            SystemConfig(
                replacement="plru",
                l3=CacheConfig(6 * 1024 * 1024, 12, 42),
            )
        SystemConfig(replacement="plru")  # default 4/16 ways are fine

    def test_partitioning_needs_room_for_both_streams(self):
        with pytest.raises(ValueError, match="l2.ways"):
            SystemConfig(
                scheme=Scheme.CSALT_CD,
                l2=CacheConfig(64 * 1024, 1, 12),
            )

    def test_static_split_respects_n_min(self):
        with pytest.raises(ValueError, match="static_data_ways"):
            SystemConfig(scheme=Scheme.CSALT_STATIC, static_data_ways=0)

    def test_tlb_entries_divisible_by_ways(self):
        with pytest.raises(ValueError, match="tlb.l2_entries"):
            SystemConfig(tlb=TlbConfig(l2_entries=1000, l2_ways=12))
