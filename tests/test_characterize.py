"""Unit tests for workload characterization."""

import pytest

from repro.analysis.characterize import (
    WorkloadProfile,
    _median,
    _reuse_distances,
    characterize,
    compare,
)
from repro.workloads.programs import Gups, StreamCluster


class TestHelpers:
    def test_median_odd_even_empty(self):
        assert _median([3, 1, 2]) == 2
        assert _median([1, 2, 3, 4]) == 2.5
        assert _median([]) == float("inf")

    def test_reuse_distances(self):
        assert _reuse_distances([1, 2, 1, 1]) == [2, 1]
        assert _reuse_distances([1, 2, 3]) == []


class TestCharacterize:
    def test_gups_profile(self):
        profile = characterize(Gups(table_bytes=1 << 22), accesses=4000)
        assert profile.name == "gups"
        assert profile.accesses == 4000
        # Read-modify-write pairs: half the accesses are writes.
        assert profile.write_fraction == pytest.approx(0.5, abs=0.01)
        assert profile.huge_page_fraction == 1.0
        assert profile.footprint_bytes <= 1 << 22

    def test_streaming_profile(self):
        profile = characterize(StreamCluster.scaled(0.25), accesses=4000)
        assert profile.huge_page_fraction == 0.0
        # Sequential 64 B strides: lines are touched once, pages ~64 times.
        assert profile.line_reuse_median > profile.page_reuse_median or (
            profile.line_reuse_median == float("inf")
        )

    def test_accesses_validated(self):
        with pytest.raises(ValueError):
            characterize(Gups(1 << 22), accesses=0)

    def test_summary_mentions_key_fields(self):
        profile = characterize(Gups(1 << 22), accesses=1000)
        text = profile.summary()
        assert "write fraction" in text
        assert "distinct 4K pages" in text


class TestCompare:
    def test_empty(self):
        assert compare([]) == "(no profiles)"

    def test_table_rows(self):
        profiles = [
            characterize(Gups(1 << 22), accesses=1000),
            characterize(StreamCluster.scaled(0.25), accesses=1000),
        ]
        text = compare(profiles)
        assert "gups" in text and "streamcluster" in text
        assert len(text.splitlines()) == 4


class TestCli:
    def test_characterize_command(self, capsys):
        from repro.cli import main
        assert main(["characterize", "gups", "--accesses", "1000"]) == 0
        assert "gups" in capsys.readouterr().out

    def test_characterize_unknown_program(self, capsys):
        from repro.cli import main
        assert main(["characterize", "doom", "--accesses", "100"]) == 2
