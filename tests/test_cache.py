"""Unit and property tests for the partitionable cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import Cache, DipDueler, LineKind


def small_cache(ways=4, sets=8, **kwargs):
    return Cache("test", 64 * ways * sets, ways, latency=10, **kwargs)


class TestGeometry:
    def test_sets_and_ways(self):
        cache = Cache("l1", 32 * 1024, 8, 4)
        assert cache.num_sets == 64
        assert cache.ways == 8

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            Cache("bad", 1000, 3, 1)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            Cache("bad", 64 * 4 * 3, 4, 1)

    def test_index_of_roundtrip(self):
        cache = small_cache()
        set_index, tag = cache.index_of(0x12340)
        assert set_index == (0x12340 >> 6) % cache.num_sets
        assert tag == (0x12340 >> 6) // cache.num_sets


class TestLookupFill:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x1000, LineKind.DATA)
        cache.fill(0x1000, LineKind.DATA)
        assert cache.lookup(0x1000, LineKind.DATA)

    def test_same_line_different_bytes(self):
        cache = small_cache()
        cache.fill(0x1000, LineKind.DATA)
        assert cache.lookup(0x103F, LineKind.DATA)
        assert not cache.lookup(0x1040, LineKind.DATA)

    def test_stats_split_by_kind(self):
        cache = small_cache()
        cache.lookup(0x1000, LineKind.DATA)
        cache.lookup(0x2000, LineKind.TLB)
        assert cache.stats.data_misses == 1
        assert cache.stats.tlb_misses == 1
        cache.fill(0x2000, LineKind.TLB)
        cache.lookup(0x2000, LineKind.TLB)
        assert cache.stats.tlb_hits == 1

    def test_eviction_reports_victim_address(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(0x0, LineKind.DATA)
        cache.fill(0x40, LineKind.DATA)
        evicted = cache.fill(0x80, LineKind.DATA)
        assert evicted is not None
        assert evicted.address == 0x0
        assert not cache.probe(0x0)

    def test_dirty_eviction_flagged(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0x0, LineKind.DATA, dirty=True)
        evicted = cache.fill(0x40, LineKind.DATA)
        assert evicted.dirty
        assert cache.stats.writebacks == 1

    def test_write_lookup_dirties_line(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0x0, LineKind.DATA)
        cache.lookup(0x0, LineKind.DATA, is_write=True)
        evicted = cache.fill(0x40, LineKind.DATA)
        assert evicted.dirty

    def test_lru_victim_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill(0x0, LineKind.DATA)
        cache.fill(0x40, LineKind.DATA)
        cache.lookup(0x0, LineKind.DATA)  # 0x40 becomes LRU
        evicted = cache.fill(0x80, LineKind.DATA)
        assert evicted.address == 0x40

    def test_kind_at(self):
        cache = small_cache()
        cache.fill(0x1000, LineKind.TLB)
        assert cache.kind_at(0x1000) is LineKind.TLB
        assert cache.kind_at(0x2000) is None


class TestWriteBack:
    def test_present_line_marked_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0x0, LineKind.DATA)
        assert cache.write_back(0x0, LineKind.DATA) is None
        evicted = cache.fill(0x40, LineKind.DATA)
        assert evicted.dirty

    def test_absent_line_installed_dirty(self):
        cache = small_cache()
        cache.write_back(0x1000, LineKind.DATA)
        assert cache.probe(0x1000)

    def test_no_demand_stats(self):
        cache = small_cache()
        cache.write_back(0x1000, LineKind.DATA)
        assert cache.stats.accesses == 0


class TestInvalidate:
    def test_invalidate_drops_line(self):
        cache = small_cache()
        cache.fill(0x1000, LineKind.DATA)
        assert cache.invalidate(0x1000)
        assert not cache.probe(0x1000)

    def test_invalidate_absent(self):
        assert not small_cache().invalidate(0x1000)

    def test_way_reusable_after_invalidate(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0x0, LineKind.DATA)
        cache.invalidate(0x0)
        evicted = cache.fill(0x40, LineKind.DATA)
        assert evicted is None


class TestPartition:
    def test_partition_bounds(self):
        cache = small_cache(ways=4)
        with pytest.raises(ValueError):
            cache.set_partition(0)
        with pytest.raises(ValueError):
            cache.set_partition(4)
        cache.set_partition(2)
        assert cache.data_ways == 2
        cache.set_partition(None)
        assert cache.data_ways is None

    def test_data_fills_stay_in_data_ways(self):
        cache = small_cache(ways=4, sets=1)
        cache.set_partition(2)
        for i in range(8):
            cache.fill(i * 64, LineKind.DATA)
        occupancy = cache.occupancy_by_kind()
        # Data may only occupy its 2 of 4 ways.
        assert occupancy[LineKind.DATA] == pytest.approx(0.5)

    def test_tlb_fills_stay_in_tlb_ways(self):
        cache = small_cache(ways=4, sets=1)
        cache.set_partition(3)
        for i in range(8):
            cache.fill(i * 64, LineKind.TLB)
        assert cache.occupancy_by_kind()[LineKind.TLB] == pytest.approx(0.25)

    def test_data_fill_never_evicts_tlb_line(self):
        cache = small_cache(ways=4, sets=1)
        cache.set_partition(2)
        cache.fill(0x0, LineKind.TLB)
        cache.fill(0x40, LineKind.TLB)
        for i in range(2, 12):
            cache.fill(i * 64, LineKind.DATA)
        assert cache.probe(0x0)
        assert cache.probe(0x40)

    def test_lookup_finds_lines_across_partitions(self):
        """After a repartition, resident lines stay visible (Section 3.1)."""
        cache = small_cache(ways=4, sets=1)
        cache.set_partition(3)
        for i in range(3):
            cache.fill(i * 64, LineKind.DATA)
        cache.set_partition(1)  # data shrinks; old lines remain
        assert cache.lookup(0x40, LineKind.DATA)

    def test_repartition_narrows_future_victims(self):
        cache = small_cache(ways=4, sets=1)
        cache.set_partition(1)
        cache.fill(0x0, LineKind.DATA)
        evicted = cache.fill(0x40, LineKind.DATA)
        assert evicted is not None and evicted.address == 0x0


class TestDip:
    def test_leader_roles(self):
        dueler = DipDueler(stride=8)
        assert dueler.leader_role(0) == "lru"
        assert dueler.leader_role(1) == "bip"
        assert dueler.leader_role(2) is None

    def test_psel_moves_with_leader_misses(self):
        dueler = DipDueler()
        start = dueler.psel
        dueler.record_miss(0)
        assert dueler.psel == start + 1
        dueler.record_miss(1)
        dueler.record_miss(1)
        assert dueler.psel == start - 1

    def test_bip_inserts_mostly_at_lru(self):
        dueler = DipDueler()
        decisions = [dueler.insert_at_mru(1) for _ in range(64)]
        assert decisions.count(True) == 2  # 1/32 throttle

    def test_followers_follow_psel(self):
        dueler = DipDueler()
        dueler.psel = 0  # LRU leader misses less -> followers use LRU
        assert dueler.insert_at_mru(5) is True
        dueler.psel = dueler.psel_max  # LRU missing badly -> followers BIP
        decisions = [dueler.insert_at_mru(5) for _ in range(32)]
        assert decisions.count(False) == 31

    def test_dip_cache_end_to_end(self):
        cache = small_cache(dip=True)
        for i in range(64):
            cache.lookup(i * 64, LineKind.DATA)
            cache.fill(i * 64, LineKind.DATA)
        assert cache.stats.fills == 64


class TestOccupancy:
    def test_empty(self):
        occupancy = small_cache().occupancy_by_kind()
        assert occupancy[LineKind.DATA] == 0
        assert occupancy[LineKind.TLB] == 0

    def test_mixed(self):
        cache = small_cache(ways=2, sets=2)
        cache.fill(0x0, LineKind.DATA)
        cache.fill(0x40, LineKind.TLB)
        occupancy = cache.occupancy_by_kind()
        assert occupancy[LineKind.DATA] == pytest.approx(0.25)
        assert occupancy[LineKind.TLB] == pytest.approx(0.25)

    def test_sampled_scan_bounds(self):
        cache = small_cache(ways=2, sets=8)
        for i in range(16):
            cache.fill(i * 64, LineKind.DATA)
        sampled = cache.occupancy_by_kind(sample_shift=2)
        assert sampled[LineKind.DATA] == pytest.approx(1.0)


line_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),  # line number
        st.sampled_from([LineKind.DATA, LineKind.TLB]),
        st.booleans(),  # write
    ),
    max_size=200,
)


class TestCacheProperties:
    @given(line_ops)
    @settings(max_examples=50)
    def test_lookup_after_fill_always_hits(self, operations):
        cache = small_cache(ways=4, sets=4)
        for line, kind, is_write in operations:
            address = line * 64
            if not cache.lookup(address, kind, is_write):
                cache.fill(address, kind, dirty=is_write)
            assert cache.probe(address)

    @given(line_ops, st.integers(min_value=1, max_value=3))
    @settings(max_examples=50)
    def test_partition_never_overflows(self, operations, data_ways):
        cache = small_cache(ways=4, sets=4)
        cache.set_partition(data_ways)
        for line, kind, is_write in operations:
            address = line * 64
            if not cache.lookup(address, kind, is_write):
                cache.fill(address, kind, dirty=is_write)
        # Count lines by kind per set; each kind bounded by its partition
        # (all fills happened under the partition, so no stragglers).
        for set_index in range(cache.num_sets):
            base = set_index * cache.ways
            kinds = [
                cache._way_kind[base + w]
                for w in range(cache.ways)
                if cache._way_tag[base + w] != -1
            ]
            assert kinds.count(0) <= data_ways
            assert kinds.count(1) <= cache.ways - data_ways

    @given(line_ops)
    @settings(max_examples=50)
    def test_tag_map_consistent_with_ways(self, operations):
        cache = small_cache(ways=4, sets=4)
        for line, kind, is_write in operations:
            address = line * 64
            cache.lookup(address, kind) or cache.fill(address, kind)
        for set_index in range(cache.num_sets):
            for tag, way in cache._tag_to_way[set_index].items():
                assert cache._way_tag[set_index * cache.ways + way] == tag
