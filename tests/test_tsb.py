"""Unit tests for the Translation Storage Buffer baseline."""

import pytest

from repro.mem.address import Asid, PAGE_4K_BITS
from repro.tlb.tlb import TlbEntry
from repro.tlb.tsb import Tsb

A = Asid(0, 0)
B = Asid(0, 1)


def make_tsb(entries=1024):
    return Tsb("tsb", base_address=0x10_0000, num_entries=entries)


class TestGeometry:
    def test_power_of_two_entries(self):
        with pytest.raises(ValueError):
            Tsb("bad", 0, num_entries=1000)

    def test_slot_addresses_in_region(self):
        tsb = make_tsb()
        for va in (0x0, 0x1234_5000, 0xFFFF_F000):
            slot = tsb.slot_address(A, va, PAGE_4K_BITS)
            assert tsb.base_address <= slot < tsb.base_address + tsb.size_bytes

    def test_slots_pack_into_lines(self):
        tsb = make_tsb()
        assert tsb.entry_bytes == 16
        assert tsb.slot_address(A, 0x0, PAGE_4K_BITS) % 16 == 0


class TestProbeInsert:
    def test_miss_then_hit(self):
        tsb = make_tsb()
        assert tsb.probe(A, 0x5000, PAGE_4K_BITS) is None
        tsb.insert(A, 0x5000, TlbEntry(9, PAGE_4K_BITS))
        assert tsb.probe(A, 0x5000, PAGE_4K_BITS).frame_base == 9

    def test_direct_mapped_conflict_overwrites(self):
        tsb = make_tsb(entries=16)
        conflicting = 0x5000 + 16 * 4096  # same slot index
        tsb.insert(A, 0x5000, TlbEntry(1, PAGE_4K_BITS))
        tsb.insert(A, conflicting, TlbEntry(2, PAGE_4K_BITS))
        assert tsb.probe(A, 0x5000, PAGE_4K_BITS) is None
        assert tsb.probe(A, conflicting, PAGE_4K_BITS).frame_base == 2

    def test_asid_tag_checked(self):
        tsb = make_tsb()
        tsb.insert(A, 0x5000, TlbEntry(1, PAGE_4K_BITS))
        # B hashes to a different slot or fails the tag compare; either
        # way the probe must not return A's entry.
        assert tsb.probe(B, 0x5000, PAGE_4K_BITS) is None

    def test_stats(self):
        tsb = make_tsb()
        tsb.probe(A, 0x5000, PAGE_4K_BITS)
        tsb.insert(A, 0x5000, TlbEntry(1, PAGE_4K_BITS))
        tsb.probe(A, 0x5000, PAGE_4K_BITS)
        assert tsb.stats.probes == 2
        assert tsb.stats.hits == 1
        assert tsb.stats.misses == 1
        assert tsb.stats.hit_rate == pytest.approx(0.5)
        assert tsb.stats.insertions == 1

    def test_page_size_in_tag(self):
        """A 2 MB probe must not hit a 4 KB entry with a colliding VPN.

        (Found by hypothesis: VA 0 at 4 KB and VA 0x1000 at 2 MB share
        VPN 0 in their respective size domains.)
        """
        tsb = make_tsb()
        tsb.insert(A, 0x0, TlbEntry(7, PAGE_4K_BITS))
        assert tsb.probe(A, 0x1000, 21) is None
