"""Smoke tests for the full-report generator (tiny runs)."""

import pytest

import repro.experiments.runner as runner
from repro.experiments import report
from repro.experiments.store import ResultStore


@pytest.fixture(autouse=True)
def tiny_runs(monkeypatch):
    monkeypatch.setattr(runner, "DEFAULT_TOTAL_ACCESSES", 1_200)
    runner.clear_cache()
    runner.set_store(None)
    yield
    runner.clear_cache()
    runner.set_store(None)


class TestReport:
    def test_every_exhibit_has_a_runner(self):
        names = [name for name, _ in report.EXPERIMENTS]
        # The paper's 13 exhibits plus 3 ablations and 2 extensions.
        for figure in (1, 3, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16):
            assert f"figure{figure}" in names
        assert "table1" in names
        assert len(names) >= 18

    def test_paper_notes_cover_paper_exhibits(self):
        for name, _ in report.EXPERIMENTS:
            if name.startswith(("figure", "table")):
                assert name in report.PAPER_NOTES, name

    def test_generate_report_produces_sections(self, monkeypatch):
        # A representative subset keeps this a seconds-scale smoke test;
        # the benchmarks exercise every exhibit at full length.
        subset = [
            entry for entry in report.EXPERIMENTS
            if entry[0] in ("table1", "figure7", "figure8")
        ]
        monkeypatch.setattr(report, "EXPERIMENTS", subset)
        progress = []
        text = report.generate_report(progress=progress.append)
        assert len(progress) == len(subset)
        for heading in ("Figure 7", "Table 1", "Figure 8"):
            assert heading in text
        assert "geomean" in text

    def test_main_writes_file(self, tmp_path, monkeypatch):
        subset = [e for e in report.EXPERIMENTS if e[0] == "figure8"]
        monkeypatch.setattr(report, "EXPERIMENTS", subset)
        out = tmp_path / "report.md"
        assert report.main(["report", str(out)]) == 0
        assert "CSALT reproduction report" in out.read_text()

    def test_every_exhibit_has_a_point_enumerator(self):
        for name, _ in report.EXPERIMENTS:
            assert name in report.POINT_ENUMERATORS, name

    def test_enumerate_points_covers_subset(self):
        subset = [e for e in report.EXPERIMENTS if e[0] == "figure8"]
        points = report.enumerate_points(subset)
        assert len(points) == 10  # one POM-TLB run per mix
        assert all(p["scheme"] == "pom-tlb" for p in points)


class TestCampaignReport:
    def _subset(self, *names):
        return [e for e in report.EXPERIMENTS if e[0] in names]

    def test_store_backed_report(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        document = report.build_report(
            experiments=self._subset("figure8"), store=store,
        )
        assert document.complete
        assert document.statuses == {"figure8": "ok"}
        assert document.campaign is not None
        assert document.campaign.simulated == 10
        assert len(store) == 10

    def test_failing_point_degrades_to_partial(self, tmp_path, monkeypatch):
        real = runner.run_simulation

        def flaky(config, workloads, **kwargs):
            if kwargs.get("workload_name") == "canneal":
                raise RuntimeError("injected fault")
            return real(config, workloads, **kwargs)

        monkeypatch.setattr(runner, "run_simulation", flaky)
        store = ResultStore(tmp_path / "store")
        document = report.build_report(
            experiments=self._subset("figure8", "figure9"), store=store,
        )
        # figure8 needs canneal -> PARTIAL; figure9 (ccomp only) is fine.
        assert document.statuses == {"figure8": "partial", "figure9": "ok"}
        assert document.partial_exhibits == ["figure8"]
        assert "figure8 — PARTIAL" in document.text
        assert "injected fault" in document.text
        assert "Figure 9" in document.text  # rest of the report completed

    def test_resumed_report_is_identical(self, tmp_path, monkeypatch):
        """Interrupt mid-grid, resume: only missing points simulate and
        the report text matches an uninterrupted run byte for byte."""
        experiments = self._subset("figure8")
        store = ResultStore(tmp_path / "store")
        real = runner.run_simulation
        calls = []

        def interrupt_at_4(config, workloads, **kwargs):
            if len(calls) == 4:
                raise KeyboardInterrupt
            calls.append(kwargs.get("workload_name"))
            return real(config, workloads, **kwargs)

        monkeypatch.setattr(runner, "run_simulation", interrupt_at_4)
        with pytest.raises(KeyboardInterrupt):
            report.build_report(experiments=experiments, store=store)
        assert len(store) == 4

        # Resume: the store supplies the first 4, simulation the rest.
        monkeypatch.setattr(runner, "run_simulation", real)
        runner.clear_cache()
        resumed = report.build_report(
            experiments=experiments, store=store, resume=True,
        )
        assert resumed.campaign.loaded == 4
        assert resumed.campaign.simulated == 6
        assert resumed.complete

        # Uninterrupted control run, from scratch.
        runner.clear_cache()
        control_store = ResultStore(tmp_path / "control")
        control = report.build_report(
            experiments=experiments, store=control_store,
        )
        assert control.campaign.simulated == 10
        assert resumed.text == control.text
