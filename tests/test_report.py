"""Smoke tests for the full-report generator (tiny runs)."""

import pytest

import repro.experiments.runner as runner
from repro.experiments import report


@pytest.fixture(autouse=True)
def tiny_runs(monkeypatch):
    monkeypatch.setattr(runner, "DEFAULT_TOTAL_ACCESSES", 1_200)
    runner.clear_cache()
    yield
    runner.clear_cache()


class TestReport:
    def test_every_exhibit_has_a_runner(self):
        names = [name for name, _ in report.EXPERIMENTS]
        # The paper's 13 exhibits plus 3 ablations and 2 extensions.
        for figure in (1, 3, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16):
            assert f"figure{figure}" in names
        assert "table1" in names
        assert len(names) >= 18

    def test_paper_notes_cover_paper_exhibits(self):
        for name, _ in report.EXPERIMENTS:
            if name.startswith(("figure", "table")):
                assert name in report.PAPER_NOTES, name

    def test_generate_report_produces_sections(self, monkeypatch):
        # A representative subset keeps this a seconds-scale smoke test;
        # the benchmarks exercise every exhibit at full length.
        subset = [
            entry for entry in report.EXPERIMENTS
            if entry[0] in ("table1", "figure7", "figure8")
        ]
        monkeypatch.setattr(report, "EXPERIMENTS", subset)
        progress = []
        text = report.generate_report(progress=progress.append)
        assert len(progress) == len(subset)
        for heading in ("Figure 7", "Table 1", "Figure 8"):
            assert heading in text
        assert "geomean" in text

    def test_main_writes_file(self, tmp_path, monkeypatch):
        subset = [e for e in report.EXPERIMENTS if e[0] == "figure8"]
        monkeypatch.setattr(report, "EXPERIMENTS", subset)
        out = tmp_path / "report.md"
        assert report.main(["report", str(out)]) == 0
        assert "CSALT reproduction report" in out.read_text()
