"""``repro doctor``: store scan, orphan sweep, checkpoint probe, --fix."""

import json

import pytest

from repro.checkpoint import write_checkpoint
from repro.cli import main
from repro.core.schemes import Scheme
from repro.doctor import (
    check_checkpoint_round_trip,
    check_configuration,
    check_orphaned_temp_files,
    check_store_integrity,
    run_doctor,
)
from repro.errors import EXIT_DOCTOR
from repro.experiments import runner
from repro.experiments.store import ResultStore

TINY = dict(total_accesses=1_500)


@pytest.fixture(autouse=True)
def fresh_runner():
    runner.clear_cache()
    runner.set_store(None)
    yield
    runner.clear_cache()
    runner.set_store(None)


def populated_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    signature = runner.point_signature("gups", Scheme.POM_TLB, **TINY)
    result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
    path = store.save(signature, result)
    return store, path


class TestStoreIntegrity:
    def test_healthy_store(self, tmp_path):
        store, _ = populated_store(tmp_path)
        check = check_store_integrity(store.root)
        assert check.ok
        assert "1/1 entries verified" in check.notes[0]

    def test_unparseable_entry_flagged(self, tmp_path):
        store, path = populated_store(tmp_path)
        path.write_text("{ torn")
        check = check_store_integrity(store.root)
        assert not check.ok
        assert "unreadable" in check.problems[0]

    def test_wrong_filename_digest_flagged(self, tmp_path):
        store, path = populated_store(tmp_path)
        renamed = path.with_name("0" * 64 + ".json")
        path.rename(renamed)
        check = check_store_integrity(store.root)
        assert not check.ok
        assert "does not match filename" in check.problems[0]

    def test_schema_version_flagged(self, tmp_path):
        store, path = populated_store(tmp_path)
        document = json.loads(path.read_text())
        document["schema_version"] = 99
        path.write_text(json.dumps(document))
        check = check_store_integrity(store.root)
        assert not check.ok

    def test_fix_deletes_corrupt_entry(self, tmp_path):
        store, path = populated_store(tmp_path)
        path.write_text("{ torn")
        check = check_store_integrity(store.root, fix=True)
        assert check.ok
        assert check.fixed
        assert not path.exists()


class TestOrphanSweep:
    def test_store_and_checkpoint_orphans_found(self, tmp_path):
        store, _ = populated_store(tmp_path)
        (store.root / ".tmp-orphan.json").write_text("{}")
        nested = store.root / "checkpoints" / "deadbeef"
        nested.mkdir(parents=True)
        (nested / "snap.ckpt.abc.tmp").write_bytes(b"partial")
        check = check_orphaned_temp_files(store.root, [])
        assert len(check.problems) == 2

    def test_fix_removes_orphans(self, tmp_path):
        store, _ = populated_store(tmp_path)
        orphan = store.root / ".tmp-orphan.json"
        orphan.write_text("{}")
        check = check_orphaned_temp_files(store.root, [], fix=True)
        assert check.ok
        assert not orphan.exists()

    def test_explicit_checkpoint_dir(self, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        (ckpt_dir / "snap.ckpt.xyz.tmp").write_bytes(b"partial")
        check = check_orphaned_temp_files(None, [ckpt_dir])
        assert not check.ok

    def test_clean_dirs(self, tmp_path):
        check = check_orphaned_temp_files(tmp_path, [])
        assert check.ok


class TestCheckpointProbe:
    def test_probe_round_trips(self):
        check = check_checkpoint_round_trip()
        assert check.ok

    def test_existing_corrupt_snapshot_flagged(self, tmp_path):
        path = tmp_path / "ckpt-000000000001.ckpt"
        write_checkpoint(path, {"generation": 1})
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        check = check_checkpoint_round_trip([tmp_path])
        assert not check.ok
        assert "checksum" in check.problems[0]


class TestConfigurationCheck:
    def test_all_schemes_build(self):
        check = check_configuration()
        assert check.ok


class TestRunDoctor:
    def test_healthy_report(self, tmp_path):
        store, _ = populated_store(tmp_path)
        report = run_doctor(store_dir=str(store.root))
        assert report.ok
        assert report.to_dict()["ok"] is True
        assert "healthy" in report.format()

    def test_unhealthy_report_lists_problems(self, tmp_path):
        store, path = populated_store(tmp_path)
        path.write_text("{ torn")
        report = run_doctor(store_dir=str(store.root))
        assert not report.ok
        assert any("unreadable" in problem for problem in report.problems)

    def test_fix_then_healthy(self, tmp_path):
        store, path = populated_store(tmp_path)
        path.write_text("{ torn")
        (store.root / ".tmp-junk.json").write_text("{}")
        assert run_doctor(store_dir=str(store.root), fix=True).ok
        assert run_doctor(store_dir=str(store.root)).ok


class TestDoctorCli:
    def test_healthy_exit_zero(self, tmp_path, capsys):
        store, _ = populated_store(tmp_path)
        assert main(["doctor", "--store", str(store.root)]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_problems_exit_doctor_code(self, tmp_path, capsys):
        store, path = populated_store(tmp_path)
        path.write_text("{ torn")
        assert main(["doctor", "--store", str(store.root)]) == EXIT_DOCTOR
        captured = capsys.readouterr()
        assert "UNHEALTHY" in captured.out
        assert "--fix" in captured.err

    def test_fix_flag_cleans_and_exits_zero(self, tmp_path, capsys):
        store, path = populated_store(tmp_path)
        path.write_text("{ torn")
        assert main(["doctor", "--store", str(store.root), "--fix"]) == 0

    def test_json_output(self, tmp_path, capsys):
        store, _ = populated_store(tmp_path)
        assert main(["doctor", "--store", str(store.root), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert {check["name"] for check in document["checks"]} >= {
            "store integrity", "orphaned temp files",
            "checkpoint round-trip", "configuration",
        }
