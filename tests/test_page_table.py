"""Unit and property tests for the radix page tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.address import PAGE_2M, PAGE_2M_BITS, PAGE_4K, PAGE_4K_BITS
from repro.vm.page_table import PageTable
from repro.vm.physical_memory import FrameAllocator


def make_table(frames=1 << 20):
    return PageTable(FrameAllocator(base_frame=0, num_frames=frames))


virtual_addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)


class TestMapping:
    def test_map_then_lookup(self):
        table = make_table()
        translation = table.map_page(0x1234_5000)
        found = table.lookup(0x1234_5678)
        assert found is not None
        assert found.frame_base == translation.frame_base
        assert found.page_bits == PAGE_4K_BITS

    def test_unmapped_returns_none(self):
        assert make_table().lookup(0xDEAD_B000) is None

    def test_map_idempotent(self):
        table = make_table()
        first = table.map_page(0x1000)
        second = table.map_page(0x1fff)
        assert first.frame_base == second.frame_base
        assert table.pages_mapped == 1

    def test_huge_page_mapping(self):
        table = make_table()
        table.map_page(0x0, PAGE_2M_BITS)
        found = table.lookup(PAGE_2M - 1)
        assert found.page_bits == PAGE_2M_BITS
        assert table.lookup(PAGE_2M) is None

    def test_huge_page_contiguous_frames(self):
        table = make_table()
        translation = table.map_page(0x0, PAGE_2M_BITS)
        physical = translation.physical_address(PAGE_4K * 3 + 17)
        assert physical == (translation.frame_base << PAGE_4K_BITS) + (
            PAGE_4K * 3 + 17
        )

    def test_page_size_conflicts_rejected(self):
        table = make_table()
        table.map_page(0x0, PAGE_4K_BITS)
        with pytest.raises(ValueError, match="conflict"):
            table.map_page(0x1000, PAGE_2M_BITS)
        other = make_table()
        other.map_page(0x0, PAGE_2M_BITS)
        with pytest.raises(ValueError, match="conflict"):
            other.map_page(0x1000, PAGE_4K_BITS)

    def test_unsupported_page_size(self):
        with pytest.raises(ValueError):
            make_table().map_page(0, 30)

    def test_node_accounting(self):
        table = make_table()
        assert table.nodes_allocated == 1  # root
        table.map_page(0x0)
        assert table.nodes_allocated == 4  # root + L3 + L2 + L1
        table.map_page(0x1000)  # same leaf node
        assert table.nodes_allocated == 4
        assert table.table_bytes == 4 * PAGE_4K

    @given(st.lists(virtual_addresses, min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_roundtrip_many(self, addresses):
        table = make_table()
        expected = {}
        for address in addresses:
            translation = table.map_page(address)
            expected[address >> PAGE_4K_BITS] = translation.frame_base
        for address in addresses:
            found = table.lookup(address)
            assert found.frame_base == expected[address >> PAGE_4K_BITS]

    @given(st.lists(virtual_addresses, min_size=2, max_size=40, unique=True))
    @settings(max_examples=40)
    def test_distinct_pages_distinct_frames(self, addresses):
        table = make_table()
        frames = [table.map_page(a).frame_base for a in addresses]
        by_page = {}
        for address, frame in zip(addresses, frames):
            by_page.setdefault(address >> PAGE_4K_BITS, set()).add(frame)
        seen = set()
        for frames_of_page in by_page.values():
            assert len(frames_of_page) == 1
            frame = next(iter(frames_of_page))
            assert frame not in seen
            seen.add(frame)


class TestWalkAddresses:
    def test_full_walk_has_four_entries(self):
        table = make_table()
        table.map_page(0x1000)
        addresses, translation = table.walk_addresses(0x1000)
        assert len(addresses) == 4
        assert translation is not None

    def test_huge_walk_has_three_entries(self):
        table = make_table()
        table.map_page(0x0, PAGE_2M_BITS)
        addresses, translation = table.walk_addresses(0x123)
        assert len(addresses) == 3
        assert translation.page_bits == PAGE_2M_BITS

    def test_psc_shortcut_reads_fewer_entries(self):
        table = make_table()
        table.map_page(0x1000)
        addresses, _ = table.walk_addresses(0x1000, start_level=1)
        assert len(addresses) == 1

    def test_unmapped_walk_returns_none(self):
        table = make_table()
        addresses, translation = table.walk_addresses(0x1000)
        assert translation is None
        # The walker reads the root entry and finds it not-present.
        assert len(addresses) == 1

    def test_partially_mapped_walk(self):
        table = make_table()
        table.map_page(0x1000)
        # A sibling page in the same leaf node: walk descends fully but
        # finds no PTE.
        addresses, translation = table.walk_addresses(0x2000)
        assert translation is None
        assert len(addresses) == 4

    def test_entry_addresses_within_nodes(self):
        table = make_table()
        table.map_page(0x1000)
        addresses, _ = table.walk_addresses(0x1000)
        for entry_address in addresses:
            assert entry_address % 8 == 0

    def test_walk_entries_distinct_nodes(self):
        table = make_table()
        table.map_page(0x1000)
        addresses, _ = table.walk_addresses(0x1000)
        nodes = {a >> PAGE_4K_BITS for a in addresses}
        assert len(nodes) == 4

    def test_node_at_level(self):
        table = make_table()
        table.map_page(0x1000)
        assert table.node_at_level(0x1000, 4) is table.root
        leaf = table.node_at_level(0x1000, 1)
        assert leaf is not None and leaf.level == 1
        assert table.node_at_level(0xFFFF_F000_0000, 1) is None
