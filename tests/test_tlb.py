"""Unit tests for the on-chip TLBs."""

import pytest

from repro.mem.address import Asid, PAGE_2M_BITS, PAGE_4K_BITS
from repro.tlb.tlb import L1TlbPair, Tlb, TlbEntry

A = Asid(0, 0)
B = Asid(1, 0)


def entry_4k(frame=7):
    return TlbEntry(frame_base=frame, page_bits=PAGE_4K_BITS)


def entry_2m(frame=512):
    return TlbEntry(frame_base=frame, page_bits=PAGE_2M_BITS)


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb("t", 16, 4, 1)
        assert tlb.lookup(A, 0x1234) is None
        tlb.insert(A, 0x1234, entry_4k())
        assert tlb.lookup(A, 0x1777) is not None  # same page
        assert tlb.lookup(A, 0x2000) is None

    def test_entries_divisible_by_ways(self):
        with pytest.raises(ValueError):
            Tlb("bad", 10, 4, 1)

    def test_asid_isolation(self):
        tlb = Tlb("t", 16, 4, 1)
        tlb.insert(A, 0x1000, entry_4k())
        assert tlb.lookup(B, 0x1000) is None

    def test_unsupported_page_size_rejected(self):
        tlb = Tlb("t", 16, 4, 1, page_bits_supported=(PAGE_4K_BITS,))
        with pytest.raises(ValueError):
            tlb.insert(A, 0, entry_2m())

    def test_unified_holds_both_sizes(self):
        tlb = Tlb("t", 24, 12, 1, page_bits_supported=(PAGE_4K_BITS, PAGE_2M_BITS))
        tlb.insert(A, 0x1000, entry_4k())
        tlb.insert(A, 0x40_0000, entry_2m())
        assert tlb.lookup(A, 0x1000).page_bits == PAGE_4K_BITS
        assert tlb.lookup(A, 0x40_0000).page_bits == PAGE_2M_BITS

    def test_lru_eviction_within_set(self):
        tlb = Tlb("t", 2, 2, 1)  # one set, two ways
        tlb.insert(A, 0x0000, entry_4k(1))
        tlb.insert(A, 0x1000, entry_4k(2))
        tlb.lookup(A, 0x0000)  # page 0 becomes MRU
        tlb.insert(A, 0x2000, entry_4k(3))
        assert tlb.lookup(A, 0x1000) is None
        assert tlb.lookup(A, 0x0000) is not None
        assert tlb.stats.evictions == 1

    def test_reinsert_updates(self):
        tlb = Tlb("t", 4, 4, 1)
        tlb.insert(A, 0x1000, entry_4k(1))
        tlb.insert(A, 0x1000, entry_4k(9))
        assert tlb.lookup(A, 0x1000).frame_base == 9
        assert tlb.stats.insertions == 1

    def test_invalidate_asid(self):
        tlb = Tlb("t", 8, 4, 1)
        tlb.insert(A, 0x1000, entry_4k())
        tlb.insert(B, 0x1000, entry_4k())
        dropped = tlb.invalidate_asid(A)
        assert dropped == 1
        assert tlb.lookup(A, 0x1000) is None
        assert tlb.lookup(B, 0x1000) is not None

    def test_occupancy(self):
        tlb = Tlb("t", 8, 4, 1)
        assert tlb.occupancy() == 0
        tlb.insert(A, 0x1000, entry_4k())
        assert tlb.occupancy() == pytest.approx(1 / 8)

    def test_stats(self):
        tlb = Tlb("t", 8, 4, 1)
        tlb.lookup(A, 0)
        tlb.insert(A, 0, entry_4k())
        tlb.lookup(A, 0)
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        assert tlb.stats.miss_rate == pytest.approx(0.5)
        tlb.reset_stats()
        assert tlb.stats.accesses == 0


class TestL1TlbPair:
    def test_routes_by_page_size(self):
        pair = L1TlbPair()
        pair.insert(A, 0x1000, entry_4k())
        pair.insert(A, 0x40_0000, entry_2m(frame=1024))
        assert pair.tlb_4k.occupancy() > 0
        assert pair.tlb_2m.occupancy() > 0

    def test_lookup_checks_both(self):
        pair = L1TlbPair()
        pair.insert(A, 0x40_0000, entry_2m(frame=1024))
        found = pair.lookup(A, 0x40_0123)
        assert found is not None
        assert found.page_bits == PAGE_2M_BITS

    def test_demand_misses_counted_once(self):
        pair = L1TlbPair()
        pair.lookup(A, 0x1000)
        assert pair.misses == 1

    def test_hits_aggregate(self):
        pair = L1TlbPair()
        pair.insert(A, 0x1000, entry_4k())
        pair.lookup(A, 0x1000)
        assert pair.hits == 1


class TestProbe:
    def test_probe_does_not_touch_stats(self):
        tlb = Tlb("t", 16, 4, 1)
        tlb.insert(A, 0x1000, entry_4k())
        before = (tlb.stats.hits, tlb.stats.misses)
        assert tlb.probe(A, 0x1000) is not None
        assert tlb.probe(A, 0x9000) is None
        assert (tlb.stats.hits, tlb.stats.misses) == before

    def test_probe_does_not_promote(self):
        tlb = Tlb("t", 2, 2, 1)
        tlb.insert(A, 0x0000, entry_4k(1))
        tlb.insert(A, 0x1000, entry_4k(2))
        tlb.probe(A, 0x0000)  # no recency update
        tlb.insert(A, 0x2000, entry_4k(3))
        assert tlb.probe(A, 0x0000) is None  # page 0 was still LRU


class TestInvalidatePage:
    def test_drops_only_target(self):
        tlb = Tlb("t", 8, 4, 1)
        tlb.insert(A, 0x1000, entry_4k())
        tlb.insert(A, 0x2000, entry_4k())
        assert tlb.invalidate_page(A, 0x1000) == 1
        assert tlb.probe(A, 0x1000) is None
        assert tlb.probe(A, 0x2000) is not None

    def test_asid_scoped(self):
        tlb = Tlb("t", 8, 4, 1)
        tlb.insert(A, 0x1000, entry_4k())
        assert tlb.invalidate_page(B, 0x1000) == 0
        assert tlb.probe(A, 0x1000) is not None

    def test_pair_invalidate_both_sizes(self):
        pair = L1TlbPair()
        pair.insert(A, 0x1000, entry_4k())
        pair.insert(A, 0x0, entry_2m(frame=0))
        dropped = pair.invalidate_page(A, 0x1000)
        # 0x1000 falls inside both the 4K page and the 2M page.
        assert dropped == 2
