"""Unit tests for statistics containers and derived metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    CoreStats,
    OccupancySample,
    SimulationResult,
    geometric_mean,
)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                    max_size=20))
    def test_bounded_by_min_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestCoreStats:
    def test_ipc(self):
        core = CoreStats(instructions=100, cycles=50.0)
        assert core.ipc == pytest.approx(2.0)
        assert CoreStats().ipc == 0.0

    def test_l2_tlb_mpki(self):
        core = CoreStats(instructions=10_000, l2_tlb_misses=50)
        assert core.l2_tlb_mpki == pytest.approx(5.0)
        assert CoreStats().l2_tlb_mpki == 0.0


def make_result(**overrides):
    defaults = dict(
        scheme="pom-tlb",
        workload="gups",
        per_core=[
            CoreStats(instructions=1000, cycles=2000.0, l2_tlb_misses=20,
                      page_walks=2),
            CoreStats(instructions=1000, cycles=1000.0, l2_tlb_misses=30,
                      page_walks=3),
        ],
        l2_cache_misses=100,
        l2_cache_accesses=1000,
        l3_cache_misses=40,
        l3_cache_accesses=200,
        l3_data_hit_rate=0.5,
        pom_hits=45,
        pom_misses=5,
        walk_mean_cycles=200.0,
        walk_count=5,
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_ipc_is_geomean_of_cores(self):
        result = make_result()
        assert result.ipc == pytest.approx(math.sqrt(0.5 * 1.0))

    def test_aggregates(self):
        result = make_result()
        assert result.instructions == 2000
        assert result.l2_tlb_misses == 50
        assert result.page_walks == 5

    def test_mpki(self):
        result = make_result()
        assert result.l2_tlb_mpki == pytest.approx(25.0)
        assert result.l2_cache_mpki == pytest.approx(50.0)
        assert result.l3_cache_mpki == pytest.approx(20.0)

    def test_walks_eliminated(self):
        result = make_result()
        assert result.walks_eliminated_fraction == pytest.approx(0.9)

    def test_walks_eliminated_no_misses(self):
        result = make_result(per_core=[CoreStats()])
        assert result.walks_eliminated_fraction == 0.0

    def test_pom_hit_rate(self):
        assert make_result().pom_hit_rate == pytest.approx(0.9)

    def test_walk_cycles_per_l2_miss(self):
        result = make_result()
        assert result.walk_cycles_per_l2_miss == pytest.approx(20.0)

    def test_speedup_over(self):
        fast = make_result(per_core=[CoreStats(instructions=100, cycles=50.0)])
        slow = make_result(per_core=[CoreStats(instructions=100, cycles=100.0)])
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_occupancy_means(self):
        result = make_result(occupancy_samples=[
            OccupancySample(0, 0.2, 0.4),
            OccupancySample(1, 0.4, 0.8),
        ])
        assert result.mean_l2_tlb_occupancy == pytest.approx(0.3)
        assert result.mean_l3_tlb_occupancy == pytest.approx(0.6)
        assert make_result().mean_l3_tlb_occupancy == 0.0
