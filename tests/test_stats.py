"""Unit tests for statistics containers and derived metrics."""

import json
import math
import warnings

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    CoreStats,
    OccupancySample,
    SimulationResult,
    geometric_mean,
)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_ignores_nonpositive(self):
        with pytest.warns(RuntimeWarning, match="dropped 1 non-positive"):
            assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)

    def test_warns_on_negative(self):
        with pytest.warns(RuntimeWarning, match="dropped 2 non-positive"):
            assert geometric_mean([-1.0, 0.0, 9.0]) == pytest.approx(9.0)

    def test_no_warning_for_all_positive(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_no_warning_for_empty(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert geometric_mean([]) == 0.0

    def test_all_nonpositive_returns_zero(self):
        with pytest.warns(RuntimeWarning):
            assert geometric_mean([0.0, -3.0]) == 0.0

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                    max_size=20))
    def test_bounded_by_min_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestCoreStats:
    def test_ipc(self):
        core = CoreStats(instructions=100, cycles=50.0)
        assert core.ipc == pytest.approx(2.0)
        assert CoreStats().ipc == 0.0

    def test_l2_tlb_mpki(self):
        core = CoreStats(instructions=10_000, l2_tlb_misses=50)
        assert core.l2_tlb_mpki == pytest.approx(5.0)
        assert CoreStats().l2_tlb_mpki == 0.0


def make_result(**overrides):
    defaults = dict(
        scheme="pom-tlb",
        workload="gups",
        per_core=[
            CoreStats(instructions=1000, cycles=2000.0, l2_tlb_misses=20,
                      page_walks=2),
            CoreStats(instructions=1000, cycles=1000.0, l2_tlb_misses=30,
                      page_walks=3),
        ],
        l2_cache_misses=100,
        l2_cache_accesses=1000,
        l3_cache_misses=40,
        l3_cache_accesses=200,
        l3_data_hit_rate=0.5,
        pom_hits=45,
        pom_misses=5,
        walk_mean_cycles=200.0,
        walk_count=5,
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_ipc_is_geomean_of_cores(self):
        result = make_result()
        assert result.ipc == pytest.approx(math.sqrt(0.5 * 1.0))

    def test_aggregates(self):
        result = make_result()
        assert result.instructions == 2000
        assert result.l2_tlb_misses == 50
        assert result.page_walks == 5

    def test_mpki(self):
        result = make_result()
        assert result.l2_tlb_mpki == pytest.approx(25.0)
        assert result.l2_cache_mpki == pytest.approx(50.0)
        assert result.l3_cache_mpki == pytest.approx(20.0)

    def test_walks_eliminated(self):
        result = make_result()
        assert result.walks_eliminated_fraction == pytest.approx(0.9)

    def test_walks_eliminated_no_misses(self):
        result = make_result(per_core=[CoreStats()])
        assert result.walks_eliminated_fraction == 0.0

    def test_pom_hit_rate(self):
        assert make_result().pom_hit_rate == pytest.approx(0.9)

    def test_walk_cycles_per_l2_miss(self):
        result = make_result()
        assert result.walk_cycles_per_l2_miss == pytest.approx(20.0)

    def test_speedup_over(self):
        fast = make_result(per_core=[CoreStats(instructions=100, cycles=50.0)])
        slow = make_result(per_core=[CoreStats(instructions=100, cycles=100.0)])
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_occupancy_means(self):
        result = make_result(occupancy_samples=[
            OccupancySample(0, 0.2, 0.4),
            OccupancySample(1, 0.4, 0.8),
        ])
        assert result.mean_l2_tlb_occupancy == pytest.approx(0.3)
        assert result.mean_l3_tlb_occupancy == pytest.approx(0.6)
        assert make_result().mean_l3_tlb_occupancy == 0.0


class TestEdgeCases:
    """Zero-instruction cores, empty samples, zero-IPC baselines."""

    def test_zero_instruction_core_drops_from_geomean(self):
        result = make_result(per_core=[
            CoreStats(instructions=1000, cycles=1000.0),
            CoreStats(),  # never executed: ipc == 0
        ])
        with pytest.warns(RuntimeWarning):
            assert result.ipc == pytest.approx(1.0)

    def test_all_dead_cores_ipc_zero(self):
        result = make_result(per_core=[CoreStats(), CoreStats()])
        with pytest.warns(RuntimeWarning):
            assert result.ipc == 0.0

    def test_zero_instruction_mpki_zero(self):
        result = make_result(
            per_core=[CoreStats()], l2_cache_misses=5, l3_cache_misses=5
        )
        assert result.l2_tlb_mpki == 0.0
        assert result.l2_cache_mpki == 0.0
        assert result.l3_cache_mpki == 0.0

    def test_empty_occupancy_samples(self):
        result = make_result(occupancy_samples=[])
        assert result.mean_l2_tlb_occupancy == 0.0
        assert result.mean_l3_tlb_occupancy == 0.0

    def test_speedup_over_zero_ipc_baseline(self):
        fast = make_result()
        dead = make_result(per_core=[CoreStats()])
        with pytest.warns(RuntimeWarning):
            assert fast.speedup_over(dead) == 0.0

    def test_walk_cycles_per_l2_miss_no_misses(self):
        result = make_result(per_core=[CoreStats(instructions=10, cycles=5.0)])
        assert result.walk_cycles_per_l2_miss == 0.0


class TestToDict:
    def test_round_trips_through_json(self):
        result = make_result(
            occupancy_samples=[OccupancySample(10, 0.2, 0.4)],
            l3_partition_timeline=[(0, 0.5), (100, 0.25)],
            extra={"context_switches": 4.0},
        )
        document = json.loads(json.dumps(result.to_dict()))
        assert document["scheme"] == "pom-tlb"
        assert document["workload"] == "gups"
        assert document["instructions"] == 2000
        assert document["ipc"] == pytest.approx(result.ipc)
        assert document["l2_tlb_mpki"] == pytest.approx(25.0)
        assert document["pom_hit_rate"] == pytest.approx(0.9)
        assert len(document["per_core"]) == 2
        assert document["per_core"][0]["ipc"] == pytest.approx(0.5)
        assert document["occupancy_samples"] == [
            {"access_count": 10, "l2_tlb_fraction": 0.2, "l3_tlb_fraction": 0.4}
        ]
        assert document["l3_partition_timeline"] == [[0, 0.5], [100, 0.25]]
        assert document["extra"]["context_switches"] == 4.0

    def test_core_stats_to_dict(self):
        core = CoreStats(instructions=1000, cycles=500.0, l2_tlb_misses=10)
        document = core.to_dict()
        assert document["ipc"] == pytest.approx(2.0)
        assert document["l2_tlb_mpki"] == pytest.approx(10.0)
        assert document["instructions"] == 1000


class TestFromDict:
    def test_simulation_result_round_trip(self):
        result = make_result(
            occupancy_samples=[OccupancySample(10, 0.2, 0.4)],
            l2_partition_timeline=[(50, 0.75)],
            l3_partition_timeline=[(0, 0.5), (100, 0.25)],
            extra={"context_switches": 4, "seed": 7},
        )
        clone = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone.to_dict() == result.to_dict()
        assert clone.l3_partition_timeline == [(0, 0.5), (100, 0.25)]
        assert clone.occupancy_samples == result.occupancy_samples

    def test_ints_stay_ints_through_json(self):
        result = make_result(extra={"context_switches": 4, "seed": 7})
        clone = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone.extra["context_switches"] == 4
        assert isinstance(clone.extra["context_switches"], int)
        assert isinstance(clone.extra["seed"], int)
        assert isinstance(clone.per_core[0].instructions, int)
        assert isinstance(clone.l2_cache_misses, int)

    def test_derived_metrics_recomputed_not_trusted(self):
        result = make_result()
        document = result.to_dict()
        document["ipc"] = 999.0  # tampering with a derived field is inert
        clone = SimulationResult.from_dict(document)
        assert clone.ipc == pytest.approx(result.ipc)

    def test_core_stats_round_trip(self):
        core = CoreStats(
            instructions=1000, cycles=500.0, memory_accesses=300,
            translation_stall_cycles=12.5, data_stall_cycles=7.25,
            l1_tlb_misses=20, l2_tlb_misses=10, page_walks=3,
        )
        assert CoreStats.from_dict(core.to_dict()) == core

    def test_occupancy_sample_round_trip(self):
        sample = OccupancySample(10, 0.2, 0.4)
        assert OccupancySample.from_dict(sample.to_dict()) == sample
