"""Smoke tests for the experiment harness (tiny runs)."""

import pytest

from repro.core.schemes import Scheme
from repro.experiments import figures
from repro.experiments.runner import cache_size, clear_cache, run_point
from repro.experiments.tables import format_table

TINY = dict(total_accesses=1_500)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunner:
    def test_run_point_returns_result(self):
        result = run_point("gups", Scheme.POM_TLB, **TINY)
        assert result.scheme == "pom-tlb"
        assert result.instructions > 0

    def test_caching(self):
        first = run_point("gups", Scheme.POM_TLB, **TINY)
        size = cache_size()
        second = run_point("gups", Scheme.POM_TLB, **TINY)
        assert second is first
        assert cache_size() == size

    def test_distinct_keys_not_cached_together(self):
        run_point("gups", Scheme.POM_TLB, **TINY)
        run_point("gups", Scheme.POM_TLB, contexts=1, **TINY)
        assert cache_size() == 2

    def test_partial_partition_runs(self):
        result = run_point(
            "gups", Scheme.CSALT_CD, partition_l2_only=True, **TINY
        )
        assert result.instructions > 0


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "2.500" in text


class TestFigures:
    def test_figure1_rows(self):
        result = figures.run_figure1(mixes=("gups",), **TINY)
        assert result.rows[0][0] == "gups"
        assert result.rows[-1][0] == "geomean"
        assert "Figure 1" in result.format()

    def test_table1_rows(self):
        result = figures.run_table1(programs=("gups",), **TINY)
        assert len(result.rows) == 1
        native, virtualized = result.rows[0][1], result.rows[0][2]
        assert native >= 0 and virtualized >= 0

    def test_figure7_normalized_to_pom(self):
        result = figures.run_figure7(
            mixes=("gups",), schemes=(Scheme.POM_TLB,), **TINY
        )
        assert result.rows[0][1] == pytest.approx(1.0)

    def test_figure8_fraction_range(self):
        result = figures.run_figure8(mixes=("gups",), **TINY)
        assert 0.0 <= result.rows[0][1] <= 1.0

    def test_figure9_timeline(self):
        result = figures.run_figure9(mix="gups", **TINY)
        assert result.l3_series
        assert result.variation() >= 0.0
        assert "Figure 9" in result.format()

    def test_figure14_context_columns(self):
        result = figures.run_figure14(
            mixes=("gups",), context_counts=(1, 2), **TINY
        )
        assert len(result.rows[0]) == 3

    def test_figure15_default_epoch_is_unity(self):
        result = figures.run_figure15(
            mixes=("gups",), epochs=(1_000, 2_000), **TINY
        )
        # The middle epoch (index len//2 = 1 -> 2000) is the baseline.
        assert result.rows[0][2] == pytest.approx(1.0)

    def test_runs_shared_between_figures(self):
        figures.run_figure7(mixes=("gups",), **TINY)
        size = cache_size()
        figures.run_figure8(mixes=("gups",), **TINY)
        assert cache_size() == size  # figure 8 reused figure 7's POM run
