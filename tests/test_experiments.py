"""Smoke tests for the experiment harness (tiny runs)."""

import pytest

from repro.core.schemes import Scheme
from repro.experiments import ablations, figures
from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    cache_size,
    clear_cache,
    default_seed,
    default_total_accesses,
    point_from_signature,
    point_signature,
    run_point,
)
from repro.experiments.tables import format_table

TINY = dict(total_accesses=1_500)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunner:
    def test_run_point_returns_result(self):
        result = run_point("gups", Scheme.POM_TLB, **TINY)
        assert result.scheme == "pom-tlb"
        assert result.instructions > 0

    def test_caching(self):
        first = run_point("gups", Scheme.POM_TLB, **TINY)
        size = cache_size()
        second = run_point("gups", Scheme.POM_TLB, **TINY)
        assert second is first
        assert cache_size() == size

    def test_distinct_keys_not_cached_together(self):
        run_point("gups", Scheme.POM_TLB, **TINY)
        run_point("gups", Scheme.POM_TLB, contexts=1, **TINY)
        assert cache_size() == 2

    def test_partial_partition_runs(self):
        result = run_point(
            "gups", Scheme.CSALT_CD, partition_l2_only=True, **TINY
        )
        assert result.instructions > 0


class TestLazyDefaults:
    """REPRO_TOTAL_ACCESSES / REPRO_SEED are read per call, not at import."""

    def test_env_change_takes_effect_without_reimport(self, monkeypatch):
        monkeypatch.setenv("REPRO_TOTAL_ACCESSES", "7777")
        monkeypatch.setenv("REPRO_SEED", "42")
        assert default_total_accesses() == 7777
        assert default_seed() == 42
        monkeypatch.setenv("REPRO_TOTAL_ACCESSES", "8888")
        assert default_total_accesses() == 8888

    def test_env_flows_into_signature(self, monkeypatch):
        monkeypatch.setenv("REPRO_TOTAL_ACCESSES", "3333")
        monkeypatch.setenv("REPRO_SEED", "9")
        signature = point_signature("gups", Scheme.POM_TLB)
        assert signature["total_accesses"] == 3333
        assert signature["seed"] == 9

    def test_monkeypatched_module_constant_still_works(self, monkeypatch):
        monkeypatch.delenv("REPRO_TOTAL_ACCESSES", raising=False)
        monkeypatch.setattr(runner_module, "DEFAULT_TOTAL_ACCESSES", 123)
        assert default_total_accesses() == 123

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TOTAL_ACCESSES", "3333")
        signature = point_signature("gups", Scheme.POM_TLB, total_accesses=55)
        assert signature["total_accesses"] == 55


class TestSignatures:
    def test_signature_round_trips_to_kwargs(self):
        signature = point_signature(
            "gups", Scheme.CSALT_CD, replacement="nru", **TINY
        )
        kwargs = point_from_signature(signature)
        assert kwargs["scheme"] is Scheme.CSALT_CD
        assert kwargs["replacement"] == "nru"
        assert kwargs["total_accesses"] == 1_500

    def test_signature_is_json_able(self):
        import json

        signature = point_signature("gups", Scheme.POM_TLB, **TINY)
        assert json.loads(json.dumps(signature)) == signature


#: (run function, points function, restricted kwargs) for every exhibit.
ENUMERATOR_CASES = [
    (figures.run_figure1, figures.points_figure1, dict(mixes=("gups",))),
    (figures.run_table1, figures.points_table1, dict(programs=("gups",))),
    (figures.run_figure3, figures.points_figure3, dict(programs=("gups",))),
    (figures.run_figure7, figures.points_figure7, dict(mixes=("gups",))),
    (figures.run_figure8, figures.points_figure8, dict(mixes=("gups",))),
    (figures.run_figure9, figures.points_figure9, dict(mix="gups")),
    (figures.run_figure10, figures.points_figure10, dict(mixes=("gups",))),
    (figures.run_figure11, figures.points_figure11, dict(mixes=("gups",))),
    (figures.run_figure12, figures.points_figure12, dict(mixes=("gups",))),
    (figures.run_figure13, figures.points_figure13, dict(mixes=("gups",))),
    (figures.run_figure14, figures.points_figure14,
     dict(mixes=("gups",), context_counts=(1, 2))),
    (figures.run_figure15, figures.points_figure15,
     dict(mixes=("gups",), epochs=(1_000, 2_000))),
    (figures.run_figure16, figures.points_figure16,
     dict(mixes=("gups",), intervals_ms=(5.0, 10.0))),
    (ablations.run_static_vs_dynamic, ablations.points_static_vs_dynamic,
     dict(mixes=("gups",))),
    (ablations.run_pseudo_lru, ablations.points_pseudo_lru,
     dict(mixes=("gups",))),
    (ablations.run_partition_levels, ablations.points_partition_levels,
     dict(mixes=("gups",))),
    (ablations.run_five_level_paging, ablations.points_five_level_paging,
     dict(mixes=("gups",))),
    (ablations.run_tlb_prefetch, ablations.points_tlb_prefetch,
     dict(mixes=("gups",))),
]


class TestPointEnumeration:
    """The points_* mirrors must match what the run_* loops simulate —
    otherwise a campaign would silently fall back to inline simulation."""

    @pytest.mark.parametrize(
        "run_fn,points_fn,kwargs",
        ENUMERATOR_CASES,
        ids=[case[0].__name__ for case in ENUMERATOR_CASES],
    )
    def test_enumerated_points_match_simulated(self, run_fn, points_fn, kwargs):
        enumerated = {
            runner_module._cache_key(signature)
            for signature in points_fn(**kwargs, **TINY)
        }
        clear_cache()
        run_fn(**kwargs, **TINY)
        simulated = set(runner_module._cache)
        assert simulated == enumerated


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "2.500" in text


class TestFigures:
    def test_figure1_rows(self):
        result = figures.run_figure1(mixes=("gups",), **TINY)
        assert result.rows[0][0] == "gups"
        assert result.rows[-1][0] == "geomean"
        assert "Figure 1" in result.format()

    def test_table1_rows(self):
        result = figures.run_table1(programs=("gups",), **TINY)
        assert len(result.rows) == 1
        native, virtualized = result.rows[0][1], result.rows[0][2]
        assert native >= 0 and virtualized >= 0

    def test_figure7_normalized_to_pom(self):
        result = figures.run_figure7(
            mixes=("gups",), schemes=(Scheme.POM_TLB,), **TINY
        )
        assert result.rows[0][1] == pytest.approx(1.0)

    def test_figure8_fraction_range(self):
        result = figures.run_figure8(mixes=("gups",), **TINY)
        assert 0.0 <= result.rows[0][1] <= 1.0

    def test_figure9_timeline(self):
        result = figures.run_figure9(mix="gups", **TINY)
        assert result.l3_series
        assert result.variation() >= 0.0
        assert "Figure 9" in result.format()

    def test_figure14_context_columns(self):
        result = figures.run_figure14(
            mixes=("gups",), context_counts=(1, 2), **TINY
        )
        assert len(result.rows[0]) == 3

    def test_figure15_default_epoch_is_unity(self):
        result = figures.run_figure15(
            mixes=("gups",), epochs=(1_000, 2_000), **TINY
        )
        # The middle epoch (index len//2 = 1 -> 2000) is the baseline.
        assert result.rows[0][2] == pytest.approx(1.0)

    def test_runs_shared_between_figures(self):
        figures.run_figure7(mixes=("gups",), **TINY)
        size = cache_size()
        figures.run_figure8(mixes=("gups",), **TINY)
        assert cache_size() == size  # figure 8 reused figure 7's POM run
