"""The perf-bench harness: matrix runs, artifacts, baseline gating."""

import json
import pathlib

import pytest

from repro.experiments.bench import (
    BenchError,
    FULL_MATRIX,
    MICRO_COMPONENTS,
    QUICK_MATRIX,
    SCHEMA_VERSION,
    compare_bench,
    format_bench,
    format_micro_bench,
    load_bench,
    run_bench,
    run_micro_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def quick_document():
    """One tiny real benchmark run shared by the assertions below."""
    return run_bench(quick=True, accesses=600)


class TestRunBench:
    def test_document_shape(self, quick_document):
        document = quick_document
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["quick"] is True
        assert document["accesses_per_point"] == 600
        assert len(document["points"]) == len(QUICK_MATRIX)
        assert document["aggregate_accesses_per_second"] > 0

    def test_point_fields(self, quick_document):
        for point in quick_document["points"]:
            assert point["host_seconds"] > 0
            assert point["accesses_per_second"] > 0
            assert point["sim_cycles_per_second"] > 0
            mix, scheme, replacement = point["point"].split("/")
            assert point["mix"] == mix
            assert point["scheme"] == scheme
            assert point["replacement"] == replacement

    def test_full_matrix_superset_of_quick(self):
        quick_ids = {tuple(sorted(p.items())) for p in QUICK_MATRIX}
        full_ids = {tuple(sorted(p.items())) for p in FULL_MATRIX}
        assert quick_ids <= full_ids

    def test_progress_callback(self):
        lines = []
        run_bench(quick=True, accesses=200, progress=lines.append)
        assert len(lines) == len(QUICK_MATRIX)
        assert "gups/conventional/lru" in lines[0]


class TestArtifacts:
    def test_write_and_load_round_trip(self, quick_document, tmp_path):
        path = write_bench(quick_document, str(tmp_path))
        assert "BENCH_" in path and path.endswith(".json")
        assert load_bench(path) == json.loads(json.dumps(quick_document))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(BenchError):
            load_bench(str(path))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema_version": 99, "points": []}))
        with pytest.raises(BenchError):
            load_bench(str(path))

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(BenchError):
            load_bench(str(tmp_path / "absent.json"))

    def test_format_lists_every_point(self, quick_document):
        text = format_bench(quick_document)
        for point in quick_document["points"]:
            assert point["point"] in text
        assert "aggregate" in text


def synthetic(rate_scale):
    return {
        "schema_version": SCHEMA_VERSION,
        "points": [
            {"point": "gups/pom-tlb/lru",
             "accesses_per_second": 1000.0 * rate_scale},
            {"point": "gups/csalt-cd/lru",
             "accesses_per_second": 800.0 * rate_scale},
        ],
        "aggregate_accesses_per_second": 888.0 * rate_scale,
    }


class TestCompareBench:
    def test_identical_passes(self):
        assert compare_bench(synthetic(1.0), synthetic(1.0)) == []

    def test_faster_passes(self):
        assert compare_bench(synthetic(2.0), synthetic(1.0)) == []

    def test_small_drop_within_tolerance(self):
        assert compare_bench(synthetic(0.9), synthetic(1.0),
                             tolerance=0.25) == []

    def test_large_drop_fails_aggregate_and_points(self):
        problems = compare_bench(synthetic(0.5), synthetic(1.0),
                                 tolerance=0.25)
        assert any("aggregate" in p for p in problems)
        assert any("gups/pom-tlb/lru" in p for p in problems)

    def test_new_point_is_not_a_failure(self):
        current = synthetic(1.0)
        current["points"].append(
            {"point": "new/one/lru", "accesses_per_second": 1.0}
        )
        assert compare_bench(current, synthetic(1.0)) == []

    def test_committed_baseline_is_loadable(self):
        baseline = (pathlib.Path(__file__).parent.parent
                    / "benchmarks" / "bench_baseline.json")
        document = load_bench(str(baseline))
        assert document["quick"] is True
        assert document["points"]


class TestMicroBench:
    @pytest.fixture(scope="class")
    def micro_document(self):
        return run_micro_bench(operations=500)

    def test_covers_every_datapath_layer(self, micro_document):
        names = [p["point"] for p in micro_document["points"]]
        assert names == [name for name, _ in MICRO_COMPONENTS]
        assert {"cache.lookup", "cache.fill", "tlb.lookup",
                "walk.native", "walk.virtualized"} == set(names)

    def test_point_fields(self, micro_document):
        assert micro_document["micro"] is True
        assert micro_document["operations_per_point"] == 500
        for point in micro_document["points"]:
            assert point["operations"] == 500
            assert point["host_seconds"] > 0
            assert point["ns_per_op"] > 0
            assert point["ops_per_second"] > 0

    def test_document_round_trips_through_store(self, micro_document,
                                                tmp_path):
        path = write_bench(micro_document, str(tmp_path))
        loaded = load_bench(path)
        assert loaded["micro"] is True
        assert loaded["points"] == json.loads(
            json.dumps(micro_document["points"])
        )

    def test_format_lists_every_component(self, micro_document):
        table = format_micro_bench(micro_document)
        for name, _ in MICRO_COMPONENTS:
            assert name in table

    def test_progress_callback(self):
        seen = []
        run_micro_bench(operations=10, progress=seen.append)
        assert len(seen) == len(MICRO_COMPONENTS)
        assert all(line.startswith("micro ") for line in seen)
