"""Unit tests for the miss-curve analysis helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.miss_curves import (
    ascii_bars,
    hit_curve,
    marginal_gain,
    miss_ratio_curve,
    profiler_summary,
    utility_surface,
)
from repro.core.partitioning import best_partition
from repro.core.stack_distance import StackDistanceProfiler

counters = st.lists(st.integers(min_value=0, max_value=100),
                    min_size=5, max_size=9)


class TestCurves:
    def test_hit_curve(self):
        assert hit_curve([5, 3, 2, 10]) == [0, 5, 8, 10]

    def test_miss_ratio_curve(self):
        curve = miss_ratio_curve([5, 3, 2, 10])
        assert curve[0] == 1.0
        assert curve[-1] == pytest.approx(0.5)

    def test_miss_ratio_all_zero(self):
        assert miss_ratio_curve([0, 0, 0]) == [1.0, 1.0, 1.0]

    def test_marginal_gain_drops_miss_bucket(self):
        assert marginal_gain([5, 3, 2, 10]) == [5, 3, 2]

    @given(counters)
    def test_miss_ratio_monotone_nonincreasing(self, values):
        curve = miss_ratio_curve(values)
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    @given(counters)
    def test_hit_curve_monotone(self, values):
        curve = hit_curve(values)
        assert all(a <= b for a, b in zip(curve, curve[1:]))


class TestUtilitySurface:
    def test_matches_best_partition(self):
        data = [10, 5, 1, 0, 0, 0, 0, 0, 50]
        tlb = [2, 2, 2, 2, 2, 2, 2, 2, 10]
        surface = utility_surface(data, tlb, 8)
        assert surface.best_data_ways == best_partition(data, tlb, 8)

    def test_rows_cover_all_splits(self):
        surface = utility_surface([1] * 9, [1] * 9, 8)
        rows = surface.as_rows()
        assert len(rows) == 7
        assert rows[0][:2] == (1, 7)
        assert rows[-1][:2] == (7, 1)

    def test_weights_shift_surface(self):
        data = [4] * 8 + [0]
        tlb = [4] * 8 + [0]
        neutral = utility_surface(data, tlb, 8)
        tilted = utility_surface(data, tlb, 8, weight_tlb=8.0)
        assert tilted.best_data_ways < neutral.best_data_ways or (
            neutral.best_data_ways == 1
        )


class TestRendering:
    def test_profiler_summary_empty(self):
        assert "no accesses" in profiler_summary(StackDistanceProfiler(4))

    def test_profiler_summary_content(self):
        profiler = StackDistanceProfiler(4, sample_shift=0)
        for tag in (1, 1, 2, 1):
            profiler.record(0, tag)
        text = profiler_summary(profiler)
        assert "4 accesses" in text

    def test_ascii_bars(self):
        text = ascii_bars([1.0, 0.5], ["full", "half"])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") > lines[1].count("#")

    def test_ascii_bars_validation(self):
        with pytest.raises(ValueError):
            ascii_bars([1.0], ["a", "b"])

    def test_ascii_bars_zero_values(self):
        text = ascii_bars([0.0, 0.0], ["a", "b"])
        assert "0.000" in text
