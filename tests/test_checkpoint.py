"""Checkpoint envelope, writer pruning, watchdog, and the determinism
oracle: restore-and-continue must be bit-identical to an uninterrupted
run."""

import json
import time

import pytest

from repro.checkpoint import (
    MAGIC,
    CheckpointError,
    CheckpointWriter,
    SimulationStalled,
    StallWatchdog,
    checkpoint_name,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.schemes import Scheme
from repro.experiments.store import strip_host_fields
from repro.sim.config import small_config
from repro.sim.engine import derive_stream_seed, run_simulation
from repro.workloads.base import Workload
from repro.workloads.mixes import make_mix

TOTAL = 4_000


def tiny_config(**overrides):
    defaults = dict(
        scheme=Scheme.CSALT_CD, cores=2, contexts_per_core=2
    )
    defaults.update(overrides)
    return small_config(**defaults)


def tiny_mix(config):
    return make_mix("gups", config.num_vms, scale=0.25)


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------
class TestEnvelope:
    def test_roundtrip(self, tmp_path):
        document = {"a": [1, 2, 3], "nested": {"x": (4, 5)}}
        path = write_checkpoint(
            tmp_path / "snap.ckpt", document, meta={"executed": 42}
        )
        loaded, header = read_checkpoint(path)
        assert loaded == document
        assert header["executed"] == 42
        assert header["format"] == 1

    def test_corrupted_payload_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path / "snap.ckpt", {"k": "v"})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path / "snap.ckpt", list(range(100)))
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not.ckpt"
        path.write_bytes(b"something else entirely\n{}\n")
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint(path)

    def test_future_format_version_rejected(self, tmp_path):
        path = tmp_path / "future.ckpt"
        header = json.dumps({"format": 99, "payload_bytes": 0, "sha256": ""})
        path.write_bytes(MAGIC + b"\n" + header.encode() + b"\n")
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)

    def test_unserializable_document_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="serialize"):
            write_checkpoint(tmp_path / "bad.ckpt", lambda: None)


class TestWriterAndListing:
    def test_names_sort_chronologically(self):
        names = [checkpoint_name(n) for n in (5, 40, 3_000, 120_000)]
        assert names == sorted(names)

    def test_writer_prunes_to_keep(self, tmp_path):
        writer = CheckpointWriter(tmp_path, keep=2)
        for executed in (100, 200, 300, 400):
            writer.write(executed, {"executed": executed})
        remaining = list_checkpoints(tmp_path)
        assert [p.name for p in remaining] == [
            checkpoint_name(300), checkpoint_name(400)
        ]
        assert writer.written == 4
        assert writer.last_write_seconds > 0

    def test_stall_snapshots_excluded_and_never_pruned(self, tmp_path):
        writer = CheckpointWriter(tmp_path, keep=1)
        stall = writer.write_stall(150, {"wedged": True})
        for executed in (100, 200):
            writer.write(executed, {})
        assert stall.exists()
        assert latest_checkpoint(tmp_path).name == checkpoint_name(200)
        _, header = read_checkpoint(stall)
        assert header["stalled"] is True
        assert header["consistent"] is False

    def test_latest_of_empty_dir_is_none(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
class TestStallWatchdog:
    def test_trips_when_heartbeat_stops(self):
        watchdog = StallWatchdog(0.15, poll_seconds=0.03)
        watchdog.beat(0)
        deadline = time.monotonic() + 5.0
        interrupted = False
        with watchdog:
            try:
                while time.monotonic() < deadline:
                    time.sleep(0.01)  # heartbeat never advances
            except KeyboardInterrupt:
                interrupted = True
        assert interrupted
        assert watchdog.tripped

    def test_does_not_trip_while_advancing(self):
        watchdog = StallWatchdog(0.3, poll_seconds=0.03)
        with watchdog:
            for tick in range(10):
                watchdog.beat(tick)
                time.sleep(0.02)
        assert not watchdog.tripped

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            StallWatchdog(0.0)


# ----------------------------------------------------------------------
# Engine integration: determinism oracle
# ----------------------------------------------------------------------
class TestDeterminismOracle:
    @pytest.mark.parametrize("replacement", ["lru", "nru"])
    def test_restore_midpoint_matches_uninterrupted(
        self, tmp_path, replacement
    ):
        config = tiny_config(replacement=replacement)
        uninterrupted = run_simulation(
            config, tiny_mix(config), total_accesses=TOTAL, seed=3
        )
        checkpointed = run_simulation(
            config, tiny_mix(config), total_accesses=TOTAL, seed=3,
            checkpoint_every=1_000, checkpoint_dir=tmp_path,
        )
        midpoint = list_checkpoints(tmp_path)[0]
        resumed = run_simulation(
            config, tiny_mix(config), total_accesses=TOTAL, seed=3,
            checkpoint_dir=tmp_path, restore=midpoint,
            check_invariants=1_000,
        )
        expected = strip_host_fields(uninterrupted.to_dict())
        assert strip_host_fields(checkpointed.to_dict()) == expected
        assert strip_host_fields(resumed.to_dict()) == expected
        assert resumed.extra["host_restored_from"] == str(midpoint)

    def test_restore_mid_warmup_matches(self, tmp_path):
        # A snapshot taken before the stats reset must restore the
        # warmup bookkeeping too, not just the structures.
        config = tiny_config()
        uninterrupted = run_simulation(
            config, tiny_mix(config), total_accesses=TOTAL, seed=7
        )
        run_simulation(
            config, tiny_mix(config), total_accesses=TOTAL, seed=7,
            checkpoint_every=500, checkpoint_dir=tmp_path,
            checkpoint_keep=20,
        )
        warmup_snap = list_checkpoints(tmp_path)[0]
        _, header = read_checkpoint(warmup_snap)
        assert header["executed"] < int(TOTAL * 0.25)
        resumed = run_simulation(
            config, tiny_mix(config), total_accesses=TOTAL, seed=7,
            checkpoint_dir=tmp_path, restore=warmup_snap,
        )
        assert strip_host_fields(resumed.to_dict()) == strip_host_fields(
            uninterrupted.to_dict()
        )

    def test_restore_auto_with_empty_dir_runs_fresh(self, tmp_path):
        config = tiny_config()
        result = run_simulation(
            config, tiny_mix(config), total_accesses=2_000, seed=1,
            checkpoint_dir=tmp_path, restore="auto",
        )
        assert "host_restored_from" not in result.extra

    def test_restore_rejects_different_run(self, tmp_path):
        config = tiny_config()
        run_simulation(
            config, tiny_mix(config), total_accesses=2_000, seed=1,
            checkpoint_every=1_000, checkpoint_dir=tmp_path,
        )
        with pytest.raises(CheckpointError, match="seed"):
            run_simulation(
                config, tiny_mix(config), total_accesses=2_000, seed=2,
                checkpoint_dir=tmp_path, restore="auto",
            )

    def test_checkpoint_every_requires_dir(self):
        config = tiny_config()
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_simulation(
                config, tiny_mix(config), total_accesses=1_000,
                checkpoint_every=500,
            )


# ----------------------------------------------------------------------
# Engine integration: stalls
# ----------------------------------------------------------------------
class _WedgingWorkload(Workload):
    """Yields normally for a while, then stops making progress."""

    name = "wedge"
    huge_va_limit = 0

    def __init__(self, wedge_after: int = 200):
        self.wedge_after = wedge_after

    def thread_stream(self, thread_id, num_threads=8, seed=0):
        emitted = 0
        while True:
            if emitted >= self.wedge_after:
                time.sleep(0.05)  # simulate a hang, interruptibly
                continue
            emitted += 1
            yield ((emitted * 64) % (1 << 20), False)


class TestEngineStall:
    def test_stall_raises_and_snapshots(self, tmp_path):
        config = tiny_config(cores=1, contexts_per_core=1)
        with pytest.raises(SimulationStalled) as info:
            run_simulation(
                config, [_WedgingWorkload()], total_accesses=100_000,
                watchdog_timeout=0.3, checkpoint_dir=tmp_path,
            )
        stall = info.value
        assert stall.executed < 100_000
        assert stall.snapshot_path is not None
        _, header = read_checkpoint(stall.snapshot_path)
        assert header["stalled"] is True

    def test_stall_without_checkpoint_dir(self):
        config = tiny_config(cores=1, contexts_per_core=1)
        with pytest.raises(SimulationStalled) as info:
            run_simulation(
                config, [_WedgingWorkload()], total_accesses=100_000,
                watchdog_timeout=0.3,
            )
        assert info.value.snapshot_path is None


# ----------------------------------------------------------------------
# Seed derivation (satellite)
# ----------------------------------------------------------------------
class TestSeedDerivation:
    def test_no_linear_collisions(self):
        # The old seed + 97 * vm_id scheme collided exactly here.
        assert derive_stream_seed(97, 0) != derive_stream_seed(0, 1)
        assert derive_stream_seed(194, 0) != derive_stream_seed(97, 1)

    def test_distinct_across_vms_and_seeds(self):
        seen = {
            derive_stream_seed(seed, vm_id)
            for seed in range(20) for vm_id in range(4)
        }
        assert len(seen) == 80

    def test_derivation_recorded_in_result(self):
        config = tiny_config()
        result = run_simulation(
            config, tiny_mix(config), total_accesses=2_000, seed=5
        )
        derivation = result.extra["seed_derivation"]
        assert derivation["scheme"] == "blake2b8(repro.stream:{seed}:{vm_id})"
        assert set(derivation["stream_seeds"]) == {"0", "1"}
        assert derivation["stream_seeds"]["0"] == derive_stream_seed(5, 0)
