"""Unit tests for the full-system model's translation and data datapaths."""

import pytest

from repro.core.schemes import Scheme
from repro.mem.address import Asid, PAGE_4K_BITS
from repro.mem.cache import LineKind
from repro.sim.config import small_config
from repro.sim.system import System

A = Asid(0, 0)


def make_system(scheme=Scheme.POM_TLB, **overrides):
    overrides.setdefault("cores", 2)
    return System(small_config(scheme=scheme, **overrides))


def mapped_system(scheme=Scheme.POM_TLB, **overrides):
    system = make_system(scheme, **overrides)
    system.vms[0].ensure_mapped(0, 0x5000)
    return system


class TestConstruction:
    def test_core_count(self):
        assert len(make_system(cores=4).cores) == 4

    def test_pom_only_for_pom_schemes(self):
        assert make_system(Scheme.POM_TLB).pom is not None
        assert make_system(Scheme.CONVENTIONAL).pom is None
        assert make_system(Scheme.TSB).pom is None

    def test_controllers_only_for_csalt(self):
        pom = make_system(Scheme.POM_TLB)
        assert pom.l3_controller is None
        assert pom.cores[0].l2_controller is None
        csalt = make_system(Scheme.CSALT_CD)
        assert csalt.l3_controller is not None
        assert csalt.cores[0].l2_controller is not None

    def test_static_partition_installed(self):
        system = make_system(Scheme.CSALT_STATIC)
        assert system.l3.data_ways == system.l3.ways // 2
        assert system.cores[0].l2.data_ways == system.cores[0].l2.ways // 2

    def test_dip_enabled_on_caches(self):
        system = make_system(Scheme.DIP)
        assert system.l3.dip is not None
        assert system.cores[0].l2.dip is not None
        assert make_system(Scheme.POM_TLB).l3.dip is None

    def test_native_vms(self):
        system = make_system(virtualized=False)
        assert all(vm.native for vm in system.vms)


class TestTranslationDatapath:
    def test_walk_fills_tlbs(self):
        system = mapped_system()
        core = system.cores[0]
        stall, entry = system.translate_beyond_l1(core, A, 0x5123)
        assert stall > 0
        assert core.stats.l2_tlb_misses == 1
        assert core.stats.page_walks == 1
        assert core.l2_tlb.lookup(A, 0x5123) is not None

    def test_pom_hit_avoids_walk(self):
        system = mapped_system()
        core0, core1 = system.cores
        system.translate_beyond_l1(core0, A, 0x5123)  # walk + POM fill
        system.translate_beyond_l1(core1, A, 0x5123)  # POM hit, no walk
        assert core1.stats.page_walks == 0
        assert system.pom.stats.hits == 1

    def test_conventional_always_walks(self):
        system = mapped_system(Scheme.CONVENTIONAL)
        core0, core1 = system.cores
        system.translate_beyond_l1(core0, A, 0x5123)
        system.translate_beyond_l1(core1, A, 0x5123)
        assert core0.stats.page_walks == 1
        assert core1.stats.page_walks == 1

    def test_pom_probe_caches_tlb_lines(self):
        system = mapped_system()
        core = system.cores[0]
        system.translate_beyond_l1(core, A, 0x5123)
        set_address = system.pom.set_address(A, 0x5123, PAGE_4K_BITS)
        assert core.l2.kind_at(set_address) is LineKind.TLB

    def test_tsb_path_fills_and_hits(self):
        system = mapped_system(Scheme.TSB)
        core0, core1 = system.cores
        system.translate_beyond_l1(core0, A, 0x5123)
        assert core0.stats.page_walks == 1
        system.translate_beyond_l1(core1, A, 0x5123)
        assert core1.stats.page_walks == 0  # served by the TSBs

    def test_tsb_native_path(self):
        system = mapped_system(Scheme.TSB, virtualized=False)
        core0, core1 = system.cores
        system.translate_beyond_l1(core0, A, 0x5123)
        system.translate_beyond_l1(core1, A, 0x5123)
        assert core1.stats.page_walks == 0

    def test_l2_tlb_hit_fast_path(self):
        system = mapped_system()
        core = system.cores[0]
        system.translate_beyond_l1(core, A, 0x5123)
        walks_before = core.stats.page_walks
        stall, _entry = system.translate_beyond_l1(core, A, 0x5123)
        assert stall == core.l2_tlb.latency
        assert core.stats.page_walks == walks_before


class TestAccess:
    def test_access_counts_instructions(self):
        system = mapped_system()
        system.access(0, A, 0x5123, is_write=False)
        stats = system.cores[0].stats
        assert stats.memory_accesses == 1
        assert stats.instructions == 1 + system.config.nonmem_per_mem
        assert stats.cycles > 0

    def test_translation_blocking_charged(self):
        system = mapped_system()
        system.access(0, A, 0x5123, is_write=False)
        assert system.cores[0].stats.translation_stall_cycles > 0

    def test_l1d_hit_after_first_access(self):
        system = mapped_system()
        system.access(0, A, 0x5123, is_write=False)
        data_stall_before = system.cores[0].stats.data_stall_cycles
        system.access(0, A, 0x5123, is_write=False)
        assert system.cores[0].stats.data_stall_cycles == data_stall_before

    def test_distinct_pages_distinct_frames(self):
        system = mapped_system()
        system.vms[0].ensure_mapped(0, 0x6000)
        system.access(0, A, 0x5000, is_write=False)
        system.access(0, A, 0x6000, is_write=False)
        # Both lines present in L1D: they did not collide on one frame.
        core = system.cores[0]
        assert core.l1d.stats.misses == 2


class TestIntrospection:
    def test_occupancy_sample(self):
        system = mapped_system()
        system.access(0, A, 0x5123, is_write=False)
        sample = system.sample_occupancy()
        assert 0.0 <= sample.l2_tlb_fraction <= 1.0
        assert 0.0 <= sample.l3_tlb_fraction <= 1.0
        assert system.occupancy_samples

    def test_reset_stats(self):
        system = mapped_system()
        system.access(0, A, 0x5123, is_write=False)
        system.sample_occupancy()
        system.reset_stats()
        assert system.cores[0].stats.memory_accesses == 0
        assert system.l3.stats.accesses == 0
        assert not system.occupancy_samples
        assert system.tlb_ref_levels == {"l2": 0, "l3": 0, "dram": 0}

    def test_result_packaging(self):
        system = mapped_system()
        system.access(0, A, 0x5123, is_write=False)
        result = system.result("unit")
        assert result.workload == "unit"
        assert result.scheme == "pom-tlb"
        assert result.instructions == 3
        assert "tlb_refs_dram" in result.extra

    def test_result_includes_partition_timeline_for_csalt(self):
        system = mapped_system(Scheme.CSALT_CD)
        system.access(0, A, 0x5123, is_write=False)
        result = system.result()
        assert result.l2_partition_timeline
        assert result.l3_partition_timeline


class TestDramAccounting:
    def test_dram_counters_exported(self):
        system = mapped_system()
        system.access(0, A, 0x5123, is_write=False)
        result = system.result()
        assert result.extra["ddr_accesses"] >= 1
        assert 0.0 <= result.extra["ddr_row_hit_rate"] <= 1.0

    def test_pom_region_routed_to_die_stacked(self):
        system = mapped_system()
        core = system.cores[0]
        system.translate_beyond_l1(core, A, 0x5123)
        # The POM probe's set line missed the caches and went to the
        # die-stacked channel.
        assert system.die_stacked.stats.accesses >= 1
