"""Unit tests for the simulation driver."""

import pytest

from repro.core.schemes import Scheme
from repro.sim.config import small_config
from repro.sim.engine import build_contexts, run_simulation
from repro.sim.system import System
from repro.workloads.mixes import make_mix

RUN = dict(total_accesses=2_000, warmup_fraction=0.0)


def fast_config(**overrides):
    overrides.setdefault("cores", 2)
    overrides.setdefault("scheme", Scheme.POM_TLB)
    return small_config(**overrides)


class TestValidation:
    def test_workload_count_must_match_vms(self):
        config = fast_config(contexts_per_core=2)
        with pytest.raises(ValueError, match="VM workloads"):
            run_simulation(config, make_mix("gups", scale=0.25)[:1], **RUN)

    def test_positive_accesses(self):
        config = fast_config()
        with pytest.raises(ValueError):
            run_simulation(config, make_mix("gups", scale=0.25),
                           total_accesses=0)

    def test_warmup_fraction_range(self):
        config = fast_config()
        with pytest.raises(ValueError):
            run_simulation(config, make_mix("gups", scale=0.25),
                           total_accesses=100, warmup_fraction=1.0)


class TestBuildContexts:
    def test_one_context_per_core_per_vm(self):
        config = fast_config(contexts_per_core=2)
        system = System(config)
        contexts = build_contexts(system, make_mix("gups", scale=0.25))
        assert len(contexts) == config.cores
        assert all(len(core_contexts) == 2 for core_contexts in contexts)

    def test_asids_by_vm(self):
        config = fast_config(contexts_per_core=2)
        system = System(config)
        contexts = build_contexts(system, make_mix("gups", scale=0.25))
        assert contexts[0][0].asid.vm_id == 0
        assert contexts[0][1].asid.vm_id == 1


class TestRun:
    def test_instruction_accounting(self):
        config = fast_config()
        result = run_simulation(config, make_mix("gups", scale=0.25), **RUN)
        per_access = 1 + config.nonmem_per_mem
        assert result.instructions == pytest.approx(
            2_000 * per_access, rel=0.05
        )
        assert result.ipc > 0

    def test_deterministic_for_seed(self):
        config = fast_config()
        first = run_simulation(config, make_mix("gups", scale=0.25),
                               seed=7, **RUN)
        second = run_simulation(config, make_mix("gups", scale=0.25),
                                seed=7, **RUN)
        assert first.ipc == second.ipc
        assert first.l2_tlb_misses == second.l2_tlb_misses

    def test_seed_changes_streams(self):
        config = fast_config()
        first = run_simulation(config, make_mix("gups", scale=0.25),
                               seed=1, **RUN)
        second = run_simulation(config, make_mix("gups", scale=0.25),
                                seed=2, **RUN)
        assert first.per_core[0].cycles != second.per_core[0].cycles

    def test_context_switches_happen(self):
        config = fast_config(time_scale=1 / 4000)
        result = run_simulation(
            config, make_mix("gups", scale=0.25),
            total_accesses=8_000, warmup_fraction=0.0,
        )
        assert result.extra["context_switches"] > 0

    def test_single_context_never_switches(self):
        config = fast_config(contexts_per_core=1)
        result = run_simulation(
            config, make_mix("gups", contexts=1, scale=0.25), **RUN
        )
        assert result.extra["context_switches"] == 0

    def test_warmup_resets_counters(self):
        config = fast_config()
        warm = run_simulation(
            config, make_mix("gups", scale=0.25),
            total_accesses=2_000, warmup_fraction=0.5,
        )
        assert warm.per_core[0].memory_accesses <= 1_000 // config.cores + 8

    def test_occupancy_samples_collected(self):
        config = fast_config()
        result = run_simulation(
            config, make_mix("gups", scale=0.25),
            total_accesses=4_000, warmup_fraction=0.0, occupancy_samples=4,
        )
        assert len(result.occupancy_samples) >= 2

    def test_workload_name_default(self):
        config = fast_config()
        result = run_simulation(config, make_mix("can_ccomp", scale=0.25), **RUN)
        assert result.workload == "canneal+ccomp"
